"""Unit tests of the rigid and moldable application behaviours (Section 4)."""
from __future__ import annotations

import math

import pytest

from repro.apps import MoldableApplication, RigidApplication
from repro.cluster import Platform
from repro.core import CooRMv2
from repro.sim import Simulator


def make_env(nodes=16):
    sim = Simulator()
    platform = Platform.single_cluster(nodes)
    rms = CooRMv2(platform, sim, rescheduling_interval=1.0)
    return sim, platform, rms


class TestRigidApplication:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RigidApplication("r", node_count=0, duration=10)
        with pytest.raises(ValueError):
            RigidApplication("r", node_count=4, duration=0)
        with pytest.raises(ValueError):
            RigidApplication("r", node_count=4, duration=math.inf)

    def test_runs_to_completion(self):
        sim, platform, rms = make_env()
        app = RigidApplication("rigid", node_count=4, duration=100.0)
        app.connect(rms)
        sim.run()
        assert app.finished()
        assert app.request.started()
        assert app.wait_time() == pytest.approx(1.0, abs=1.0)  # one re-scheduling interval
        assert platform.cluster("cluster0").free_count() == 16

    def test_queues_behind_another_rigid_job(self):
        sim, _, rms = make_env(nodes=8)
        first = RigidApplication("first", node_count=8, duration=100.0)
        second = RigidApplication("second", node_count=8, duration=50.0)
        first.connect(rms)
        second.connect(rms)
        sim.run()
        assert first.finished() and second.finished()
        assert second.start_time >= first.start_time + 100.0 - 1e-6
        assert second.finished_at > first.finished_at

    def test_ignores_view_updates(self):
        sim, _, rms = make_env()
        app = RigidApplication("rigid", node_count=4, duration=50.0)
        app.connect(rms)
        sim.run(until=5.0)
        # Pushing more views must not create additional requests.
        assert len(rms.sessions["rigid"].requests.non_preemptible) == 1


class TestMoldableApplication:
    @staticmethod
    def walltime(nodes: int) -> float:
        """A perfectly scalable 1600 node-second job."""
        return 1600.0 / nodes

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            MoldableApplication("m", candidate_node_counts=[], walltime_model=self.walltime)

    def test_picks_the_largest_useful_node_count_on_an_empty_cluster(self):
        sim, _, rms = make_env(nodes=16)
        app = MoldableApplication(
            "moldable", candidate_node_counts=[1, 2, 4, 8, 16], walltime_model=self.walltime
        )
        app.connect(rms)
        sim.run()
        assert app.finished()
        assert app.chosen_nodes == 16
        assert app.request.duration == pytest.approx(100.0)

    def test_adapts_to_a_busy_cluster(self):
        sim, _, rms = make_env(nodes=16)
        blocker = RigidApplication("blocker", node_count=12, duration=1000.0)
        blocker.connect(rms)
        sim.run(until=5.0)
        app = MoldableApplication(
            "moldable", candidate_node_counts=[4, 16], walltime_model=self.walltime
        )
        app.connect(rms)
        sim.run(until=10.0)
        # 16 nodes would only be free after the blocker ends (t=1001); running
        # on 4 nodes right away finishes earlier (400 s), so the moldable
        # application must choose 4 nodes.
        assert app.chosen_nodes == 4
        sim.run()
        assert app.finished()
        assert app.finished_at < 1000.0

    def test_reselects_when_views_change_before_start(self):
        sim, _, rms = make_env(nodes=16)
        # The moldable job is submitted while the cluster is fully busy for a
        # long time, so it initially settles for few nodes...
        blocker = RigidApplication("blocker", node_count=16, duration=500.0)
        blocker.connect(rms)
        sim.run(until=5.0)
        app = MoldableApplication(
            "moldable", candidate_node_counts=[2, 16], walltime_model=self.walltime
        )
        app.connect(rms)
        sim.run(until=10.0)
        first_choice = app.chosen_nodes
        # ...then the blocker finishes early and the RMS pushes new views;
        # the moldable application re-runs its selection.
        rms.done("blocker", blocker.request)
        sim.run(until=20.0)
        assert len(app.selection_history) >= 2
        sim.run()
        assert app.finished()
        assert app.chosen_nodes == 16 or first_choice == 16
