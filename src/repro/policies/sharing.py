"""Preemptible-sharing stages: equi-partitioning and weighted max-min.

All strategies run on the generic interval machinery of
:func:`repro.core.eqschedule.partition_schedule`; they only differ in the
per-interval partition rule that maps ``(demands, capacity)`` to the node
counts shown in each application's preemptive view.
"""
from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..core.eqschedule import eq_schedule, partition_schedule, weighted_max_min_fair
from ..core.request_set import RequestSet
from ..core.types import Time
from ..core.view import View
from .base import SharingStrategy

__all__ = [
    "EquipartitionSharing",
    "StrictEquipartitionSharing",
    "WeightedMaxMinSharing",
]


class EquipartitionSharing(SharingStrategy):
    """Equi-partitioning with filling -- CooRMv2's policy (Algorithm 3)."""

    name = "eq-filling"

    def share(
        self, preemptible_sets: Mapping[str, RequestSet], available: View, now: Time
    ) -> Dict[str, View]:
        return eq_schedule(preemptible_sets, available, now, strict=False)


class StrictEquipartitionSharing(SharingStrategy):
    """Strict equi-partitioning -- the Figure 11 baseline (no filling)."""

    name = "strict-eq"

    def share(
        self, preemptible_sets: Mapping[str, RequestSet], available: View, now: Time
    ) -> Dict[str, View]:
        return eq_schedule(preemptible_sets, available, now, strict=True)


class WeightedMaxMinSharing(SharingStrategy):
    """Weighted max-min fair sharing of the preemptible capacity.

    When the applications together demand more than an interval offers, the
    capacity is water-filled in proportion to per-application weights
    (uniform by default); every active application is guaranteed at least its
    weighted slice.  When the interval is not congested, applications see
    what the others leave unused -- the same filling rule as
    equi-partitioning, so idle resources remain visible.
    """

    name = "maxmin-weighted"

    def __init__(self, weights: Optional[Mapping[str, float]] = None):
        if weights is not None and any(w <= 0 for w in weights.values()):
            raise ValueError("sharing weights must be positive")
        self.weights = dict(weights) if weights else {}

    def share(
        self, preemptible_sets: Mapping[str, RequestSet], available: View, now: Time
    ) -> Dict[str, View]:
        app_ids = list(preemptible_sets)
        weights = [float(self.weights.get(app_id, 1.0)) for app_id in app_ids]
        return partition_schedule(
            preemptible_sets,
            available,
            now,
            partition=lambda demands, capacity: self._partition(
                demands, weights, capacity
            ),
        )

    @staticmethod
    def _partition(
        demands: Sequence[int], weights: Sequence[float], capacity: int
    ) -> List[int]:
        n_apps = len(demands)
        if n_apps == 0:
            return []
        active = [i for i in range(n_apps) if demands[i] > 0]
        total_demand = sum(demands)
        views = [0] * n_apps

        if total_demand > capacity:
            # Congested: weighted water-filling among the active applications;
            # the view never shows less than the weighted equal slice, and
            # inactive applications see the slice they would get by joining.
            fair = weighted_max_min_fair(demands, weights, capacity)
            active_weight = sum(weights[i] for i in active)
            for i in range(n_apps):
                if demands[i] > 0:
                    slice_i = int(capacity * weights[i] / active_weight)
                    views[i] = max(fair[i], slice_i)
                else:
                    would_join = active_weight + weights[i]
                    views[i] = int(capacity * weights[i] / would_join)
        else:
            # Not congested: show each application what the others leave
            # free, but never less than its weighted slice.
            for i in range(n_apps):
                others = total_demand - demands[i]
                leftover = capacity - others
                pool = [weights[j] for j in active]
                if demands[i] <= 0:
                    pool = pool + [weights[i]]
                slice_i = int(capacity * weights[i] / sum(pool)) if pool else capacity
                views[i] = max(leftover, slice_i)
        return views
