"""Wall-clock phase timers: where does real time go?

Unlike the tracer and the metrics registry -- whose output is deterministic
and may be persisted next to simulation results -- the profiler measures
**wall-clock** time and is therefore machine- and load-dependent.  Its
snapshots must only ever flow into the non-deterministic side of the store
(``meta.json``), into benchmark reports and into ``BENCH_*.json`` perf
snapshots, never into ``runs.jsonl``.

Phases may nest (the ``scheduler.pass`` phase runs inside an
``engine.dispatch`` phase): each phase accumulates its own inclusive time,
so nested totals can exceed the enclosing wall time -- the breakdown is a
"where was the program" histogram, not a partition.
"""
from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Mapping

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates inclusive wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def add(self, phase: str, seconds: float, count: int = 1) -> None:
        """Account *seconds* of wall-clock time (over *count* calls) to *phase*."""
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
        self._counts[phase] = self._counts.get(phase, 0) + count

    def merge(self, snapshot: Mapping[str, Mapping[str, float]]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        Campaign workers profile in their own process; the parent merges
        their snapshots to get the campaign-wide phase breakdown.
        """
        for phase, data in snapshot.items():
            self.add(
                phase,
                float(data.get("seconds", 0.0)),
                count=int(data.get("count", 0)) or 1,
            )

    @contextmanager
    def phase(self, name: str):
        """Time the enclosed block and account it to *name*."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    def seconds(self, phase: str) -> float:
        return self._seconds.get(phase, 0.0)

    def count(self, phase: str) -> int:
        return self._counts.get(phase, 0)

    def __len__(self) -> int:
        return len(self._seconds)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"seconds": total, "count": n, "mean_us": per-call}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for phase in sorted(self._seconds):
            seconds = self._seconds[phase]
            count = self._counts[phase]
            out[phase] = {
                "seconds": seconds,
                "count": float(count),
                "mean_us": 1e6 * seconds / count if count else 0.0,
            }
        return out
