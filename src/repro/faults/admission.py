"""Meta-scheduler admission control: token buckets and circuit breakers.

Both mechanisms run entirely in *simulation* time and hold no hidden
randomness, so admission decisions replay byte-identically.

- :class:`TokenBucket` throttles the placement rate per member (rate 0
  means unthrottled).
- :class:`CircuitBreaker` trips after N consecutive placement failures
  (fault kills, failed respawns), rejects placements while **open**,
  **half-opens** after a cooldown to let one probe through, and either
  closes on success or re-trips immediately on failure.
- :class:`AdmissionController` combines one bucket and one breaker per
  federation member behind the two-method surface the meta-scheduler
  uses: ``admit(member, now)`` and ``record_failure``/``record_success``.
"""
from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .plan import AdmissionSpec

__all__ = ["TokenBucket", "CircuitBreaker", "AdmissionController"]


class TokenBucket:
    """A sim-time token bucket; ``rate`` of 0 disables throttling."""

    def __init__(self, rate: float, burst: int):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def try_take(self, now: float) -> bool:
        """Consume one token if available, refilling lazily first."""
        if self.rate <= 0:
            return True
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = max(self._last, now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class CircuitBreaker:
    """closed -> open -> half-open placement breaker for one member."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int, cooldown: float):
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.trips = 0

    def allows(self, now: float) -> bool:
        """Whether a placement may be attempted right now.

        An open breaker whose cooldown has elapsed transitions to
        half-open and lets exactly one probe through; the probe's
        outcome (``record_success`` / ``record_failure``) decides
        whether it closes or re-trips.
        """
        if self.state == self.OPEN:
            if now - self.opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_failure(self, now: float) -> None:
        if self.state == self.HALF_OPEN:
            # The probe failed: re-trip immediately, restart the cooldown.
            self._trip(now)
            return
        self.failures += 1
        if self.state == self.CLOSED and self.failures >= self.failure_threshold:
            self._trip(now)

    def record_success(self) -> None:
        self.failures = 0
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED

    def _trip(self, now: float) -> None:
        self.state = self.OPEN
        self.opened_at = now
        self.failures = 0
        self.trips += 1


class AdmissionController:
    """Per-member admission control for the meta-scheduler.

    The controller never chooses members -- routing does that -- it only
    answers "may this member accept a placement right now?".
    """

    def __init__(self, spec: AdmissionSpec, members: Iterable[str]):
        self.spec = spec
        self.buckets: Dict[str, TokenBucket] = {}
        self.breakers: Dict[str, CircuitBreaker] = {}
        for name in members:
            self.buckets[name] = TokenBucket(spec.rate, spec.burst)
            self.breakers[name] = CircuitBreaker(
                spec.failure_threshold, spec.cooldown
            )
        self.rejections = 0

    def admit(self, member: str, now: float) -> Tuple[bool, Optional[str]]:
        """Try to admit one placement on *member*; ``(ok, reason)``.

        The token is only consumed when the breaker allows the attempt,
        so a tripped member does not burn its refill budget.
        """
        breaker = self.breakers[member]
        if not breaker.allows(now):
            self.rejections += 1
            return False, "breaker-open"
        if not self.buckets[member].try_take(now):
            self.rejections += 1
            return False, "throttled"
        return True, None

    def record_failure(self, member: str, now: float) -> None:
        """A placement on *member* failed (fault kill, failed respawn)."""
        self.breakers[member].record_failure(now)

    def record_success(self, member: str) -> None:
        """A placement on *member* was admitted and attached."""
        self.breakers[member].record_success()

    def breaker_trips(self) -> int:
        return sum(b.trips for b in self.breakers.values())

    def states(self) -> List[Tuple[str, str]]:
        """(member, breaker-state) pairs in deterministic name order."""
        return sorted((name, b.state) for name, b in self.breakers.items())
