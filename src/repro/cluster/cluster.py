"""A homogeneous, space-shared cluster with explicit node-ID bookkeeping.

The scheduler reasons about node *counts*; this module tracks node
*identities*, which the RMS needs when it actually starts a request
(``startNotify`` carries node IDs) and when ``NEXT``-constrained requests
inherit the nodes of their predecessor.
"""
from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from ..core.errors import AllocationError
from ..core.types import ClusterId, NodeId, Time
from .node import Node, NodeState

__all__ = ["Cluster"]


class Cluster:
    """A named collection of identical nodes."""

    def __init__(self, cluster_id: ClusterId, node_count: int):
        if node_count <= 0:
            raise AllocationError("a cluster needs a positive node count")
        self.cluster_id = cluster_id
        self.nodes: Dict[NodeId, Node] = {
            i: Node(node_id=i, cluster_id=cluster_id) for i in range(node_count)
        }
        #: Busy node-seconds accumulated by nodes removed since (crash or
        #: elastic shrink); keeps utilization accounting exact across faults.
        self.retired_busy_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        """Total number of nodes, regardless of state."""
        return len(self.nodes)

    def free_nodes(self) -> List[NodeId]:
        """IDs of nodes currently free (lowest IDs first, deterministic)."""
        return sorted(nid for nid, node in self.nodes.items() if node.is_free())

    def free_count(self) -> int:
        return len(self.free_nodes())

    def allocated_count(self) -> int:
        return sum(1 for n in self.nodes.values() if n.state is NodeState.ALLOCATED)

    def allocated_to(self, app_id: str) -> List[NodeId]:
        """IDs of nodes currently held by *app_id*."""
        return sorted(
            nid
            for nid, node in self.nodes.items()
            if node.state is NodeState.ALLOCATED and node.owner_app == app_id
        )

    # ------------------------------------------------------------------ #
    def allocate(
        self,
        count: int,
        app_id: str,
        request_id: int,
        now: Time,
        preferred: Optional[Iterable[NodeId]] = None,
    ) -> FrozenSet[NodeId]:
        """Allocate *count* nodes and return their IDs.

        Nodes listed in *preferred* (e.g. nodes carried over from a ``NEXT``
        predecessor) are used first if they are free; the remainder is taken
        from the lowest free IDs.  Raises :class:`AllocationError` if fewer
        than *count* nodes are free.
        """
        if count < 0:
            raise AllocationError("cannot allocate a negative node count")
        chosen: List[NodeId] = []
        if preferred:
            for nid in preferred:
                node = self.nodes.get(nid)
                if node is not None and node.is_free() and len(chosen) < count:
                    chosen.append(nid)
        for nid in self.free_nodes():
            if len(chosen) >= count:
                break
            if nid not in chosen:
                chosen.append(nid)
        if len(chosen) < count:
            raise AllocationError(
                f"cluster {self.cluster_id!r}: requested {count} nodes, "
                f"only {self.free_count()} free"
            )
        for nid in chosen:
            self.nodes[nid].allocate(app_id, request_id, now)
        return frozenset(chosen)

    def release(self, node_ids: Iterable[NodeId], now: Time) -> None:
        """Release the listed nodes back to the free pool."""
        for nid in node_ids:
            node = self.nodes.get(nid)
            if node is None:
                raise AllocationError(f"unknown node id {nid} on {self.cluster_id!r}")
            node.release(now)

    def release_all_of(self, app_id: str, now: Time) -> FrozenSet[NodeId]:
        """Release every node held by *app_id* (used when killing a session)."""
        held = self.allocated_to(app_id)
        self.release(held, now)
        return frozenset(held)

    def transfer(self, node_ids: Iterable[NodeId], app_id: str, request_id: int, now: Time) -> None:
        """Re-label allocated nodes to a new request of the same application.

        Used by ``NEXT`` constraints, where node IDs are carried over from the
        finished request to its successor without ever becoming free.
        """
        for nid in node_ids:
            node = self.nodes.get(nid)
            if node is None:
                raise AllocationError(f"unknown node id {nid} on {self.cluster_id!r}")
            if node.state is not NodeState.ALLOCATED or node.owner_app != app_id:
                raise AllocationError(
                    f"node {nid} is not held by application {app_id!r}"
                )
            node.owner_request = request_id

    # ------------------------------------------------------------------ #
    # Capacity mutation (fault injection / elastic members)
    # ------------------------------------------------------------------ #
    def shrink_victims(self, count: int) -> List[NodeId]:
        """The node IDs a shrink of *count* nodes would remove.

        Victims are the highest IDs -- a deterministic choice that keeps
        the surviving ID set contiguous-ish and replayable.
        """
        if count <= 0:
            return []
        return sorted(self.nodes)[-count:]

    def remove_nodes(self, node_ids: Iterable[NodeId], now: Time) -> None:
        """Remove nodes from the cluster (crash or elastic shrink).

        Every victim must be free: callers (the RMS) kill the owning
        applications first, which releases their nodes.  The removed nodes'
        accumulated busy time is retired, not lost, so utilization
        accounting stays exact.
        """
        for nid in node_ids:
            node = self.nodes.get(nid)
            if node is None:
                raise AllocationError(f"unknown node id {nid} on {self.cluster_id!r}")
            if node.state is NodeState.ALLOCATED:
                raise AllocationError(
                    f"node {nid} on {self.cluster_id!r} is still allocated "
                    f"to {node.owner_app!r}; kill the owner before removing it"
                )
            node._accumulate(now)
            self.retired_busy_seconds += node.busy_seconds
            del self.nodes[nid]

    def add_nodes(self, count: int, now: Time) -> List[NodeId]:
        """Add *count* fresh nodes (node restart or elastic grow).

        IDs re-use the lowest missing non-negative integers, so a restart
        after a crash restores exactly the original ID set -- replay of a
        faulted scenario is byte-identical.
        """
        if count < 0:
            raise AllocationError("cannot add a negative node count")
        added: List[NodeId] = []
        nid = 0
        while len(added) < count:
            if nid not in self.nodes:
                node = Node(node_id=nid, cluster_id=self.cluster_id)
                node.last_transition = now
                self.nodes[nid] = node
                added.append(nid)
            nid += 1
        return added

    # ------------------------------------------------------------------ #
    def busy_node_seconds(self, now: Time) -> float:
        """Total node-seconds of allocation accumulated so far."""
        total = self.retired_busy_seconds
        for node in self.nodes.values():
            total += node.busy_seconds
            if node.state is NodeState.ALLOCATED and now > node.last_transition:
                total += now - node.last_transition
        return total

    def __repr__(self) -> str:
        return (
            f"Cluster({self.cluster_id!r}, {self.node_count} nodes, "
            f"{self.free_count()} free)"
        )
