"""The coordinator's durable work queue of campaign run units.

Queue-based load leveling with the classic reliability trio:

* **Leases with heartbeats.**  A granted unit is *leased*, not gone: the
  worker must finish (or heartbeat) before the lease TTL expires, otherwise
  :meth:`WorkQueue.reclaim` returns the unit to the pending set.  A worker
  whose connection drops is released immediately
  (:meth:`WorkQueue.release_worker`) -- crash recovery does not wait for
  the TTL when the transport already knows the worker is gone.
* **Retry with exponential backoff.**  A failed or reclaimed unit becomes
  runnable again after ``backoff_base * 2**(attempts-1)`` seconds (capped),
  up to ``max_attempts``; past that it is terminally failed and reported,
  never silently dropped.
* **Idempotency keys.**  Units are keyed by
  :func:`repro.campaign.units.unit_key`; completing an already-completed
  key is a counted no-op (``dedup_hits``), so duplicate delivery -- a
  reclaimed unit whose original worker later reports anyway -- yields
  exactly-once results.

The queue is optionally **durable**: every state transition appends one
JSON line to a journal file, and :func:`completed_keys_from_journal` lets a
restarted coordinator skip everything that already finished.  (Campaign
resume additionally dedupes against the result store itself, which is the
authoritative record of completed work.)

All timestamps are supplied by the caller (wall-clock ``time.monotonic``
in production, hand-rolled values in tests); the queue itself never reads
a clock, which keeps its unit tests instantaneous and exact.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

__all__ = ["WorkUnit", "WorkQueue", "completed_keys_from_journal"]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"


@dataclass
class WorkUnit:
    """One campaign run unit and its queue bookkeeping."""

    key: str
    index: int
    task: Dict
    state: str = PENDING
    attempts: int = 0
    worker: str = ""
    lease_deadline: float = 0.0
    not_before: float = 0.0
    error: str = ""


@dataclass
class QueueStats:
    """Flat counters, ``dist_*``-prefixed like the fault layer's ``fault_*``."""

    counters: Dict[str, int] = field(default_factory=lambda: {
        "leases": 0,
        "retries": 0,
        "reclaims": 0,
        "dedup_hits": 0,
        "completed": 0,
        "failed": 0,
        "heartbeats": 0,
    })

    def bump(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def to_flat(self) -> Dict[str, float]:
        return {f"dist_{name}": float(value) for name, value in sorted(self.counters.items())}


class WorkQueue:
    """In-memory work queue with leases, backoff retries and a journal."""

    def __init__(
        self,
        lease_ttl: float = 30.0,
        max_attempts: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 5.0,
        journal: Union[str, Path, None] = None,
    ):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if backoff_base < 0 or backoff_cap < 0:
            raise ValueError("backoff must be >= 0")
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stats = QueueStats()
        self._units: Dict[str, WorkUnit] = {}
        self._order: List[str] = []
        self._journal_path = Path(journal) if journal else None
        if self._journal_path is not None:
            self._journal_path.parent.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Journal
    # ------------------------------------------------------------------ #
    def _journal(self, op: str, **fields) -> None:
        if self._journal_path is None:
            return
        entry = {"op": op, **fields}
        with open(self._journal_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #
    def add(self, key: str, index: int, task: Dict) -> None:
        if key in self._units:
            raise ValueError(f"duplicate unit key {key!r}")
        self._units[key] = WorkUnit(key=key, index=index, task=dict(task))
        self._order.append(key)
        self._journal("add", key=key, index=index)

    def __len__(self) -> int:
        return len(self._units)

    def unit(self, key: str) -> WorkUnit:
        try:
            return self._units[key]
        except KeyError:
            raise KeyError(f"unknown unit key {key!r}") from None

    # ------------------------------------------------------------------ #
    # Worker-facing operations
    # ------------------------------------------------------------------ #
    def lease(self, worker: str, now: float) -> Optional[WorkUnit]:
        """Grant the first runnable unit to *worker*, or ``None``.

        Units are scanned in canonical (index) order; a linear scan is fine
        at campaign granularity (hundreds to low thousands of units), and
        keeps retry/backoff interleaving trivially correct.
        """
        for key in self._order:
            unit = self._units[key]
            if unit.state != PENDING or now < unit.not_before:
                continue
            unit.state = LEASED
            unit.worker = worker
            unit.attempts += 1
            unit.lease_deadline = now + self.lease_ttl
            self.stats.bump("leases")
            self._journal("lease", key=key, worker=worker, attempt=unit.attempts)
            return unit
        return None

    def complete(self, key: str, worker: str, now: float) -> bool:
        """Mark a unit done; ``False`` when the key already completed.

        A result for an already-done key is the duplicate-delivery case:
        the unit was reclaimed and re-run, then the original worker
        reported late.  Both results are byte-identical by construction
        (records are pure functions of the task), so the second is simply
        counted and dropped.  A result from a worker that lost its lease
        but reports *first* is accepted -- the work is valid regardless of
        which attempt carried it.
        """
        unit = self.unit(key)
        if unit.state == DONE:
            self.stats.bump("dedup_hits")
            self._journal("dup", key=key, worker=worker)
            return False
        unit.state = DONE
        unit.error = ""
        self.stats.bump("completed")
        self._journal("done", key=key, worker=worker)
        return True

    def fail(self, key: str, worker: str, now: float, error: str = "") -> str:
        """Record a failed attempt; returns the unit's new state."""
        unit = self.unit(key)
        if unit.state == DONE:
            self.stats.bump("dedup_hits")
            return DONE
        self._retry(unit, now, error=error, counter="retries")
        return unit.state

    def heartbeat(self, worker: str, now: float) -> int:
        """Extend the leases of *worker*; returns how many were extended."""
        extended = 0
        for unit in self._units.values():
            if unit.state == LEASED and unit.worker == worker:
                unit.lease_deadline = now + self.lease_ttl
                extended += 1
        if extended:
            self.stats.bump("heartbeats")
        return extended

    # ------------------------------------------------------------------ #
    # Failure handling
    # ------------------------------------------------------------------ #
    def _retry(self, unit: WorkUnit, now: float, error: str, counter: str) -> None:
        unit.worker = ""
        unit.lease_deadline = 0.0
        unit.error = error
        if unit.attempts >= self.max_attempts:
            unit.state = FAILED
            self.stats.bump("failed")
            self._journal("failed", key=unit.key, error=error)
            return
        backoff = min(self.backoff_cap, self.backoff_base * (2 ** max(0, unit.attempts - 1)))
        unit.state = PENDING
        unit.not_before = now + backoff
        self.stats.bump(counter)
        self._journal("retry", key=unit.key, backoff=round(backoff, 6), reason=counter)

    def reclaim(self, now: float) -> List[str]:
        """Return expired leases to the pending set; returns their keys."""
        reclaimed = []
        for unit in self._units.values():
            if unit.state == LEASED and unit.lease_deadline < now:
                self._retry(unit, now, error="lease expired", counter="reclaims")
                reclaimed.append(unit.key)
        return reclaimed

    def release_worker(self, worker: str, now: float) -> List[str]:
        """Reclaim every lease of a disconnected worker immediately."""
        released = []
        for unit in self._units.values():
            if unit.state == LEASED and unit.worker == worker:
                self._retry(unit, now, error="worker disconnected", counter="reclaims")
                released.append(unit.key)
        return released

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def all_done(self) -> bool:
        return all(u.state in (DONE, FAILED) for u in self._units.values())

    def counts(self) -> Dict[str, int]:
        out = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
        for unit in self._units.values():
            out[unit.state] += 1
        return out

    def failed_units(self) -> List[WorkUnit]:
        return [self._units[k] for k in self._order if self._units[k].state == FAILED]

    def leased_units(self) -> List[WorkUnit]:
        return [self._units[k] for k in self._order if self._units[k].state == LEASED]

    def snapshot(self) -> Dict[str, object]:
        """Flat stats + state counts (the ``dist status`` payload)."""
        counts = self.counts()
        out: Dict[str, object] = dict(self.stats.to_flat())
        out.update({f"units_{state}": count for state, count in sorted(counts.items())})
        out["units_total"] = len(self._units)
        return out


def completed_keys_from_journal(path: Union[str, Path]) -> Set[str]:
    """Keys recorded as done in a queue journal (crash-restart recovery).

    Unparseable lines (a truncated trailing write from a killed
    coordinator) are skipped, mirroring the result store's tolerance.
    """
    done: Set[str] = set()
    journal = Path(path)
    if not journal.is_file():
        return done
    with open(journal, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if entry.get("op") == "done" and entry.get("key"):
                done.add(str(entry["key"]))
    return done
