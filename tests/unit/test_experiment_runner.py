"""Unit tests of the shared experiment runner and evaluation scales."""
from __future__ import annotations

import pytest

from repro.experiments import EvaluationScale, run_scenario
from repro.experiments.runner import build_evolution, ideal_preallocation_nodes
from repro.models import PAPER_SPEEDUP_MODEL
from repro.models.amr_evolution import AmrEvolutionParameters


class TestEvaluationScale:
    def test_paper_scale_matches_section_5(self):
        scale = EvaluationScale.paper()
        assert scale.num_steps == 1000
        assert scale.s_max_mib == pytest.approx(3.16 * 1024 * 1024)
        assert scale.psa1_task_duration == 600.0
        assert scale.psa2_task_duration == 60.0
        assert scale.rescheduling_interval == 1.0
        assert scale.target_efficiency == 0.75

    def test_reduced_and_tiny_are_smaller(self):
        paper, reduced, tiny = (
            EvaluationScale.paper(),
            EvaluationScale.reduced(),
            EvaluationScale.tiny(),
        )
        assert tiny.num_steps < reduced.num_steps < paper.num_steps
        assert tiny.s_max_mib < reduced.s_max_mib < paper.s_max_mib

    def test_with_steps(self):
        assert EvaluationScale.reduced().with_steps(42).num_steps == 42


class TestScaledEvolutionParameters:
    def test_scaled_keeps_shape_for_short_runs(self):
        import numpy as np

        from repro.models.amr_evolution import normalized_profile

        params = AmrEvolutionParameters.scaled(50)
        profile = normalized_profile(seed=0, params=params)
        diffs = np.diff(profile)
        # Even a 50-step profile must stay mostly increasing (the raw paper
        # constants would give a noise-dominated profile here).
        assert np.mean(diffs >= 0) > 0.55
        assert profile[-1] > 0.6 * profile.max()

    def test_scaled_validates_input(self):
        with pytest.raises(ValueError):
            AmrEvolutionParameters.scaled(0)

    def test_scaled_at_1000_steps_matches_paper_constants(self):
        params = AmrEvolutionParameters.scaled(1000)
        assert params.acceleration == pytest.approx(0.01)
        assert params.phase_max_steps == 200


class TestIdealPreallocation:
    def test_ideal_preallocation_is_the_equivalent_static_allocation(self):
        scale = EvaluationScale.tiny()
        evolution = build_evolution(scale, seed=0)
        ideal = ideal_preallocation_nodes(evolution, scale, PAPER_SPEEDUP_MODEL)
        peak = PAPER_SPEEDUP_MODEL.nodes_for_efficiency(
            evolution.peak_size_mib, scale.target_efficiency
        )
        assert 1 <= ideal <= peak


class TestRunScenarioValidation:
    def test_rejects_non_positive_overcommit(self):
        with pytest.raises(ValueError):
            run_scenario(EvaluationScale.tiny(), overcommit=0.0)

    def test_scenario_result_contents(self):
        scale = EvaluationScale.tiny()
        result = run_scenario(scale, seed=1, overcommit=1.0)
        assert result.amr.finished()
        assert result.cluster_nodes > result.ideal_preallocation
        assert len(result.psas) == 1
        assert result.metrics.capacity_node_seconds > 0
        # The cluster honours the paper's headroom rule (~1.16x the pre-allocation).
        assert result.cluster_nodes >= int(result.ideal_preallocation * 1.0)
