"""Campaign run units: wire format and idempotency keys.

A *run unit* is the serialisable form of one :class:`~repro.campaign.runner.
RunTask` -- the currency the distributed execution tier (:mod:`repro.dist`)
ships between coordinator and workers, and the thing ``campaign run
--resume`` deduplicates against the result store.

The **idempotency key** of a unit is a pure function of everything that
determines the bytes of its result-store row:

* the fully-expanded scenario specification (which embeds the scheduling
  policy, the federation routing/topology, the fault plan and the
  *declarative* workload provenance -- trace path, statistical model and
  transformation chain);
* the replicate index and the run seed (itself
  :func:`~repro.sim.randomness.derive_seed` of the campaign root seed and
  the base scenario name);
* the observation configuration that changes row content (``--obs`` adds an
  ``obs`` field, ``--slo`` an ``slo`` field).

Because the key is a :func:`~repro.sim.randomness.stable_fingerprint`
(SHA-256) of a canonical JSON payload, it is identical across processes,
machines and Python versions: a replayed or duplicate-delivered unit maps to
the same key everywhere, which is what makes retries and resume no-ops.
"""
from __future__ import annotations

import json
from typing import Dict, Mapping

from ..sim.randomness import stable_fingerprint

__all__ = ["unit_key", "task_to_dict", "task_from_dict"]


def unit_key(task) -> str:
    """The idempotency key of one run task (see module docstring).

    The readable prefix (scenario name + replicate) makes store rows and
    coordinator logs greppable; the fingerprint suffix is what guarantees
    uniqueness across specs that share a name.
    """
    payload = json.dumps(
        {
            "scenario": task.scenario.to_dict(),
            "base_scenario": task.base_scenario or task.scenario.name,
            "replicate": task.replicate,
            "seed": task.seed,
            "collect_obs": bool(task.collect_obs),
            "slo_spec": task.slo_spec or "",
        },
        sort_keys=True,
    )
    return f"{task.scenario.name}:r{task.replicate}:{stable_fingerprint(payload)}"


def task_to_dict(task) -> Dict:
    """JSON-safe wire form of a :class:`~repro.campaign.runner.RunTask`."""
    return {
        "scenario": task.scenario.to_dict(),
        "replicate": task.replicate,
        "seed": task.seed,
        "base_scenario": task.base_scenario,
        "collect_obs": bool(task.collect_obs),
        "trace_dir": task.trace_dir,
        "slo_spec": task.slo_spec,
    }


def task_from_dict(data: Mapping):
    """Rebuild a :class:`~repro.campaign.runner.RunTask` from its wire form.

    Imported lazily to keep this module free of a circular dependency on the
    runner (which imports :func:`unit_key` for its result records).
    """
    from .runner import RunTask
    from .spec import ScenarioSpec

    return RunTask(
        scenario=ScenarioSpec.from_dict(data["scenario"]),
        replicate=int(data["replicate"]),
        seed=int(data["seed"]),
        base_scenario=str(data.get("base_scenario", "")),
        collect_obs=bool(data.get("collect_obs", False)),
        trace_dir=str(data.get("trace_dir", "")),
        slo_spec=str(data.get("slo_spec", "")),
    )
