"""The :class:`SchedulingPolicy` composition object.

A policy is nothing more than one strategy per stage plus a name; the
scheduler calls the stages, never the policy registry, so custom policies
can be assembled programmatically and handed to
:class:`~repro.core.scheduler.Scheduler` or :class:`~repro.core.rms.CooRMv2`
without registering them.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .base import BackfillStrategy, OrderingStrategy, SharingStrategy

__all__ = ["SchedulingPolicy"]


@dataclass(frozen=True)
class SchedulingPolicy:
    """One named composition of ordering, backfilling and sharing stages."""

    name: str
    ordering: OrderingStrategy
    backfill: BackfillStrategy
    sharing: SharingStrategy
    description: str = ""

    def stage_names(self) -> Dict[str, str]:
        """The registry names of the three composed stages."""
        return {
            "ordering": self.ordering.name,
            "backfill": self.backfill.name,
            "sharing": self.sharing.name,
        }

    def to_dict(self) -> Dict[str, str]:
        """JSON-friendly description (round-trips through ``resolve_policy``)."""
        out = {"name": self.name}
        out.update(self.stage_names())
        return out

    def describe(self) -> str:
        stages = self.stage_names()
        summary = " + ".join(f"{kind}={name}" for kind, name in stages.items())
        if self.description:
            return f"{self.name}: {self.description} ({summary})"
        return f"{self.name}: {summary}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stages = self.stage_names()
        return (
            f"SchedulingPolicy({self.name!r}, {stages['ordering']}/"
            f"{stages['backfill']}/{stages['sharing']})"
        )
