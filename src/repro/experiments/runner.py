"""Shared machinery of the evaluation experiments (paper Section 5).

Every simulation-based figure (9, 10, 11) uses the same scenario: one
non-predictably evolving AMR application plus one or two malleable
Parameter-Sweep Applications on a single homogeneous cluster, scheduled by
CooRMv2 with a 1-second re-scheduling interval.  :func:`run_scenario` builds
and runs that scenario and returns the collected metrics;
:class:`EvaluationScale` groups the size knobs so the same code can run at
the paper's full scale, at a reduced scale (default for EXPERIMENTS.md) or at
a tiny scale suitable for unit tests and benchmarks.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from ..apps.nea import AmrApplication
from ..apps.psa import ParameterSweepApplication
from ..apps.rigid import RigidApplication
from ..cluster.platform import Platform
from ..core.errors import AdmissionError, RequestError
from ..core.rms import CooRMv2
from ..faults.injector import FaultInjector
from ..faults.plan import resolve_fault_plan
from ..federation.federation import Federation, locality_group
from ..federation.metrics import collect_federated
from ..federation.spec import FederationSpec
from ..sim.randomness import derive_seed
from ..metrics.collector import SimulationMetrics
from ..models.amr_evolution import AmrEvolutionParameters, WorkingSetEvolution
from ..models.speedup import PAPER_SPEEDUP_MODEL, SpeedupModel, TIB_IN_MIB
from ..models.static_equivalent import equivalent_static_allocation
from ..sim.engine import Simulator
from ..traces.convert import ConvertedJob, build_application, replay_horizon
from ..workloads.generator import RigidJobSpec

__all__ = ["EvaluationScale", "ScenarioResult", "build_evolution", "run_scenario"]


@dataclass(frozen=True)
class EvaluationScale:
    """Size knobs of the evaluation scenario.

    ``paper()`` reproduces the parameters of Section 5 exactly;
    ``reduced()`` shrinks the run so a full figure sweep completes in minutes
    on a laptop; ``tiny()`` is meant for tests and pytest benchmarks.
    """

    #: Number of AMR steps (1000 in the paper).
    num_steps: int = 1000
    #: Peak working-set size in MiB (3.16 TiB in the paper).
    s_max_mib: float = 3.16 * TIB_IN_MIB
    #: Target efficiency of the AMR application.
    target_efficiency: float = 0.75
    #: Task duration of the primary PSA (PSA1), seconds.
    psa1_task_duration: float = 600.0
    #: Task duration of the secondary PSA (PSA2), seconds.
    psa2_task_duration: float = 60.0
    #: Cluster size as a multiple of the pre-allocation (the paper picks
    #: n = 1400 * overcommit, i.e. about 1.16x the AMR's pre-allocation).
    cluster_headroom: float = 1.16
    #: RMS re-scheduling interval, seconds (1 s in the paper).
    rescheduling_interval: float = 1.0

    @classmethod
    def paper(cls) -> "EvaluationScale":
        """The exact parameters of the paper's evaluation."""
        return cls()

    @classmethod
    def reduced(cls) -> "EvaluationScale":
        """A ~4x smaller platform and 4x shorter run; same qualitative shape."""
        return cls(
            num_steps=250,
            s_max_mib=3.16 * TIB_IN_MIB / 4.0,
            psa1_task_duration=600.0,
            psa2_task_duration=60.0,
        )

    @classmethod
    def tiny(cls) -> "EvaluationScale":
        """A toy scale for unit tests and micro-benchmarks."""
        return cls(
            num_steps=40,
            s_max_mib=3.16 * TIB_IN_MIB / 32.0,
            psa1_task_duration=60.0,
            psa2_task_duration=10.0,
        )

    def with_steps(self, num_steps: int) -> "EvaluationScale":
        return replace(self, num_steps=num_steps)


@dataclass
class ScenarioResult:
    """Everything an experiment needs from one simulated scenario."""

    metrics: SimulationMetrics
    amr: Optional[AmrApplication]
    psas: List[ParameterSweepApplication]
    rms: CooRMv2
    #: The user's "ideal" pre-allocation guess (the equivalent static
    #: allocation computed with a-posteriori knowledge), before overcommit.
    ideal_preallocation: int
    cluster_nodes: int
    #: Background rigid batch jobs (empty unless the scenario mixes them in).
    rigid_apps: List[RigidApplication] = field(default_factory=list)
    #: Applications replayed from a converted workload trace (any kind).
    trace_apps: List = field(default_factory=list)
    #: The federation that ran the scenario (None on the single-cluster
    #: path; when set, ``rms`` is the first member's RMS).
    federation: Optional[Federation] = None
    #: The fault injector that played the scenario's fault plan (None on
    #: fault-free runs); carries the recovery/SLA ledger.
    fault_injector: Optional[FaultInjector] = None


def build_evolution(
    scale: EvaluationScale,
    seed: Optional[int] = None,
    model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> WorkingSetEvolution:
    """Draw one AMR working-set evolution at the given scale.

    For runs shorter than the paper's 1000 steps the model parameters are
    rescaled (see :meth:`AmrEvolutionParameters.scaled`) so that the profile
    keeps the documented mostly-increasing shape instead of degenerating into
    normalised noise.
    """
    if scale.num_steps == 1000:
        params = AmrEvolutionParameters(num_steps=scale.num_steps)
    else:
        params = AmrEvolutionParameters.scaled(scale.num_steps)
    return WorkingSetEvolution.generate(scale.s_max_mib, seed=seed, params=params)


def ideal_preallocation_nodes(
    evolution: WorkingSetEvolution,
    scale: EvaluationScale,
    model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> int:
    """The best static guess assuming a-posteriori knowledge (Section 5.1.1).

    This is the equivalent static allocation for the target efficiency; the
    overcommit factor multiplies it.  When no equivalent static allocation
    exists the peak dynamic requirement is used instead.
    """
    result = equivalent_static_allocation(evolution, scale.target_efficiency, model)
    if result is not None:
        return max(1, int(round(result.n_eq)))
    # Fall back to the peak requirement of the dynamic allocation.
    peak = model.nodes_for_efficiency(evolution.peak_size_mib, scale.target_efficiency)
    return max(1, peak)


def run_scenario(
    scale: EvaluationScale,
    seed: int = 0,
    overcommit: float = 1.0,
    announce_interval: float = 0.0,
    static_allocation: bool = False,
    psa_task_durations: Sequence[float] = None,
    strict_equipartition: bool = False,
    speedup_model: SpeedupModel = PAPER_SPEEDUP_MODEL,
    evolution: Optional[WorkingSetEvolution] = None,
    include_amr: bool = True,
    rigid_jobs: Optional[Sequence[RigidJobSpec]] = None,
    adaptive_jobs: Optional[Sequence[ConvertedJob]] = None,
    cluster_nodes: Optional[int] = None,
    kill_protocol_violators: bool = False,
    violation_grace: float = 30.0,
    horizon: Optional[float] = None,
    policy=None,
    federation: Optional[FederationSpec] = None,
    faults=None,
) -> ScenarioResult:
    """Run one AMR + PSA(s) scenario and collect its metrics.

    Parameters mirror the paper's experiment knobs: the *overcommit* factor
    scales the user's pre-allocation guess (Figure 9), *announce_interval*
    switches between spontaneous and announced updates (Figure 10),
    *psa_task_durations* selects one or two PSAs (Figure 11) and
    *strict_equipartition* selects the baseline sharing policy.

    The campaign layer adds a few composition knobs: *include_amr* drops the
    evolving application (PSA/rigid-only scenarios), *rigid_jobs* layers a
    stream of classical batch jobs on top of the paper workload (each job is
    submitted to the RMS at its trace submit time), *adaptive_jobs* replays a
    converted workload trace as a mix of rigid/moldable/malleable/evolving
    applications (see :mod:`repro.traces.convert`), *cluster_nodes* pins the
    platform size instead of deriving it from the AMR pre-allocation, and
    *kill_protocol_violators* / *violation_grace* forward to the RMS.

    *policy* selects the scheduling policy (a registered name, stage mapping
    or :class:`~repro.policies.SchedulingPolicy`); when given it supersedes
    the *strict_equipartition* shorthand.

    *federation* runs the scenario on a multi-cluster federation instead of
    a single scheduler: one :class:`~repro.core.rms.CooRMv2` per member
    cluster (derived -- ``nodes == 0`` -- members get the single-cluster
    size), all driven by the same event engine, with every application
    placed by the federation's routing policy at its submission time.  A
    1-cluster federation under the ``any`` routing is byte-identical to the
    single-scheduler path.

    *faults* (a registered plan name, plan dict or
    :class:`~repro.faults.plan.FaultPlan`) arms a deterministic fault
    injector against the federation: node crashes/restarts, member
    outages with rerouting, elastic capacity rules and meta-scheduler
    admission control.  Jobs killed by a fault are resubmitted (up to the
    plan's ``max_respawns``) or counted lost; initial submissions refused
    by admission control are counted rejected.  Requires *federation*.
    """
    if overcommit <= 0:
        raise ValueError("overcommit must be positive")
    if psa_task_durations is None:
        psa_task_durations = (scale.psa1_task_duration,)

    if evolution is None:
        evolution = build_evolution(scale, seed=seed, model=speedup_model)
    ideal = ideal_preallocation_nodes(evolution, scale, speedup_model)
    preallocation = max(1, int(round(ideal * overcommit)))
    if cluster_nodes is None:
        cluster_nodes = max(
            preallocation + 1, int(math.ceil(preallocation * scale.cluster_headroom))
        )
    if cluster_nodes <= 0:
        raise ValueError("cluster_nodes must be positive")

    simulator = Simulator()
    fed: Optional[Federation] = None
    if federation is not None:
        # Derived (nodes == 0) members get the single-cluster size, so the
        # 1-cluster federation of the equivalence guarantee sizes its only
        # member exactly like the direct path sizes its platform.
        fed = Federation(
            federation.resolved(cluster_nodes),
            simulator,
            rescheduling_interval=scale.rescheduling_interval,
            default_policy=policy,
            strict_equipartition=strict_equipartition,
            kill_protocol_violators=kill_protocol_violators,
            violation_grace=violation_grace,
            seed=seed,
        )
        rms = fed.members[0].rms
        cluster_nodes = fed.total_nodes()
    elif faults is not None:
        raise ValueError("fault injection requires a federation")
    else:
        platform = Platform.single_cluster(cluster_nodes)
        rms = CooRMv2(
            platform,
            simulator,
            rescheduling_interval=scale.rescheduling_interval,
            strict_equipartition=strict_equipartition,
            kill_protocol_violators=kill_protocol_violators,
            violation_grace=violation_grace,
            policy=policy,
        )

    injector: Optional[FaultInjector] = None
    if faults is not None:
        # The fault stream gets its own derived seed so a plan's jitter
        # never correlates with the workload drawn from the scenario seed.
        injector = FaultInjector(
            resolve_fault_plan(faults), fed, seed=derive_seed(seed, "faults")
        )
        injector.arm()

    amr: Optional[AmrApplication] = None
    if include_amr:
        amr = AmrApplication(
            name="amr",
            evolution=evolution,
            preallocation_nodes=preallocation,
            target_efficiency=scale.target_efficiency,
            announce_interval=announce_interval,
            static_allocation=static_allocation,
            speedup_model=speedup_model,
        )
    psas = [
        ParameterSweepApplication(f"psa{i + 1}", task_duration=duration)
        for i, duration in enumerate(psa_task_durations)
    ]
    if amr is not None:
        amr.on_finished = lambda _app: [psa.shutdown() for psa in psas]
        if fed is None:
            amr.connect(rms)
        else:
            fed.submit(amr, node_count=preallocation)
    for psa in psas:
        if fed is None:
            psa.connect(rms)
        else:
            fed.submit(psa)

    rigid_apps: List[RigidApplication] = []
    trace_apps: List = []

    def submit_rigid(job: RigidJobSpec) -> None:
        """Route one rigid job now and connect it to its member.

        Rigid jobs keep their exact recorded size -- like the direct path,
        a job too large for every cluster fails loudly rather than being
        silently reshaped (trace *conversions* clamp; rigid replays don't).
        """

        def spawn(name: str) -> None:
            app = RigidApplication(
                name, node_count=job.node_count, duration=job.duration
            )
            fed.submit(
                app, node_count=job.node_count, group=locality_group(job.job_id)
            )
            rigid_apps.append(app)

        _faulted_submit(spawn, job.job_id)

    def submit_converted(converted: ConvertedJob) -> None:
        """Route one trace job now and build it clamped to its member."""

        def spawn(name: str) -> None:
            member = fed.meta.place(
                name,
                node_count=converted.node_count,
                group=locality_group(converted.job_id),
                now=simulator.now,
            )
            app = build_application(
                replace(converted, job_id=name), member.capacity
            )
            fed.attach(member, app, node_count=converted.node_count)
            trace_apps.append(app)

        _faulted_submit(spawn, converted.job_id)

    def _faulted_submit(spawn, job_id: str) -> None:
        """Submit via *spawn*; under a fault plan, account and register.

        On fault-free federations this is a plain passthrough (exceptions
        propagate exactly as before).  Under an armed injector the job is
        counted, admission refusals become "rejected" instead of a crash,
        and a successful submission registers *spawn* as the respawn
        factory for when a fault later kills the job.
        """
        if injector is None:
            spawn(job_id)
            return
        injector.note_submitted()
        try:
            spawn(job_id)
        except (AdmissionError, RequestError):
            injector.note_rejected(job_id)
            return
        injector.register_respawn(job_id, spawn)

    for job in rigid_jobs or ():
        if fed is None:
            app = RigidApplication(
                job.job_id, node_count=job.node_count, duration=job.duration
            )
            simulator.schedule_at(job.submit_time, app.connect, rms)
            rigid_apps.append(app)
        else:
            simulator.schedule_at(job.submit_time, submit_rigid, job)

    for converted in adaptive_jobs or ():
        if fed is None:
            app = build_application(converted, cluster_nodes)
            simulator.schedule_at(converted.submit_time, app.connect, rms)
            trace_apps.append(app)
        else:
            simulator.schedule_at(converted.submit_time, submit_converted, converted)

    if amr is None and psas:
        # Without an AMR nothing shuts the (otherwise endless) PSAs down;
        # stop them once the background streams are over or after one PSA1
        # horizon.  Converted traces contribute their replay horizon (the
        # last job's earliest possible completion).
        last_submit = max((j.submit_time + j.duration for j in rigid_jobs or ()), default=0.0)
        last_submit = max(last_submit, replay_horizon(tuple(adaptive_jobs or ())))
        stop_at = max(last_submit, 10.0 * scale.psa1_task_duration)
        simulator.schedule_at(stop_at, lambda: [psa.shutdown() for psa in psas])

    simulator.run()

    if fed is not None:
        metrics = collect_federated(fed, amr=amr, psas=psas, horizon=horizon)
    else:
        metrics = SimulationMetrics.collect(rms, amr=amr, psas=psas, horizon=horizon)
    return ScenarioResult(
        metrics=metrics,
        amr=amr,
        psas=psas,
        rms=rms,
        ideal_preallocation=ideal,
        cluster_nodes=cluster_nodes,
        rigid_apps=rigid_apps,
        trace_apps=trace_apps,
        federation=fed,
        fault_injector=injector,
    )
