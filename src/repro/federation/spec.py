"""Declarative multi-cluster federation specifications.

A :class:`FederationSpec` describes a federation *topology* -- the named
member clusters with their capacities and per-cluster scheduling policies --
plus the request-routing policy of the meta-scheduler.  Like every other
spec in the campaign layer it is a plain frozen dataclass that round-trips
losslessly through dictionaries and JSON, so federated scenarios can be
written by hand, versioned next to their results, and replayed later.

The spec describes *what* to federate, never *how*: execution lives in
:mod:`repro.federation.federation`.
"""
from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..policies.registry import policy_label
from .routing import DEFAULT_ROUTING, make_routing

__all__ = [
    "ClusterSpec",
    "FederationSpec",
    "register_topology",
    "topology_names",
    "get_topology",
]


def _filter_kwargs(cls, data: Mapping) -> Dict:
    """Keep only keys that are fields of *cls*, rejecting unknown ones."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"{cls.__name__} does not understand field(s): {sorted(unknown)}"
        )
    return dict(data)


@dataclass(frozen=True)
class ClusterSpec:
    """One member cluster of a federation.

    ``nodes == 0`` means "derive the size from the scenario's evolving
    application" exactly like ``PlatformSpec.cluster_nodes == 0`` does for
    the single-cluster path.  ``policy`` optionally gives this member its
    own scheduling policy (a registered name or stage mapping); ``None``
    inherits the scenario's policy.

    ``min_nodes``/``max_nodes`` bound how far elastic fault-plan rules may
    resize this member (0 = unbounded); fault crashes and outages ignore
    the bounds, as real failures would.
    """

    name: str
    nodes: int = 0
    policy: Optional[Union[str, Mapping]] = None
    min_nodes: int = 0
    max_nodes: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cluster name must not be empty")
        if self.nodes < 0:
            raise ValueError("cluster nodes must be >= 0 (0 = derive)")
        if self.min_nodes < 0 or self.max_nodes < 0:
            raise ValueError("elastic node bounds must be >= 0 (0 = unbounded)")
        if self.max_nodes and self.max_nodes < max(self.min_nodes, self.nodes):
            raise ValueError(
                f"cluster {self.name!r}: max_nodes ({self.max_nodes}) must "
                f"cover min_nodes and the base size"
            )
        if isinstance(self.policy, Mapping):
            object.__setattr__(self, "policy", dict(self.policy))
        if self.policy is not None:
            policy_label(self.policy)  # fail fast on unknown policies

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "nodes": self.nodes,
            "policy": self.policy if not isinstance(self.policy, Mapping)
            else dict(self.policy),
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ClusterSpec":
        return cls(**_filter_kwargs(cls, data))


@dataclass(frozen=True)
class FederationSpec:
    """A federation topology plus the meta-scheduler's routing policy."""

    clusters: Tuple[ClusterSpec, ...] = field(default_factory=tuple)
    routing: str = DEFAULT_ROUTING

    def __post_init__(self) -> None:
        promoted = tuple(
            c if isinstance(c, ClusterSpec) else ClusterSpec.from_dict(c)
            for c in self.clusters
        )
        object.__setattr__(self, "clusters", promoted)
        if not self.clusters:
            raise ValueError("a federation needs at least one cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names in federation: {names}")
        make_routing(self.routing)  # fail fast on unknown routing policies

    # ------------------------------------------------------------------ #
    @property
    def cluster_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.clusters)

    def total_nodes(self, default_nodes: int = 0) -> int:
        """Total capacity with derived (``nodes == 0``) members resolved."""
        return sum(c.nodes or default_nodes for c in self.clusters)

    def resolved(self, default_nodes: int) -> "FederationSpec":
        """This spec with every derived member size made concrete."""
        if default_nodes <= 0:
            raise ValueError("default_nodes must be positive")
        if all(c.nodes > 0 for c in self.clusters):
            return self
        return replace(
            self,
            clusters=tuple(
                c if c.nodes > 0 else replace(c, nodes=default_nodes)
                for c in self.clusters
            ),
        )

    def with_routing(self, routing: str) -> "FederationSpec":
        make_routing(routing)  # validate before baking into a spec
        return replace(self, routing=routing)

    def label(self) -> str:
        """Compact topology label for result records and reports."""
        inner = "+".join(
            f"{c.name}:{c.nodes if c.nodes else '*'}" for c in self.clusters
        )
        return f"{len(self.clusters)}x[{inner}]"

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "clusters": [c.to_dict() for c in self.clusters],
            "routing": self.routing,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FederationSpec":
        kwargs = _filter_kwargs(cls, data)
        if "clusters" in kwargs:
            kwargs["clusters"] = tuple(kwargs["clusters"])
        return cls(**kwargs)


# --------------------------------------------------------------------- #
# Built-in topologies
# --------------------------------------------------------------------- #
_TOPOLOGIES: Dict[str, FederationSpec] = {}


def register_topology(name: str, spec: FederationSpec) -> FederationSpec:
    """Register a named federation topology (for the CLI and examples)."""
    if name in _TOPOLOGIES:
        raise ValueError(f"federation topology {name!r} is already registered")
    _TOPOLOGIES[name] = spec
    return spec


def topology_names() -> List[str]:
    return sorted(_TOPOLOGIES)


def get_topology(name: str) -> FederationSpec:
    try:
        return _TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown federation topology {name!r}; known: {topology_names()}"
        ) from None


register_topology(
    "single",
    FederationSpec(clusters=(ClusterSpec(name="cluster0"),)),
)
register_topology(
    "dual",
    FederationSpec(
        clusters=(
            ClusterSpec(name="east", nodes=32),
            ClusterSpec(name="west", nodes=32),
        ),
        routing="round-robin",
    ),
)
register_topology(
    "hetero3",
    FederationSpec(
        clusters=(
            ClusterSpec(name="small", nodes=16),
            ClusterSpec(name="medium", nodes=32),
            ClusterSpec(name="large", nodes=64),
        ),
        routing="least-loaded",
    ),
)
