"""``python -m repro`` -- the campaign orchestration CLI."""
import sys

from .campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
