"""Shared configuration of the benchmark harness.

Every benchmark regenerates one figure (or one ablation) of the paper at a
configurable scale and prints the corresponding rows/series after timing the
run, so that ``pytest benchmarks/ --benchmark-only -s`` doubles as the
figure-reproduction harness.  The scale is kept small by default so the whole
suite completes in a few minutes; EXPERIMENTS.md records a larger run.
"""
from __future__ import annotations

import pytest

from repro.experiments import EvaluationScale


@pytest.fixture(scope="session")
def bench_scale() -> EvaluationScale:
    """Scale used by the simulation benchmarks (tiny, a few seconds each)."""
    return EvaluationScale.tiny()


@pytest.fixture(scope="session")
def report_scale() -> EvaluationScale:
    """Scale used when printing figure tables (slightly larger than tiny)."""
    return EvaluationScale.tiny().with_steps(80)
