"""The ``python -m repro federation`` command group.

Commands::

    python -m repro federation list
    python -m repro federation describe NAME [--json]
    python -m repro federation run --topology hetero3 --routing least-loaded \
        --scenario trace-replay [--seed N]

``list`` fronts the routing-policy registry and the built-in federation
topologies; ``describe`` prints one routing policy's behaviour or one
topology's member clusters; ``run`` executes a single federated scenario --
a built-in scenario re-homed onto a named topology -- and prints its
metrics, including the per-cluster breakdown.
"""
from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from ..core.errors import ReproError
from ..metrics.report import format_table
from ..obs.logsetup import get_logger
from ..sim.randomness import derive_seed
from .routing import describe_routing, make_routing, routing_names
from .spec import get_topology, topology_names

__all__ = ["add_federation_commands", "run_federation_command"]

_LOG = get_logger("federation")


def add_federation_commands(commands: argparse._SubParsersAction) -> None:
    """Attach the ``federation`` command group to the top-level CLI parser."""
    federation = commands.add_parser(
        "federation", help="inspect routing policies and run federated scenarios"
    )
    actions = federation.add_subparsers(dest="action", required=True)

    actions.add_parser(
        "list", help="list routing policies and built-in topologies"
    )

    describe = actions.add_parser(
        "describe", help="show one routing policy or topology"
    )
    describe.add_argument("name", help="routing policy or topology name")
    describe.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    run = actions.add_parser("run", help="run one scenario on a federation")
    run.add_argument(
        "--scenario", default="trace-replay",
        help="built-in scenario to federate (default: trace-replay)",
    )
    run.add_argument(
        "--topology", default="hetero3",
        help="built-in federation topology (default: hetero3)",
    )
    run.add_argument(
        "--routing", default=None,
        help="routing policy override (default: the topology's own)",
    )
    run.add_argument(
        "--faults", default=None,
        help="fault plan to arm against the federation (a registered plan "
        "name, see `federation list`)",
    )
    run.add_argument("--seed", type=int, default=0, help="root seed (default 0)")


def _cmd_list(_args: argparse.Namespace) -> int:
    from ..faults.plan import fault_plan_names, get_fault_plan

    rows = [
        ("routing", name, describe_routing(name)) for name in routing_names()
    ]
    for name in topology_names():
        topology = get_topology(name)
        rows.append(("topology", name, topology.label()))
    for name in fault_plan_names():
        rows.append(("fault-plan", name, get_fault_plan(name).label()))
    print(format_table(["kind", "name", "description"], rows))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    if args.name in routing_names():
        if args.json:
            print(
                json.dumps(
                    {"routing": args.name, "description": describe_routing(args.name)},
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        policy = make_routing(args.name)
        print((policy.__doc__ or "").strip())
        return 0
    try:
        topology = get_topology(args.name)
    except KeyError:
        print(
            f"error: unknown routing policy or topology {args.name!r}; "
            f"routings: {routing_names()}, topologies: {topology_names()}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(topology.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"topology {args.name}: routing={topology.routing}")
    rows = [
        (c.name, c.nodes if c.nodes else "derived", c.policy or "(scenario default)")
        for c in topology.clusters
    ]
    print(format_table(["cluster", "nodes", "policy"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    # Imported here: the campaign layer depends on this package, so the
    # module level must stay import-light to avoid a cycle.
    from ..campaign.registry import builtin_scenarios, get_runner

    scenarios = builtin_scenarios()
    if args.scenario not in scenarios:
        print(
            f"error: unknown scenario {args.scenario!r}; known: "
            f"{sorted(scenarios)}",
            file=sys.stderr,
        )
        return 2
    try:
        topology = get_topology(args.topology)
        if args.routing is not None:
            topology = topology.with_routing(args.routing)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    spec = replace(scenarios[args.scenario], federation=topology)
    if args.faults is not None:
        try:
            spec = replace(spec, faults=args.faults)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    seed = derive_seed(args.seed, spec.name, 0)
    try:
        metrics = dict(get_runner(spec.runner)(spec, seed))
    except (ValueError, ReproError) as exc:
        # e.g. a figure runner rejecting federation, or a topology none of
        # whose clusters can hold the scenario's applications.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _LOG.info(
        "scenario %r on topology %r (routing %r, seed %d)",
        spec.name,
        args.topology,
        topology.routing,
        seed,
    )
    print(format_table(["metric", "value"], sorted(metrics.items())))
    return 0


def run_federation_command(args: argparse.Namespace) -> int:
    handlers = {
        "list": _cmd_list,
        "describe": _cmd_describe,
        "run": _cmd_run,
    }
    return handlers[args.action](args)
