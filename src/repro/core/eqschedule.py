"""``eqSchedule()`` -- equi-partitioning of preemptible resources (Algorithm 3).

The resources left after serving pre-allocations and non-preemptible requests
are shared among the preemptible requests of all applications.  The policy is
*equi-partitioning with filling*:

* when the system is congested (the applications together ask for more than
  is available), every active application receives a max-min-fair share of
  the capacity, and inactive applications are shown the share they would get
  if they became active;
* when the system is not congested, every application is shown whatever the
  other applications leave unused -- but never less than its equal partition
  -- which is what lets a second Parameter-Sweep Application fill the "holes"
  left by the first one (paper Section 5.4).

A *strict* mode disables the filling and always shows exactly the equal
partition; it implements the "strict equi-partitioning" baseline of Figure 11.
"""
from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from .fit import fit
from .profile import StepFunction
from .request_set import RequestSet
from .toview import to_view
from .types import ClusterId, Time
from .view import View

__all__ = ["eq_schedule", "max_min_fair", "partition_schedule", "weighted_max_min_fair"]


def max_min_fair(demands: Sequence[int], capacity: int) -> List[int]:
    """Max-min fair integer allocation of *capacity* among *demands*.

    Classic water-filling: the capacity is repeatedly divided equally among
    the applications whose demand is not yet satisfied.  Allocations never
    exceed the demand and their sum never exceeds the capacity.
    """
    n = len(demands)
    alloc = [0] * n
    remaining = int(capacity)
    unsatisfied = [i for i in range(n) if demands[i] > 0]
    while remaining > 0 and unsatisfied:
        share = max(remaining // len(unsatisfied), 1)
        progressed = False
        for i in list(unsatisfied):
            if remaining <= 0:
                break
            grant = min(share, demands[i] - alloc[i], remaining)
            if grant > 0:
                alloc[i] += grant
                remaining -= grant
                progressed = True
            if alloc[i] >= demands[i]:
                unsatisfied.remove(i)
        if not progressed:
            break
    return alloc


def weighted_max_min_fair(
    demands: Sequence[int], weights: Sequence[float], capacity: int
) -> List[int]:
    """Weighted max-min fair integer allocation of *capacity* among *demands*.

    Water-filling where each unsatisfied application receives capacity in
    proportion to its weight.  With uniform weights this degenerates to
    :func:`max_min_fair`.  Allocations never exceed the demand and their sum
    never exceeds the capacity.
    """
    n = len(demands)
    if len(weights) != n:
        raise ValueError("demands and weights must have the same length")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    alloc = [0] * n
    remaining = int(capacity)
    unsatisfied = [i for i in range(n) if demands[i] > 0]
    while remaining > 0 and unsatisfied:
        total_weight = sum(weights[i] for i in unsatisfied)
        # Shares are computed against the capacity left at the start of the
        # round, so the split within one round is order-independent.
        round_remaining = remaining
        progressed = False
        for i in list(unsatisfied):
            if remaining <= 0:
                break
            share = max(int(round_remaining * weights[i] // total_weight), 1)
            grant = min(share, demands[i] - alloc[i], remaining)
            if grant > 0:
                alloc[i] += grant
                remaining -= grant
                progressed = True
            if alloc[i] >= demands[i]:
                unsatisfied.remove(i)
        if not progressed:
            break
    return alloc


def _interval_breakpoints(profiles: Sequence[StepFunction], horizon: Time) -> List[Time]:
    """Sorted union of the profiles' breakpoints, clipped to [0, horizon]."""
    points = {0.0}
    for p in profiles:
        for t in p.times:
            if 0.0 <= t < horizon:
                points.add(float(t))
    return sorted(points)


def _partition_interval(
    demands: List[int], capacity: int, strict: bool
) -> List[int]:
    """Compute the per-application view values for one constant interval.

    Returns the node count each application should see in its preemptive
    view during the interval (Algorithm 3, lines 8-25).
    """
    n_apps = len(demands)
    if n_apps == 0:
        return []
    active = [i for i in range(n_apps) if demands[i] > 0]
    n_active = len(active)

    if strict:
        # Strict equi-partitioning: everyone is shown an equal slice of the
        # capacity, regardless of what the others actually use.
        share = capacity // n_apps if n_apps else 0
        return [share] * n_apps

    total_demand = sum(demands)
    views = [0] * n_apps

    if total_demand > capacity:
        # Congested: active applications receive a max-min-fair share of the
        # capacity, but the view never shows less than the equal partition
        # (the paper's loop hands every application one equal slice before
        # redistributing what small applications do not use).  Inactive
        # applications are shown the partition they would get if they became
        # active.
        fair = max_min_fair(demands, capacity)
        active_share = capacity // n_active if n_active else 0
        inactive_share = capacity // (n_active + 1)
        for i in range(n_apps):
            if demands[i] > 0:
                views[i] = max(fair[i], active_share)
            else:
                views[i] = inactive_share
    else:
        # Not congested: show each application what the others leave free,
        # but never less than its equal partition.
        for i in range(n_apps):
            leftover = capacity - (total_demand - demands[i])
            partitions = n_active if demands[i] > 0 else n_active + 1
            partitions = max(partitions, 1)
            equal_share = capacity // partitions
            views[i] = max(leftover, equal_share)
    return views


def eq_schedule(
    preemptible_sets: Mapping[str, RequestSet],
    available: View,
    not_before: Time,
    horizon: Time = None,
    strict: bool = False,
) -> Dict[str, View]:
    """Equi-partition *available* among the applications' preemptible requests.

    Parameters
    ----------
    preemptible_sets:
        Mapping of application id to its preemptible :class:`RequestSet`
        (``R_P^{(i)}`` in the paper), in application arrival order.
    available:
        View of the resources available for preemptible scheduling (``V_in``).
    not_before:
        Non-started requests are scheduled no earlier than this time.
    horizon:
        Time horizon used to discretise the profiles.  Defaults to the last
        breakpoint of all involved profiles plus one day, which is always
        sufficient because profiles are constant beyond their last breakpoint.
    strict:
        Enable the strict equi-partitioning baseline (no filling).

    Returns
    -------
    dict
        Application id -> preemptive view ``V_P^{(i)}``.
    """
    return partition_schedule(
        preemptible_sets,
        available,
        not_before,
        horizon=horizon,
        partition=lambda demands, capacity: _partition_interval(demands, capacity, strict),
    )


def partition_schedule(
    preemptible_sets: Mapping[str, RequestSet],
    available: View,
    not_before: Time,
    horizon: Time = None,
    partition=None,
) -> Dict[str, View]:
    """Share *available* among preemptible requests under a partition policy.

    This is the sharing machinery of Algorithm 3 with the per-interval
    partition rule factored out: *partition* is called with the applications'
    integer demands and the interval's capacity (``(demands, capacity) ->
    values``, in application arrival order) and returns the node count each
    application's preemptive view shows for that interval.
    :func:`eq_schedule` plugs in equi-partitioning (with or without filling);
    the policy subsystem (:mod:`repro.policies.sharing`) supplies alternative
    rules such as weighted max-min sharing.
    """
    if partition is None:
        def partition(demands, capacity):
            return _partition_interval(demands, capacity, False)

    app_ids = list(preemptible_sets.keys())

    # Step 1: preliminary occupation views (Algorithm 3, lines 1-3).
    occupation: Dict[str, View] = {}
    for app_id in app_ids:
        requests = preemptible_sets[app_id]
        fixed_occ = to_view(requests, available)
        pending_occ = fit(requests, available - fixed_occ, not_before)
        occupation[app_id] = fixed_occ + pending_occ

    clusters = set(available.clusters())
    for occ in occupation.values():
        clusters.update(occ.clusters())

    if horizon is None:
        last = 0.0
        for profile in [available[c] for c in clusters] + [
            occ[c] for occ in occupation.values() for c in clusters
        ]:
            if profile.times:
                last = max(last, profile.times[-1])
        horizon = last + 86_400.0

    # Step 2: per-cluster, per-interval partitioning (lines 4-27).  The value
    # computed for the last interval extends to infinity (profiles are
    # constant beyond their last breakpoint, so so is the partition).
    per_app_caps: Dict[str, Dict[ClusterId, StepFunction]] = {a: {} for a in app_ids}
    for cid in sorted(clusters):
        # Profile lookups are hoisted out of the breakpoint loop: the loop
        # body runs once per (cluster, breakpoint) pair and used to redo the
        # view/dict indirection for every single evaluation.
        avail_profile = available[cid]
        occ_profiles = [occupation[a][cid] for a in app_ids]
        profiles = [avail_profile] + occ_profiles
        breakpoints = _interval_breakpoints(profiles, horizon)
        per_app_values: Dict[str, List[float]] = {a: [] for a in app_ids}
        floor = math.floor
        ceil = math.ceil
        for t in breakpoints:
            capacity = int(floor(avail_profile.value_at(t) + 1e-9))
            capacity = max(capacity, 0)
            demands = [int(ceil(p.value_at(t) - 1e-9)) for p in occ_profiles]
            values = partition(demands, capacity)
            for a, v in zip(app_ids, values):
                per_app_values[a].append(float(v))
        for a in app_ids:
            if per_app_values[a]:
                per_app_caps[a][cid] = StepFunction(breakpoints, per_app_values[a])

    result: Dict[str, View] = {}
    for app_id in app_ids:
        result[app_id] = View(per_app_caps[app_id])

    # Step 3: reschedule the requests against their own views so that
    # scheduled_at and n_alloc reflect what each application will really get
    # (Algorithm 3, lines 28-30).
    for app_id in app_ids:
        requests = preemptible_sets[app_id]
        own_view = result[app_id]
        fixed_occ = to_view(requests, own_view)
        fit(requests, own_view - fixed_occ, not_before)

    return result
