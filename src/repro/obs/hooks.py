"""Process-global observation slots and the ``observe()`` context manager.

The observability subsystem is **zero-cost when disabled**: instrumented
code (the simulation engine, the scheduler, the federation meta-scheduler)
consults three module-level one-element lists -- :data:`TRACER`,
:data:`METRICS` and :data:`PROFILER` -- and takes its plain, uninstrumented
path whenever the relevant slot holds ``None``.  A one-element list (rather
than a bare module attribute) lets the hot path cache the *cell* once and
pay a single index + identity test per check, and lets :func:`observe`
swap the active instruments without rebinding module globals.

Exactly one observation is active per process at a time (campaign workers
execute one run at a time, so a single slot per process is race-free --
the same argument :mod:`repro.campaign.registry` makes for provenance).
Nesting :func:`observe` replaces the active instruments for the inner block
and restores the outer ones afterwards.

This module must stay import-light: the simulation engine imports it, so it
must never import :mod:`repro.sim`, :mod:`repro.core` or anything above
them.
"""
from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

__all__ = ["TRACER", "METRICS", "PROFILER", "observation_enabled", "observe"]

#: Active :class:`~repro.obs.tracer.EventTracer`, or ``None`` (disabled).
TRACER: List[Optional[object]] = [None]
#: Active :class:`~repro.obs.metrics.MetricsRegistry`, or ``None``.
METRICS: List[Optional[object]] = [None]
#: Active :class:`~repro.obs.profiler.PhaseProfiler`, or ``None``.
PROFILER: List[Optional[object]] = [None]


def observation_enabled() -> bool:
    """True when any instrument (tracer, metrics, profiler) is active."""
    return TRACER[0] is not None or METRICS[0] is not None or PROFILER[0] is not None


@contextmanager
def observe(tracer=None, metrics=None, profiler=None):
    """Activate the given instruments for the duration of the block.

    Instruments left at ``None`` are *disabled* inside the block (the block
    fully replaces the active observation; it does not merge with an outer
    one).  The previous observation is restored on exit, even on error.
    """
    previous = (TRACER[0], METRICS[0], PROFILER[0])
    TRACER[0], METRICS[0], PROFILER[0] = tracer, metrics, profiler
    try:
        yield
    finally:
        TRACER[0], METRICS[0], PROFILER[0] = previous
