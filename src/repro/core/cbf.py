"""Conservative Back-Filling (CBF) on availability profiles.

The paper schedules pre-allocation requests with Conservative Back-Filling
(Mu'alem & Feitelson, 2001): jobs are considered in arrival order, each one
gets a reservation at the earliest hole of the availability profile, and the
profile is updated immediately so later jobs can only use what earlier jobs
left free -- they may *backfill* into earlier holes, but can never delay an
existing reservation.

In the CooRMv2 scheduler this behaviour is emergent (applications are
processed in arrival order and each ``fit`` consumes the availability view).
This module provides a standalone CBF queue used by the rigid-job baseline
(:mod:`repro.baselines.batch_fcfs`) and by tests that validate the emergent
behaviour against the classical algorithm.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .errors import CapacityError
from .profile import StepFunction
from .types import Time

__all__ = ["CbfJob", "ConservativeBackfillQueue", "RigidQueueMetrics"]


@dataclass
class CbfJob:
    """A rigid job handled by the CBF queue."""

    job_id: str
    node_count: int
    duration: Time
    submit_time: Time = 0.0
    #: Reservation computed by the queue (None until scheduled).
    start_time: Optional[Time] = None

    @property
    def end_time(self) -> Optional[Time]:
        if self.start_time is None:
            return None
        return self.start_time + self.duration

    def wait_time(self) -> Optional[Time]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time


class RigidQueueMetrics:
    """Aggregate metrics shared by every rigid-job queue discipline.

    Subclasses provide ``node_count`` and a ``_jobs`` list of scheduled
    :class:`CbfJob` instances; the metric definitions live here once so the
    conservative and EASY queues can never drift apart.
    """

    node_count: int
    _jobs: List[CbfJob]

    def makespan(self) -> Time:
        """Completion time of the last scheduled job."""
        ends = [j.end_time for j in self._jobs if j.end_time is not None]
        return max(ends) if ends else 0.0

    def mean_wait_time(self) -> float:
        """Average waiting time over all scheduled jobs."""
        waits = [j.wait_time() for j in self._jobs if j.wait_time() is not None]
        return sum(waits) / len(waits) if waits else 0.0

    def utilisation(self) -> float:
        """Fraction of node-seconds used until the makespan."""
        horizon = self.makespan()
        if horizon <= 0:
            return 0.0
        used = sum(j.node_count * min(j.duration, horizon - j.start_time) for j in self._jobs)
        return used / (self.node_count * horizon)


class ConservativeBackfillQueue(RigidQueueMetrics):
    """Conservative back-filling scheduler for a single homogeneous cluster.

    Every submitted job immediately receives a reservation; the availability
    profile is decremented accordingly so that subsequent jobs can backfill
    into remaining holes without delaying anyone.
    """

    def __init__(self, node_count: int):
        if node_count <= 0:
            raise CapacityError("a cluster needs at least one node")
        self.node_count = int(node_count)
        self._availability = StepFunction.constant(self.node_count)
        self._jobs: List[CbfJob] = []

    @property
    def availability(self) -> StepFunction:
        """Current availability profile (after all reservations).

        A copy: the queue maintains its profile incrementally in place, so
        the internal instance must never leak to callers.
        """
        return self._availability.copy()

    @property
    def jobs(self) -> Tuple[CbfJob, ...]:
        return tuple(self._jobs)

    def submit(self, job: CbfJob) -> Time:
        """Reserve resources for *job* and return its start time.

        Raises :class:`CapacityError` if the job can never fit (more nodes
        than the cluster has).
        """
        if job.node_count > self.node_count:
            raise CapacityError(
                f"job {job.job_id!r} requests {job.node_count} nodes but the "
                f"cluster only has {self.node_count}"
            )
        start = self._availability.find_hole(job.node_count, job.duration, job.submit_time)
        if math.isinf(start):
            raise CapacityError(f"job {job.job_id!r} cannot be scheduled")
        job.start_time = start
        if job.node_count > 0 and job.duration > 0:
            self._availability.subtract_rectangle_in_place(
                start, job.duration, job.node_count
            )
        self._jobs.append(job)
        return start

    def submit_many(self, jobs: List[CbfJob]) -> List[Time]:
        """Submit several jobs in order; returns their start times."""
        return [self.submit(j) for j in jobs]

    def complete_early(self, job: CbfJob, now: Time) -> None:
        """Release the tail of a reservation when a job finishes early.

        The freed rectangle (from *now* to the job's reserved end) is added
        back to the availability profile so later submissions can backfill
        into it; existing reservations are untouched, as CBF requires.
        """
        if job.start_time is None or job not in self._jobs:
            raise CapacityError(f"job {job.job_id!r} has no reservation")
        reserved_end = job.start_time + job.duration
        release_from = max(now, job.start_time)
        if release_from < reserved_end and job.node_count > 0:
            self._availability.add_rectangle_in_place(
                release_from, reserved_end - release_from, job.node_count
            )
        job.duration = max(0.0, release_from - job.start_time)
