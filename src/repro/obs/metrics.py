"""The metrics registry: counters, gauges and histograms per run.

A :class:`MetricsRegistry` aggregates what the instrumentation sites count
during one simulation run -- events dispatched, fit attempts, backfill
hits, scheduling passes, per-cluster routing decisions, queue-depth
samples.  Everything it stores is a pure function of the simulation, so a
registry snapshot is deterministic and may flow into campaign result rows
(``record["obs"]``) next to the simulation metrics, where
``campaign report`` renders it as a per-run observability breakdown.

The snapshot is a **flat** ``{name: number}`` mapping (histograms flatten
into ``name.count`` / ``name.sum`` / ``name.min`` / ``name.max`` /
``name.mean`` keys) so that the campaign store's median machinery
(:func:`repro.metrics.collector.median_summary`) applies unchanged.
"""
from __future__ import annotations

import math
from typing import Dict, List, Tuple

__all__ = ["Histogram", "MetricsRegistry"]

#: Power-of-two histogram bucket upper bounds (last bucket is +inf).
_BUCKET_BOUNDS: Tuple[float, ...] = tuple(float(2**i) for i in range(21)) + (math.inf,)


class Histogram:
    """Fixed-bucket (power-of-two) histogram of non-negative samples."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * len(_BUCKET_BOUNDS)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> Dict[str, int]:
        """Non-empty buckets as ``{"le=<bound>": count}`` (for inspection)."""
        out: Dict[str, int] = {}
        for bound, count in zip(_BUCKET_BOUNDS, self.buckets):
            if count:
                key = "le=inf" if math.isinf(bound) else f"le={bound:g}"
                out[key] = count
        return out


class MetricsRegistry:
    """Counters, gauges and histograms, keyed by dotted metric names."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1.0) -> None:
        """Increment counter *name* (created at zero on first use)."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram *name*."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            raise KeyError(
                f"unknown histogram {name!r}; known: {sorted(self._histograms)}"
            )
        return hist

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, float]:
        """Flat, deterministic, JSON-friendly view of every metric.

        Keys are sorted; histogram min/max are omitted for empty histograms
        (they would be infinite) so the snapshot is always strict JSON.
        """
        out: Dict[str, float] = {}
        for name, value in self._counters.items():
            out[name] = value
        for name, value in self._gauges.items():
            out[name] = value
        for name, hist in self._histograms.items():
            out[f"{name}.count"] = float(hist.count)
            out[f"{name}.sum"] = hist.total
            out[f"{name}.mean"] = hist.mean
            if hist.count:
                out[f"{name}.min"] = hist.min
                out[f"{name}.max"] = hist.max
        return dict(sorted(out.items()))

    def rows(self) -> List[Tuple[str, float]]:
        """Snapshot as sorted (name, value) rows for table rendering."""
        return list(self.snapshot().items())
