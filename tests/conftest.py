"""Shared fixtures of the test suite."""
from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Platform
from repro.core import CooRMv2
from repro.models import SpeedupModel, WorkingSetEvolution
from repro.sim import Simulator


@pytest.fixture
def simulator() -> Simulator:
    return Simulator()


@pytest.fixture
def platform() -> Platform:
    return Platform.single_cluster(64)


@pytest.fixture
def rms(platform, simulator) -> CooRMv2:
    return CooRMv2(platform, simulator, rescheduling_interval=1.0)


@pytest.fixture
def speedup_model() -> SpeedupModel:
    return SpeedupModel()


@pytest.fixture
def small_evolution() -> WorkingSetEvolution:
    """A deterministic, linearly growing working set (20 steps, up to ~100 GiB)."""
    return WorkingSetEvolution(np.linspace(5_000.0, 100_000.0, 20))


def make_rms(node_count: int = 64, strict: bool = False, interval: float = 1.0):
    """Build a (simulator, platform, rms) triple for ad-hoc scenarios."""
    simulator = Simulator()
    platform = Platform.single_cluster(node_count)
    rms = CooRMv2(
        platform, simulator, rescheduling_interval=interval, strict_equipartition=strict
    )
    return simulator, platform, rms
