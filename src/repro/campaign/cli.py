"""Command-line interface of ``python -m repro``.

Commands::

    python -m repro campaign run --scenarios fig9,fig10 --seeds 4 --workers 4
    python -m repro campaign run --scenarios trace-replay --policies coorm,easy,sjf
    python -m repro campaign run --spec my_campaign.json
    python -m repro campaign list
    python -m repro campaign report <name> [--compare <other>]
    python -m repro campaign scenarios
    python -m repro trace info|convert|synth ...
    python -m repro policy list|describe|stages

``campaign run`` executes the scenario x seed grid in parallel and persists
one JSON-lines record per run under the results directory (``results/`` by
default, or ``--results-dir`` / the ``REPRO_RESULTS_DIR`` variable).  Runs
are deterministic: the same spec writes byte-identical records regardless of
the worker count.  The ``trace`` command group
(:mod:`repro.traces.cli`) inspects, transforms and synthesizes the SWF
workload traces that trace-driven scenarios replay.
"""
from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..metrics.report import format_comparison, format_table
from ..policies.cli import add_policy_commands, run_policy_command
from ..policies.registry import resolve_policy
from ..traces.cli import add_trace_commands, run_trace_command
from . import builtin  # noqa: F401  (registers the built-in scenarios)
from .registry import builtin_scenarios, resolve_scenarios
from .runner import CampaignRunner
from .spec import SCALE_NAMES, CampaignSpec
from .store import ResultStore

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CooRMv2 reproduction -- experiment campaign orchestration.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    campaign = commands.add_parser("campaign", help="run and inspect campaigns")
    actions = campaign.add_subparsers(dest="action", required=True)

    run = actions.add_parser("run", help="execute a campaign")
    run.add_argument(
        "--scenarios",
        help="comma-separated built-in scenario names (see 'campaign scenarios')",
    )
    run.add_argument("--spec", help="path to a campaign JSON file (overrides --scenarios)")
    run.add_argument(
        "--seeds", type=int, default=None,
        help="replicates per scenario (default: 1, or the spec file's value)",
    )
    run.add_argument(
        "--root-seed", type=int, default=None,
        help="campaign root seed (default: 0, or the spec file's value)",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker processes (default: the spec's worker count)",
    )
    run.add_argument(
        "--scale", choices=SCALE_NAMES, default=None,
        help="override the evaluation scale of every scenario",
    )
    run.add_argument(
        "--policies",
        help="comma-separated scheduling policies; every scenario runs once "
        "per policy on the same workload (see 'policy list')",
    )
    run.add_argument("--name", help="campaign name (defaults to the scenario list)")
    run.add_argument("--results-dir", default=None, help="result store root")
    run.add_argument(
        "--append", action="store_true",
        help="append to existing records instead of replacing them",
    )
    run.add_argument("--quiet", action="store_true", help="suppress progress output")

    listing = actions.add_parser("list", help="list stored campaigns")
    listing.add_argument("--results-dir", default=None, help="result store root")

    report = actions.add_parser("report", help="summarize a stored campaign")
    report.add_argument("name", help="campaign name")
    report.add_argument("--compare", help="second campaign to compare against")
    report.add_argument("--results-dir", default=None, help="result store root")

    actions.add_parser("scenarios", help="list built-in scenarios")

    add_trace_commands(commands)
    add_policy_commands(commands)

    return parser


def _default_name(scenario_names: Sequence[str], seeds: int) -> str:
    return "-".join(scenario_names) + f"_x{seeds}"


def _cmd_run(args: argparse.Namespace) -> int:
    policies = tuple(
        p.strip() for p in (args.policies or "").split(",") if p.strip()
    )
    try:
        for p in policies:
            resolve_policy(p)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.spec:
        spec = CampaignSpec.load(args.spec)
        overrides = {}
        if args.scale is not None:
            overrides["scenarios"] = [
                s.with_scale(args.scale).to_dict() for s in spec.scenarios
            ]
        # Explicit flags beat the spec file; omitted flags keep its values.
        if args.seeds is not None:
            overrides["seeds"] = args.seeds
        if args.root_seed is not None:
            overrides["root_seed"] = args.root_seed
        if policies:
            overrides["policies"] = list(policies)
        if overrides:
            spec = CampaignSpec.from_dict({**spec.to_dict(), **overrides})
    else:
        if not args.scenarios:
            print("error: provide --scenarios or --spec", file=sys.stderr)
            return 2
        names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
        try:
            scenarios = resolve_scenarios(names, scale=args.scale)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        seeds = 1 if args.seeds is None else args.seeds
        spec = CampaignSpec(
            name=args.name or _default_name(names, seeds),
            scenarios=tuple(scenarios),
            seeds=seeds,
            root_seed=0 if args.root_seed is None else args.root_seed,
            workers=args.workers or 1,
            policies=policies,
        )
    if args.name and spec.name != args.name:
        spec = CampaignSpec.from_dict({**spec.to_dict(), "name": args.name})

    if spec.policies:
        unaware = sorted(
            {s.runner for s in spec.scenarios} - set(builtin.POLICY_AWARE_RUNNERS)
        )
        if unaware:
            print(
                f"error: runner(s) {unaware} reproduce fixed paper experiments "
                "and cannot sweep scheduling policies; use 'amr_psa'-based "
                "scenarios (e.g. trace-replay, baseline-dynamic)",
                file=sys.stderr,
            )
            return 2

    store = ResultStore(args.results_dir)
    try:
        store.campaign_dir(spec.name)  # validate the name before running
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(done: int, total: int, record) -> None:
        if not args.quiet:
            print(
                f"[{done}/{total}] {record['scenario']} "
                f"replicate={record['replicate']} seed={record['seed']}",
                flush=True,
            )

    runner = CampaignRunner(spec, store=store, progress=progress)
    result = runner.run(workers=args.workers, append=args.append)
    print(
        f"campaign {spec.name!r}: {len(result.records)} runs in "
        f"{result.elapsed_seconds:.2f}s with {result.workers} worker(s) "
        f"-> {result.store_path}"
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    store = ResultStore(args.results_dir)
    infos = store.list_campaigns()
    if not infos:
        print(f"no campaigns under {store.root}")
        return 0
    rows = [(i.name, i.run_count, ", ".join(i.scenarios)) for i in infos]
    print(format_table(["campaign", "runs", "scenarios"], rows))
    return 0


def _describe_provenance(provenance) -> str:
    """One human-readable line summarising a workload provenance record."""
    source = provenance.get("source", {})
    if isinstance(source, dict) and "path" in source and source.get("path"):
        description = f"trace file {source['path']}"
    elif isinstance(source, dict) and source.get("model"):
        arrivals = source["model"].get("arrivals", {}).get("kind", "?")
        # An unset source job_count means the default was synthesized; the
        # realised count always rides along in the provenance record.
        jobs = source.get("job_count") or provenance.get("job_count") or "?"
        description = f"synthesized trace ({arrivals} arrivals, {jobs} jobs)"
    elif isinstance(source, dict) and source.get("generator"):
        description = "generated rigid workload"
    else:
        description = json.dumps(source, sort_keys=True)
    steps = [
        step.get("kind", "?")
        for step in provenance.get("steps", [])
        if isinstance(step, dict)
        and step.get("kind") not in ("load", "synthesize", "fingerprint")
    ]
    if steps:
        description += f"; transforms: {' -> '.join(steps)}"
    counts = provenance.get("kind_counts")
    if isinstance(counts, dict):
        mixed = {k: v for k, v in counts.items() if v}
        if set(mixed) - {"rigid"}:
            description += "; mix: " + ", ".join(
                f"{kind}={count}" for kind, count in sorted(mixed.items())
            )
    return description


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.results_dir)
    try:
        if args.compare:
            rows = store.compare(args.name, args.compare)
            print(f"campaign comparison: {args.name} vs {args.compare}")
            print(format_comparison(rows, label_a=args.name, label_b=args.compare))
            return 0
        records = store.load_records(args.name)
        summary = store.summarize(args.name, records)
        provenance = store.provenance_of(args.name, records)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    matrix = store.policy_matrix(args.name, records)
    print(f"campaign {args.name!r}: per-scenario medians over replicates")
    for scenario in summary:
        print()
        print(f"== {scenario} ==")
        if scenario in provenance:
            print(f"workload: {_describe_provenance(provenance[scenario])}")
        rows = list(summary[scenario].items())
        print(format_table(["metric", "median"], rows))
    # Policy-matrix campaigns additionally get a side-by-side comparison of
    # every policy on the same base scenario (identical workload per seed).
    for base in sorted(matrix):
        policies = matrix[base]
        if len(policies) < 2:
            continue
        policy_names = sorted(policies)
        metrics = sorted(set().union(*(policies[p] for p in policy_names)))
        rows = [
            tuple([metric] + [policies[p].get(metric, "") for p in policy_names])
            for metric in metrics
        ]
        print()
        print(f"== {base}: policy comparison ==")
        print(format_table(["metric"] + policy_names, rows))
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    rows = [
        (spec.name, spec.runner, spec.scale, spec.description)
        for spec in sorted(builtin_scenarios().values(), key=lambda s: s.name)
    ]
    print(format_table(["scenario", "runner", "scale", "description"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "trace":
        return run_trace_command(args)
    if args.command == "policy":
        return run_policy_command(args)
    handlers = {
        "run": _cmd_run,
        "list": _cmd_list,
        "report": _cmd_report,
        "scenarios": _cmd_scenarios,
    }
    return handlers[args.action](args)
