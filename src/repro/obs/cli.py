"""The ``python -m repro obs`` command group.

Commands::

    python -m repro obs export --scenario fig9-spontaneous --seed 1
    python -m repro obs export --scenario fig9 --seed 1 --format jsonl --out t.jsonl
    python -m repro obs summarize --scenario fig9 --seed 1
    python -m repro obs diff a.trace.jsonl b.trace.jsonl
    python -m repro obs bench --output BENCH_7.json

``export`` runs one scenario under the event tracer and writes the trace as
Chrome ``trace_event`` JSON (open it in ``chrome://tracing`` or Perfetto) or
canonical JSONL.  ``summarize`` prints the event and metric breakdown of one
run.  ``diff`` compares two JSONL traces and pinpoints the first divergence
-- the exports are deterministic, so any difference is a real behavioural
difference.  ``bench`` runs the observability benchmark suite and writes the
``BENCH_7.json`` perf snapshot CI archives.
"""
from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, Tuple

from .hooks import observe
from .logsetup import get_logger
from .metrics import MetricsRegistry
from .tracer import EventTracer, diff_events, load_jsonl

__all__ = ["add_obs_commands", "run_obs_command"]

_LOG = get_logger("obs")


def add_obs_commands(commands: argparse._SubParsersAction) -> None:
    """Attach the ``obs`` command group to the top-level CLI parser."""
    obs = commands.add_parser(
        "obs", help="trace, summarize and benchmark the observability layer"
    )
    actions = obs.add_subparsers(dest="action", required=True)

    export = actions.add_parser(
        "export", help="run one scenario under the tracer and export the trace"
    )
    export.add_argument("--scenario", required=True, help="built-in scenario name")
    export.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    export.add_argument(
        "--scale", default=None, help="evaluation scale override (tiny/reduced/paper)"
    )
    export.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="chrome trace_event JSON (default) or canonical JSONL",
    )
    export.add_argument(
        "--out", default=None, help="output file (default: stdout)"
    )

    summarize = actions.add_parser(
        "summarize", help="run one scenario and print its event/metric breakdown"
    )
    summarize.add_argument("--scenario", required=True, help="built-in scenario name")
    summarize.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    summarize.add_argument(
        "--scale", default=None, help="evaluation scale override (tiny/reduced/paper)"
    )

    diff = actions.add_parser(
        "diff", help="compare two JSONL trace exports, pinpointing divergence"
    )
    diff.add_argument("trace_a", help="first JSONL trace file")
    diff.add_argument("trace_b", help="second JSONL trace file")

    bench = actions.add_parser(
        "bench", help="run the observability benchmark suite (BENCH_7.json)"
    )
    bench.add_argument(
        "--output", default=None, help="write the JSON report to this file"
    )
    bench.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per benchmark"
    )
    bench.add_argument(
        "--no-check", action="store_true",
        help="report floors without failing on a violation",
    )


def _traced_run(
    scenario: str, seed: int, scale
) -> Tuple[EventTracer, MetricsRegistry, Dict]:
    """Run one scenario under tracer + metrics; returns both instruments."""
    from ..campaign import builtin  # noqa: F401  (registers the runners)
    from ..campaign.registry import consume_provenance, get_runner, resolve_scenarios

    spec = resolve_scenarios([scenario], scale=scale)[0]
    runner = get_runner(spec.runner)
    tracer = EventTracer()
    registry = MetricsRegistry()
    consume_provenance()
    with observe(tracer=tracer, metrics=registry):
        metrics = dict(runner(spec, seed))
    consume_provenance()
    return tracer, registry, metrics


def _cmd_export(args: argparse.Namespace) -> int:
    try:
        tracer, _registry, _metrics = _traced_run(args.scenario, args.seed, args.scale)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    text = tracer.to_chrome(label=f"repro {args.scenario} seed={args.seed}")
    if args.format == "jsonl":
        text = tracer.to_jsonl()
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        _LOG.info(
            "%d events (%s) -> %s", len(tracer), args.format, args.out
        )
        print(args.out)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from ..metrics.report import format_table

    try:
        tracer, registry, metrics = _traced_run(args.scenario, args.seed, args.scale)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(
        f"scenario {args.scenario!r} seed={args.seed}: "
        f"{len(tracer)} trace events, {len(registry)} metrics"
    )
    event_rows = [
        (cat, name, count)
        for (cat, name), count in sorted(tracer.count_by().items())
    ]
    if event_rows:
        print()
        print(format_table(["category", "event", "count"], event_rows))
    if len(registry):
        print()
        print(format_table(["metric", "value"], registry.rows()))
    if metrics:
        print()
        print(
            format_table(
                ["simulation metric", "value"], sorted(metrics.items())
            )
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        events_a = load_jsonl(Path(args.trace_a).read_text(encoding="utf-8"))
        events_b = load_jsonl(Path(args.trace_b).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lines = diff_events(events_a, events_b)
    if not lines:
        print(f"identical: {len(events_a)} events")
        return 0
    for line in lines:
        print(line)
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench import run_bench

    try:
        report = run_bench(
            output=args.output,
            repeats=args.repeats,
            check_floors=not args.no_check,
        )
    except AssertionError as exc:
        print(f"benchmark floor violation: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        _LOG.info("report written to %s", args.output)
    return 0


def run_obs_command(args: argparse.Namespace) -> int:
    handlers = {
        "export": _cmd_export,
        "summarize": _cmd_summarize,
        "diff": _cmd_diff,
        "bench": _cmd_bench,
    }
    return handlers[args.action](args)
