"""ResultStore: append/load, deterministic files, summaries, comparison."""
import json
import logging

import pytest

from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.campaign.store import ResultStore


def make_spec(name="camp", scenario_names=("s1", "s2"), seeds=2) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        scenarios=tuple(ScenarioSpec(name=n) for n in scenario_names),
        seeds=seeds,
    )


def make_records(scenario_names=("s1", "s2"), seeds=2, offset=0.0):
    records = []
    for name in scenario_names:
        for replicate in range(seeds):
            records.append(
                {
                    "scenario": name,
                    "replicate": replicate,
                    "seed": 1000 + replicate,
                    "runner": "amr_psa",
                    "scale": "tiny",
                    "metrics": {"value": offset + replicate, "label": name},
                }
            )
    return records


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        records = make_records()
        store.save_campaign(spec, records, meta={"workers": 2})

        assert store.load_records("camp") == records
        assert store.load_spec("camp") == spec

    def test_records_are_written_in_canonical_order(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        shuffled = list(reversed(make_records()))
        store.save_campaign(spec, shuffled, meta=None)
        loaded = store.load_records("camp")
        assert [(r["scenario"], r["replicate"]) for r in loaded] == [
            ("s1", 0), ("s1", 1), ("s2", 0), ("s2", 1),
        ]

    def test_rewrite_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        store.save_campaign(spec, make_records())
        first = store.runs_path("camp").read_bytes()
        store.save_campaign(spec, list(reversed(make_records())))
        assert store.runs_path("camp").read_bytes() == first

    def test_append_keeps_history(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        store.save_campaign(spec, make_records(offset=0.0))
        store.save_campaign(spec, make_records(offset=10.0), append=True)
        records = store.load_records("camp")
        assert len(records) == 8
        assert records[0]["metrics"]["value"] == 0.0
        assert records[4]["metrics"]["value"] == 10.0

    def test_jsonl_is_strict_json(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_campaign(make_spec(), make_records())
        for line in store.runs_path("camp").read_text().splitlines():
            json.loads(line)

    def test_missing_campaign_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="nope"):
            ResultStore(tmp_path).load_records("nope")

    def test_invalid_name_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "../etc", ".hidden"):
            with pytest.raises(ValueError):
                store.campaign_dir(bad)


class TestListing:
    def test_empty_root(self, tmp_path):
        assert ResultStore(tmp_path / "missing").list_campaigns() == []

    def test_listing(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_campaign(make_spec("alpha"), make_records())
        store.save_campaign(make_spec("beta", ("s3",)), make_records(("s3",)))
        infos = store.list_campaigns()
        assert [i.name for i in infos] == ["alpha", "beta"]
        assert infos[0].run_count == 4
        assert infos[0].scenarios == ("s1", "s2")
        assert infos[1].scenarios == ("s3",)


class TestSummaries:
    def test_summarize_medians_per_scenario(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_campaign(make_spec(seeds=3), make_records(seeds=3))
        summary = store.summarize("camp")
        # values are 0, 1, 2 per scenario -> median 1; strings are skipped
        assert summary["s1"] == {"value": 1.0}
        assert summary["s2"] == {"value": 1.0}

    def test_compare(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_campaign(make_spec("first"), make_records(offset=0.0))
        store.save_campaign(make_spec("second"), make_records(offset=2.0))
        rows = store.compare("first", "second")
        assert rows == [
            ("s1", "value", 0.5, 2.5, 2.0),
            ("s2", "value", 0.5, 2.5, 2.0),
        ]


@pytest.fixture()
def propagating_logs():
    """Let ``repro.*`` records reach caplog's root handler.

    Any earlier CLI test that called ``logging_setup`` left the package
    logger with ``propagate = False``, which would blind caplog.
    """
    logger = logging.getLogger("repro")
    before = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = before


class TestTruncatedWrites:
    def test_truncated_trailing_line_is_skipped_with_warning(
        self, tmp_path, caplog, propagating_logs
    ):
        store = ResultStore(tmp_path)
        records = make_records()
        store.save_campaign(make_spec(), records)
        path = store.runs_path("camp")
        lines = path.read_text(encoding="utf-8").splitlines()
        # An interrupted append leaves the final record cut mid-JSON.
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines), encoding="utf-8")
        with caplog.at_level("WARNING"):
            loaded = store.load_records("camp")
        assert loaded == records[:-1]  # every intact record survives
        assert any("truncated" in message for message in caplog.messages)

    def test_blank_lines_are_ignored_silently(
        self, tmp_path, caplog, propagating_logs
    ):
        store = ResultStore(tmp_path)
        records = make_records()
        store.save_campaign(make_spec(), records)
        path = store.runs_path("camp")
        path.write_text(
            path.read_text(encoding="utf-8").replace("\n", "\n\n"),
            encoding="utf-8",
        )
        with caplog.at_level("WARNING"):
            assert store.load_records("camp") == records
        assert not caplog.records
