"""Unit tests of the accounting extension and the protocol event log."""
from __future__ import annotations

import pytest

from repro.core import (
    Accountant,
    AllocationRecord,
    Connected,
    EventLog,
    RequestDone,
    RequestSubmitted,
    RequestType,
)


class TestAccountant:
    def test_record_and_summaries(self):
        acc = Accountant()
        acc.record_interval("a", 1, RequestType.NON_PREEMPTIBLE, "c", 4, 0.0, 100.0)
        acc.record_interval("a", 2, RequestType.PREEMPTIBLE, "c", 2, 0.0, 50.0)
        acc.record_interval("a", 3, RequestType.PREALLOCATION, "c", 10, 0.0, 100.0)
        acc.record_interval("b", 4, RequestType.PREEMPTIBLE, "c", 8, 10.0, 20.0)

        summary = acc.summary("a")
        assert summary.non_preemptible_node_seconds == pytest.approx(400.0)
        assert summary.preemptible_node_seconds == pytest.approx(100.0)
        assert summary.preallocated_node_seconds == pytest.approx(1000.0)
        assert summary.used_node_seconds == pytest.approx(500.0)
        assert summary.reserved_unused_node_seconds == pytest.approx(600.0)

        assert set(acc.summaries()) == {"a", "b"}
        assert acc.total_used_node_seconds() == pytest.approx(400 + 100 + 80)
        by_type = acc.used_node_seconds_by_type()
        assert by_type[RequestType.PREALLOCATION] == pytest.approx(1000.0)

    def test_reservation_charging(self):
        acc = Accountant(reservation_charge_factor=0.5)
        acc.record_interval("a", 1, RequestType.NON_PREEMPTIBLE, "c", 4, 0.0, 100.0)
        acc.record_interval("a", 2, RequestType.PREALLOCATION, "c", 10, 0.0, 100.0)
        # 400 used + 0.5 * (1000 - 400) reserved-but-unused.
        assert acc.charge("a") == pytest.approx(400 + 0.5 * 600)

    def test_zero_charge_factor_only_bills_usage(self):
        acc = Accountant()
        acc.record_interval("a", 1, RequestType.PREALLOCATION, "c", 10, 0.0, 100.0)
        assert acc.charge("a") == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            Accountant(reservation_charge_factor=2.0)
        acc = Accountant()
        with pytest.raises(ValueError):
            acc.record(
                AllocationRecord("a", 1, RequestType.PREEMPTIBLE, "c", 1, 10.0, 5.0)
            )

    def test_record_node_seconds(self):
        rec = AllocationRecord("a", 1, RequestType.PREEMPTIBLE, "c", 3, 5.0, 15.0)
        assert rec.node_seconds == pytest.approx(30.0)


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.record(Connected(0.0, "a"))
        log.record(RequestSubmitted(1.0, "a", request_id=1, rtype="nonP", node_count=4, duration=10))
        log.record(RequestDone(5.0, "a", request_id=1))
        log.record(Connected(6.0, "b"))

        assert len(log) == 4
        assert [e.kind for e in log] == [
            "Connected", "RequestSubmitted", "RequestDone", "Connected",
        ]
        assert len(log.of_kind(Connected)) == 2
        assert len(log.for_app("a")) == 3
        assert log.last().app_id == "b"
        assert log.last(RequestDone).request_id == 1
        assert log.all()[0].time == 0.0

    def test_last_on_empty_log(self):
        assert EventLog().last() is None
        assert EventLog().last(Connected) is None
