"""Resource requests (paper Sections 3.1.1 and A.1).

A request describes resources an application wants allocated: a cluster, a
node count and a duration, plus a type (pre-allocation, non-preemptible,
preemptible) and an optional constraint relative to another request.

Two groups of attributes exist, mirroring Appendix A.1:

* attributes **sent by the application** -- ``cluster_id``, ``node_count``,
  ``duration``, ``rtype``, ``related_how``, ``related_to``;
* attributes **set by the RMS** while scheduling -- ``n_alloc``,
  ``scheduled_at``, ``fixed``, ``earliest_schedule_at`` -- and once the
  request starts -- ``started_at``, ``node_ids``.
"""
from __future__ import annotations

import itertools
import math
from typing import FrozenSet, Optional, Set

from .errors import ConstraintError, RequestError
from .types import ClusterId, NodeId, RelatedHow, RequestState, RequestType, Time

__all__ = ["Request"]

_request_counter = itertools.count(1)


class Request:
    """A single resource request tracked by the RMS.

    Parameters
    ----------
    cluster_id:
        The cluster on which the allocation should take place.
    node_count:
        Number of nodes requested (``n`` in the paper).  Must be >= 0; a
        zero-node request is legal and used by malleable applications to
        release their whole preemptible part.
    duration:
        Requested allocation length in seconds; ``math.inf`` is allowed for
        open-ended preemptible requests and pre-allocations.
    rtype:
        One of :class:`~repro.core.types.RequestType`.
    related_how:
        Constraint kind relative to *related_to* (default ``FREE``).
    related_to:
        The request this one is constrained against; required for ``COALLOC``
        and ``NEXT``.
    app_id:
        Identifier of the owning application (set by the RMS session layer).
    """

    __slots__ = (
        "request_id",
        "app_id",
        "cluster_id",
        "node_count",
        "duration",
        "rtype",
        "related_how",
        "related_to",
        # RMS-set scheduling attributes
        "n_alloc",
        "scheduled_at",
        "fixed",
        "earliest_schedule_at",
        # RMS-set lifecycle attributes
        "started_at",
        "node_ids",
        "state",
        "submitted_at",
        "finished_at",
    )

    def __init__(
        self,
        cluster_id: ClusterId,
        node_count: int,
        duration: Time,
        rtype: RequestType,
        related_how: RelatedHow = RelatedHow.FREE,
        related_to: Optional["Request"] = None,
        app_id: Optional[str] = None,
    ):
        if node_count < 0:
            raise RequestError("node_count must be non-negative")
        if duration < 0:
            raise RequestError("duration must be non-negative")
        if not isinstance(rtype, RequestType):
            raise RequestError(f"rtype must be a RequestType, got {rtype!r}")
        if not isinstance(related_how, RelatedHow):
            raise RequestError(f"related_how must be a RelatedHow, got {related_how!r}")
        if related_how is not RelatedHow.FREE and related_to is None:
            raise ConstraintError(f"{related_how.value} constraint requires related_to")
        if related_to is self:
            raise ConstraintError("a request cannot be related to itself")

        self.request_id: int = next(_request_counter)
        self.app_id = app_id
        self.cluster_id = cluster_id
        self.node_count = int(node_count)
        self.duration = float(duration)
        self.rtype = rtype
        self.related_how = related_how
        self.related_to = related_to

        # Attributes set while computing a schedule (Appendix A.1).
        self.n_alloc: int = 0
        self.scheduled_at: Time = math.inf
        self.fixed: bool = False
        self.earliest_schedule_at: Time = 0.0

        # Attributes set once the request has started.
        self.started_at: Time = math.nan
        self.node_ids: FrozenSet[NodeId] = frozenset()

        self.state: RequestState = RequestState.PENDING
        self.submitted_at: Time = math.nan
        self.finished_at: Time = math.nan

    # ------------------------------------------------------------------ #
    # Lifecycle predicates
    # ------------------------------------------------------------------ #
    def started(self) -> bool:
        """True once the RMS has started this request (paper's ``started(r)``)."""
        return not math.isnan(self.started_at)

    def finished(self) -> bool:
        """True once the request ended (``done()`` or duration elapsed)."""
        return self.state in (RequestState.FINISHED, RequestState.CANCELLED)

    def active(self) -> bool:
        """True while the request holds (or reserves) resources."""
        return self.started() and not self.finished()

    def pending(self) -> bool:
        """True while the request is waiting for its start time."""
        return not self.started() and not self.finished()

    # ------------------------------------------------------------------ #
    # Derived times
    # ------------------------------------------------------------------ #
    def end_time(self) -> Time:
        """Scheduled (or actual) end time of the allocation."""
        if self.finished() and not math.isnan(self.finished_at):
            return self.finished_at
        base = self.started_at if self.started() else self.scheduled_at
        return base + self.duration

    def remaining_duration(self, now: Time) -> Time:
        """Time left until the allocation expires, never negative."""
        return max(0.0, self.end_time() - now)

    def is_preemptible(self) -> bool:
        return self.rtype is RequestType.PREEMPTIBLE

    def is_preallocation(self) -> bool:
        return self.rtype is RequestType.PREALLOCATION

    def is_non_preemptible(self) -> bool:
        return self.rtype is RequestType.NON_PREEMPTIBLE

    # ------------------------------------------------------------------ #
    # Mutation helpers used by the RMS
    # ------------------------------------------------------------------ #
    def mark_started(self, now: Time, node_ids: Optional[Set[NodeId]] = None) -> None:
        """Record that the RMS started this request at time *now*."""
        self.started_at = now
        self.state = RequestState.STARTED
        if node_ids is not None:
            self.node_ids = frozenset(node_ids)

    def mark_finished(self, now: Time) -> None:
        """Record that this request ended at time *now* and shrink its duration.

        The paper's ``done()`` sets the duration to ``now - startedAt`` so the
        request's rectangle no longer blocks later resources.
        """
        if self.started():
            self.duration = max(0.0, now - self.started_at)
        else:
            self.duration = 0.0
        self.finished_at = now
        self.state = RequestState.FINISHED

    def mark_cancelled(self, now: Time) -> None:
        """Withdraw a request before it started."""
        self.finished_at = now
        self.state = RequestState.CANCELLED

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def clone_spec(self) -> "Request":
        """Copy the application-provided attributes into a fresh request.

        Scheduling and lifecycle attributes are reset; used by application
        helpers that re-submit an equivalent request (e.g. updates).
        """
        return Request(
            cluster_id=self.cluster_id,
            node_count=self.node_count,
            duration=self.duration,
            rtype=self.rtype,
            related_how=self.related_how,
            related_to=self.related_to,
            app_id=self.app_id,
        )

    def __repr__(self) -> str:
        rel = ""
        if self.related_how is not RelatedHow.FREE and self.related_to is not None:
            rel = f" {self.related_how.value}->#{self.related_to.request_id}"
        sched = "inf" if math.isinf(self.scheduled_at) else f"{self.scheduled_at:g}"
        return (
            f"Request(#{self.request_id} app={self.app_id} {self.rtype.short} "
            f"{self.node_count}x{self.duration:g}s on {self.cluster_id}{rel} "
            f"sched={sched} state={self.state.value})"
        )
