"""Benchmark of parallel campaign execution (worker-count scaling).

Runs one fixed campaign (a single-simulation scenario, many replicates) at
several worker counts and reports the wall-clock speed-up.  Every run is an
independent simulation, so the campaign is embarrassingly parallel and the
speed-up should be near-linear until the machine runs out of cores; the
scaling assertion therefore only applies when enough physical cores exist.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign_parallel.py --benchmark-only -s
"""
from __future__ import annotations

import os
import time

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, resolve_scenarios
from repro.metrics import format_table

#: Replicates of the benchmark campaign (one tiny simulation each).
REPLICATES = 12
WORKER_COUNTS = (1, 2, 4)


def make_campaign(seeds: int = REPLICATES) -> CampaignSpec:
    return CampaignSpec(
        name="bench-parallel",
        scenarios=tuple(resolve_scenarios(["baseline-dynamic"])),
        seeds=seeds,
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_campaign_wall_clock_per_worker_count(benchmark, workers):
    """Time the same campaign at each worker count."""
    spec = make_campaign()

    def execute():
        return CampaignRunner(spec).run(workers=workers)

    result = benchmark.pedantic(execute, rounds=1, iterations=1)
    assert len(result.records) == spec.run_count


def test_scaling_report(benchmark):
    """Print the speed-up table and check scaling where cores allow it."""
    spec = make_campaign()

    def sweep():
        timings = {}
        for workers in WORKER_COUNTS:
            started = time.perf_counter()
            CampaignRunner(spec).run(workers=workers)
            timings[workers] = time.perf_counter() - started
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    serial = timings[1]
    rows = [
        (w, f"{timings[w]:.2f}s", f"{serial / timings[w]:.2f}x")
        for w in WORKER_COUNTS
    ]
    print()
    print(f"campaign scaling ({spec.run_count} runs, {os.cpu_count()} cores)")
    print(format_table(["workers", "wall clock", "speedup"], rows))

    cores = os.cpu_count() or 1
    for workers in WORKER_COUNTS:
        if workers == 1 or cores < 2 * workers:
            # Without enough physical headroom the pool can only add
            # process-startup overhead; report, don't assert.
            continue
        speedup = serial / timings[workers]
        assert speedup > 0.6 * workers, (
            f"expected near-linear scaling at {workers} workers on a "
            f"{cores}-core machine, measured {speedup:.2f}x"
        )
