"""The static-allocation baseline of Figure 9.

The paper compares two ways of running the evolving AMR application under
CooRMv2: *dynamic* (the application adapts its non-preemptible request inside
its pre-allocation) and *static* (the application "is forced to use all the
resources it has pre-allocated", i.e. what a classical RMS would impose).
This module provides a factory that builds the static variant of the AMR
application, plus an analytical shortcut used by fast tests: the resource
consumption of a static run can be computed without simulation because the
node count never changes.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.nea import AmrApplication
from ..models.amr_evolution import WorkingSetEvolution
from ..models.speedup import PAPER_SPEEDUP_MODEL, SpeedupModel

__all__ = ["StaticRunPrediction", "make_static_amr", "predict_static_run"]


@dataclass(frozen=True)
class StaticRunPrediction:
    """Closed-form outcome of a static AMR run."""

    node_count: int
    end_time: float
    used_node_seconds: float


def make_static_amr(
    name: str,
    evolution: WorkingSetEvolution,
    preallocation_nodes: int,
    cluster_id: str = "cluster0",
    speedup_model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> AmrApplication:
    """Build the AMR application variant that never adapts its allocation."""
    return AmrApplication(
        name=name,
        evolution=evolution,
        preallocation_nodes=preallocation_nodes,
        cluster_id=cluster_id,
        static_allocation=True,
        speedup_model=speedup_model,
    )


def predict_static_run(
    evolution: WorkingSetEvolution,
    node_count: int,
    speedup_model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> StaticRunPrediction:
    """Compute the end time and consumed area of a static run analytically.

    Because the node count is constant, each step's duration follows directly
    from the speed-up model; no discrete-event simulation is needed.  Used to
    cross-check the simulated static runs in the test suite.
    """
    if node_count <= 0:
        raise ValueError("node_count must be positive")
    sizes = evolution.sizes_mib
    durations = (
        speedup_model.a * sizes / node_count
        + speedup_model.b * node_count
        + speedup_model.c * sizes
        + speedup_model.d
    )
    end_time = float(np.sum(durations))
    return StaticRunPrediction(
        node_count=node_count,
        end_time=end_time,
        used_node_seconds=node_count * end_time,
    )
