"""Unit tests of the pluggable scheduling-policy subsystem."""
from __future__ import annotations

import math

import pytest

from repro.core import Scheduler
from repro.core.cbf import CbfJob, ConservativeBackfillQueue
from repro.core.eqschedule import weighted_max_min_fair
from repro.policies import (
    DEFAULT_POLICY,
    EasyBackfillQueue,
    SchedulingContext,
    SchedulingPolicy,
    WeightedMaxMinSharing,
    describe_policy,
    get_policy,
    make_ordering,
    policy_names,
    resolve_policy,
)
from repro.policies.registry import policy_label
from repro.testing import app_with, make_env, np_, p_, p_set, pa
from repro.workloads.generator import RigidJobSpec


class TestRegistry:
    def test_default_policy_is_registered(self):
        assert DEFAULT_POLICY in policy_names()
        assert "coorm-strict" in policy_names()

    def test_get_policy_builds_fresh_instances(self):
        a, b = get_policy("coorm"), get_policy("coorm")
        assert a.ordering is not b.ordering
        assert a.backfill is not b.backfill
        assert a.sharing is not b.sharing

    def test_default_composition_is_algorithm_4(self):
        entry = describe_policy(DEFAULT_POLICY)
        assert entry["ordering"] == "fcfs"
        assert entry["backfill"] == "conservative"
        assert entry["sharing"] == "eq-filling"

    def test_unknown_policy_raises_with_known_names(self):
        with pytest.raises(KeyError, match="coorm"):
            get_policy("nope")

    def test_resolve_none_is_default(self):
        assert resolve_policy(None).name == DEFAULT_POLICY

    def test_resolve_policy_object_is_identity(self):
        policy = get_policy("easy")
        assert resolve_policy(policy) is policy

    def test_resolve_stage_mapping(self):
        policy = resolve_policy({"ordering": "sjf", "sharing": "strict-eq"})
        assert policy.ordering.name == "sjf"
        assert policy.backfill.name == "conservative"  # defaulted
        assert policy.sharing.name == "strict-eq"
        assert policy.name == "custom"

    def test_resolve_rejects_unknown_mapping_keys(self):
        with pytest.raises(ValueError, match="unknown key"):
            resolve_policy({"ordering": "fcfs", "color": "blue"})

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_policy(42)

    def test_policy_label(self):
        assert policy_label(None) == DEFAULT_POLICY
        assert policy_label("easy") == "easy"
        assert policy_label({"ordering": "sjf", "name": "mine"}) == "mine"
        with pytest.raises(KeyError):
            policy_label("unknown-policy")

    def test_to_dict_round_trips_through_resolve(self):
        policy = get_policy("maxmin-weighted")
        again = resolve_policy(policy.to_dict())
        assert again.stage_names() == policy.stage_names()

    def test_describe_mentions_stages(self):
        text = get_policy("easy").describe()
        assert "easy" in text and "ordering=fcfs" in text


class TestOrderings:
    def _apps(self):
        return {
            "slow": app_with(np_(4, duration=500.0), app_id="slow"),
            "fast": app_with(np_(2, duration=50.0), app_id="fast"),
            "big": app_with(np_(8, duration=400.0), app_id="big"),
        }

    def test_fcfs_keeps_connection_order(self):
        ordering = make_ordering("fcfs")
        apps = self._apps()
        assert ordering.order(apps, SchedulingContext(now=0.0)) == ["slow", "fast", "big"]

    def test_sjf_puts_shortest_pending_first(self):
        ordering = make_ordering("sjf")
        apps = self._apps()
        assert ordering.order(apps, SchedulingContext(now=0.0)) == ["fast", "big", "slow"]

    def test_largest_area_puts_biggest_first(self):
        ordering = make_ordering("largest-area")
        apps = self._apps()
        # areas: slow 2000, fast 100, big 3200.
        assert ordering.order(apps, SchedulingContext(now=0.0)) == ["big", "slow", "fast"]

    def test_fair_share_prefers_light_consumers(self):
        ordering = make_ordering("fair-share")
        assert ordering.needs_usage
        apps = self._apps()
        ctx = SchedulingContext(now=0.0, usage={"slow": 10.0, "fast": 9000.0})
        # 'big' has no usage at all -> first; then slow; the hog goes last.
        assert ordering.order(apps, ctx) == ["big", "slow", "fast"]

    def test_infinite_durations_order_last_under_sjf(self):
        ordering = make_ordering("sjf")
        apps = {
            "open": app_with(pa(4), app_id="open"),
            "short": app_with(np_(1, duration=5.0), app_id="short"),
        }
        assert ordering.order(apps, SchedulingContext(now=0.0)) == ["short", "open"]

    def test_job_ordering_disciplines(self):
        jobs = [
            RigidJobSpec("a", 2.0, 5, 100.0),
            RigidJobSpec("b", 0.0, 1, 10.0),
            RigidJobSpec("c", 1.0, 8, 50.0),
        ]
        ids = lambda ordered: [j.job_id for j in ordered]  # noqa: E731
        assert ids(make_ordering("fcfs").order_jobs(jobs)) == ["b", "c", "a"]
        assert ids(make_ordering("sjf").order_jobs(jobs)) == ["b", "c", "a"]
        assert ids(make_ordering("largest-area").order_jobs(jobs)) == ["a", "c", "b"]


class TestSchedulerPolicyIntegration:
    def test_ordering_must_be_a_permutation(self):
        bad = get_policy("coorm")
        bad.ordering.order = lambda apps, ctx: ["only-one"]
        scheduler = Scheduler({"c0": 8}, policy=bad)
        with pytest.raises(ValueError, match="permutation"):
            scheduler.schedule({"a": app_with(app_id="a")}, now=0.0)

    def test_scheduler_accepts_policy_name_and_mapping(self):
        assert Scheduler({"c0": 8}, policy="easy").policy.backfill.name == "easy"
        assert (
            Scheduler({"c0": 8}, policy={"sharing": "strict-eq"}).strict_equipartition
        )

    def test_strict_flag_conflicting_with_policy_is_rejected(self):
        # A non-strict policy would silently drop the requested baseline.
        with pytest.raises(ValueError, match="conflicts"):
            Scheduler({"c0": 8}, strict_equipartition=True, policy="easy")
        # Agreeing combinations stay valid.
        assert Scheduler(
            {"c0": 8}, strict_equipartition=True, policy="coorm-strict"
        ).strict_equipartition
        assert Scheduler({"c0": 8}, strict_equipartition=True).strict_equipartition

    def test_figure_runners_reject_policy_sweeps(self):
        from repro.campaign.registry import builtin_scenarios, get_runner

        fig = builtin_scenarios()["fig1"]
        with pytest.raises(ValueError, match="ignores scheduling policies"):
            get_runner(fig.runner)(fig.with_policy("easy"), seed=0)
        # The default policy is what actually runs, so it stays accepted.
        metrics = get_runner(fig.runner)(fig.with_policy("coorm"), seed=0)
        assert metrics

    def test_sjf_lets_short_job_reserve_first(self):
        # 10 nodes; two 8-node jobs cannot run together.  Under FCFS the
        # long job (connected first) wins; under SJF the short one does.
        for policy, winner in (("coorm", "long"), ("sjf", "short")):
            long_app = app_with(np_(8, duration=500.0), app_id="long")
            short_app = app_with(np_(8, duration=50.0), app_id="short")
            scheduler = Scheduler({"c0": 10}, policy=policy)
            scheduler.schedule({"long": long_app, "short": short_app}, now=0.0)
            starts = {
                "long": long_app.non_preemptible.roots()[0].scheduled_at,
                "short": short_app.non_preemptible.roots()[0].scheduled_at,
            }
            assert starts[winner] == pytest.approx(0.0), (policy, starts)

    def test_easy_cancels_non_head_future_reservations(self):
        # Conservative: the second 8-node job reserves t=100.  EASY: it is
        # not the head, cannot start now, so it keeps no reservation at all.
        for policy, expected in (("coorm", 100.0), ("easy", math.inf)):
            first = app_with(np_(8, duration=100.0), app_id="first")
            second = app_with(np_(8, duration=100.0), app_id="second")
            scheduler = Scheduler({"c0": 10}, policy=policy)
            scheduler.schedule({"first": first, "second": second}, now=0.0)
            r2 = second.non_preemptible.roots()[0]
            if math.isinf(expected):
                assert math.isinf(r2.scheduled_at)
                assert r2.n_alloc == 0
            else:
                assert r2.scheduled_at == pytest.approx(expected)

    def test_easy_head_keeps_its_reservation(self):
        blocker = pa(8)
        blocker.mark_started(0.0)
        first = app_with(blocker, app_id="first")
        waiting = app_with(np_(8, duration=100.0), app_id="waiting")
        scheduler = Scheduler({"c0": 10}, policy="easy")
        scheduler.schedule({"first": first, "waiting": waiting}, now=0.0)
        # 'waiting' is the head (first app with pending work): conservative
        # treatment, so its request is scheduled (inside the blocker's
        # pre-allocation it can never run; outside there are only 2 nodes),
        # i.e. it keeps whatever reservation fit() computed.
        r = waiting.non_preemptible.roots()[0]
        assert math.isinf(r.scheduled_at)  # genuinely never fits: blocked forever

    def test_fair_share_through_rms_accountant(self):
        # After 'hog' consumed node-seconds, a scheduling pass serves the
        # newcomer first under fair-share ordering.
        sim, _platform, rms = make_env(nodes=10, policy="fair-share")
        assert rms.policy.ordering.needs_usage
        rms.accountant.record_interval(
            app_id="hog", request_id=1, rtype=np_(1).rtype,
            cluster_id="cluster0", node_count=8, start=0.0, end=1000.0,
        )
        usage = rms.accountant.used_node_seconds_by_app()
        assert usage == {"hog": 8000.0}


class TestWeightedMaxMin:
    def test_uniform_weights_match_max_min(self):
        from repro.core import max_min_fair

        demands = [7, 1, 4, 9]
        assert weighted_max_min_fair(demands, [1, 1, 1, 1], 12) == max_min_fair(demands, 12)

    def test_weights_skew_the_split(self):
        alloc = weighted_max_min_fair([10, 10], [3, 1], 12)
        assert sum(alloc) == 12
        assert alloc[0] > alloc[1]

    def test_never_exceeds_demand_or_capacity(self):
        alloc = weighted_max_min_fair([2, 100, 5], [1, 2, 5], 20)
        assert sum(alloc) <= 20
        assert all(a <= d for a, d in zip(alloc, [2, 100, 5]))

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            weighted_max_min_fair([1], [0.0], 4)
        with pytest.raises(ValueError):
            weighted_max_min_fair([1, 2], [1.0], 4)

    def test_sharing_strategy_splits_by_weight(self):
        from repro.core import View

        sharing = WeightedMaxMinSharing(weights={"a": 3.0, "b": 1.0})
        views = sharing.share(
            {"a": p_set(p_(16)), "b": p_set(p_(16))},
            View.constant({"c0": 16}),
            now=0.0,
        )
        va = views["a"]["c0"].value_at(0.0)
        vb = views["b"]["c0"].value_at(0.0)
        assert va + vb <= 16
        assert va == 12 and vb == 4

    def test_sharing_rejects_non_positive_weights(self):
        with pytest.raises(ValueError):
            WeightedMaxMinSharing(weights={"a": -1.0})

    def test_uncongested_filling_shows_leftover(self):
        from repro.core import View

        sharing = WeightedMaxMinSharing()
        views = sharing.share(
            {"a": p_set(p_(2)), "b": p_set()},
            View.constant({"c0": 16}),
            now=0.0,
        )
        # 'a' sees everything 'b' leaves free; idle 'b' sees its slice.
        assert views["a"]["c0"].value_at(0.0) == 16
        assert views["b"]["c0"].value_at(0.0) >= 8


class TestEasyBackfillQueue:
    JOBS = [
        ("j0", 4, 100.0, 0.0),
        ("j1", 2, 100.0, 1.0),
        ("j2", 9, 50.0, 2.0),
        ("j3", 10, 150.0, 3.0),
        ("j4", 1, 50.0, 4.0),
        ("j5", 1, 150.0, 5.0),
    ]

    @staticmethod
    def _cbf_jobs(spec):
        return [CbfJob(j, n, d, s) for j, n, d, s in spec]

    def test_backfills_aggressively_where_cbf_reserves(self):
        easy = EasyBackfillQueue(10)
        jobs = self._cbf_jobs(self.JOBS)
        easy.submit_many(jobs)
        starts = {j.job_id: j.start_time for j in jobs}
        # j5 (1 node) fits beside the head's shadow and starts immediately;
        # under conservative backfilling it would wait until t=301.
        assert starts["j5"] == pytest.approx(5.0)

        conservative = ConservativeBackfillQueue(10)
        cjobs = self._cbf_jobs(self.JOBS)
        conservative.submit_many(cjobs)
        cstarts = {j.job_id: j.start_time for j in cjobs}
        assert cstarts["j5"] == pytest.approx(301.0)
        # The backfiller may delay the later wide job -- the EASY trade-off.
        assert starts["j3"] >= cstarts["j3"]

    def test_never_delays_the_queue_head(self):
        easy = EasyBackfillQueue(10)
        jobs = self._cbf_jobs(
            [("a", 8, 100.0, 0.0), ("b", 10, 50.0, 1.0), ("c", 2, 40.0, 2.0)]
        )
        easy.submit_many(jobs)
        starts = {j.job_id: j.start_time for j in jobs}
        # c backfills [2, 42) on the 2 free nodes; b (the head) still starts
        # exactly when a ends.
        assert starts == {"a": 0.0, "b": 100.0, "c": 2.0}

    def test_rejects_oversized_jobs(self):
        from repro.core import CapacityError

        with pytest.raises(CapacityError):
            EasyBackfillQueue(4).submit_many([CbfJob("big", 5, 10.0)])
        with pytest.raises(CapacityError):
            EasyBackfillQueue(0)

    def test_metrics_mirror_conservative_queue(self):
        easy = EasyBackfillQueue(10)
        easy.submit_many(self._cbf_jobs([("a", 4, 100.0, 0.0), ("b", 4, 50.0, 0.0)]))
        assert easy.makespan() == pytest.approx(100.0)
        assert easy.mean_wait_time() == pytest.approx(0.0)
        assert 0.0 < easy.utilisation() <= 1.0

    def test_empty_submit(self):
        easy = EasyBackfillQueue(4)
        assert easy.submit_many([]) == []
        assert easy.makespan() == 0.0
        assert easy.mean_wait_time() == 0.0
        assert easy.utilisation() == 0.0


class TestPolicyCli:
    def test_policy_list_prints_every_policy(self, capsys):
        from repro.campaign.cli import main

        assert main(["policy", "list"]) == 0
        out = capsys.readouterr().out
        for name in policy_names():
            assert name in out

    def test_policy_describe(self, capsys):
        from repro.campaign.cli import main

        assert main(["policy", "describe", "easy"]) == 0
        out = capsys.readouterr().out
        assert "easy" in out and "fcfs" in out

    def test_policy_describe_json(self, capsys):
        import json

        from repro.campaign.cli import main

        assert main(["policy", "describe", "coorm", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == {
            "name": "coorm",
            "ordering": "fcfs",
            "backfill": "conservative",
            "sharing": "eq-filling",
        }

    def test_policy_describe_unknown_fails(self, capsys):
        from repro.campaign.cli import main

        assert main(["policy", "describe", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_policy_stages_lists_every_stage(self, capsys):
        from repro.campaign.cli import main
        from repro.policies import backfill_names, ordering_names, sharing_names

        assert main(["policy", "stages"]) == 0
        out = capsys.readouterr().out
        for name in ordering_names() + backfill_names() + sharing_names():
            assert name in out

    def test_campaign_run_rejects_unknown_policy(self, capsys):
        from repro.campaign.cli import main

        assert main(["campaign", "run", "--scenarios", "fig1", "--policies", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestBatchBaselinePolicies:
    JOBS = [
        RigidJobSpec("j1", 0.0, 8, 100.0),
        RigidJobSpec("j2", 1.0, 10, 50.0),
        RigidJobSpec("j3", 2.0, 2, 300.0),
        RigidJobSpec("j4", 3.0, 2, 30.0),
    ]

    def test_default_policy_is_classical_fcfs_cbf(self):
        from repro.baselines import BatchSchedulerBaseline

        baseline = BatchSchedulerBaseline(10)
        baseline.run(self.JOBS)
        starts = {o.job_id: o.start_time for o in baseline.outcomes}
        assert starts == {"j1": 0.0, "j2": 100.0, "j3": 150.0, "j4": 3.0}
        assert isinstance(baseline.queue, ConservativeBackfillQueue)

    def test_sjf_policy_changes_the_queue_order(self):
        from repro.baselines import BatchSchedulerBaseline

        baseline = BatchSchedulerBaseline(10, policy="sjf")
        baseline.run(self.JOBS)
        starts = {o.job_id: o.start_time for o in baseline.outcomes}
        assert starts["j2"] < 100.0  # the 50 s job no longer waits for j1

    def test_easy_policy_uses_the_easy_queue(self):
        from repro.baselines import BatchSchedulerBaseline

        baseline = BatchSchedulerBaseline(10, policy="easy")
        assert isinstance(baseline.queue, EasyBackfillQueue)
        baseline.run(self.JOBS)
        assert len(baseline.outcomes) == len(self.JOBS)

    def test_policy_object_is_accepted(self):
        from repro.baselines import BatchSchedulerBaseline

        policy = get_policy("largest-area")
        baseline = BatchSchedulerBaseline(10, policy=policy)
        assert isinstance(baseline.policy, SchedulingPolicy)
        baseline.run(self.JOBS)
        # largest area first: j3 (600 node-seconds) outranks j4 (60).
        assert baseline.outcomes[0].job_id in {"j1", "j3"}
