"""Discrete-event simulation substrate used by the evaluation."""
from .engine import EventHandle, Process, Simulator
from .randomness import RandomSource, spawn_streams

__all__ = ["EventHandle", "Process", "Simulator", "RandomSource", "spawn_streams"]
