"""The ``python -m repro campaign`` command group.

Commands::

    python -m repro campaign run --scenarios fig9,fig10 --seeds 4 --workers 4
    python -m repro campaign run --scenarios trace-replay --policies coorm,easy,sjf
    python -m repro campaign run --scenarios fed-dual-trace --routings round-robin,least-loaded
    python -m repro campaign run --spec my_campaign.json
    python -m repro campaign list
    python -m repro campaign report <name> [--compare <other>]
    python -m repro campaign scenarios

``campaign run`` executes the scenario x seed grid in parallel and persists
one JSON-lines record per run under the results directory (``results/`` by
default, or ``--results-dir`` / the ``REPRO_RESULTS_DIR`` variable).  Runs
are deterministic: the same spec writes byte-identical records regardless of
the worker count.  The top-level parser that dispatches this group next to
``trace``, ``policy`` and ``federation`` lives in :mod:`repro.__main__`;
``build_parser``/``main`` are kept here as aliases for callers that predate
the centralised dispatch.
"""
from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..federation.routing import make_routing
from ..metrics.report import format_comparison, format_table
from ..obs.logsetup import get_logger
from ..policies.registry import resolve_policy
from . import builtin  # noqa: F401  (registers the built-in scenarios)
from .registry import builtin_scenarios, resolve_scenarios
from .runner import CampaignInterrupted, CampaignRunner
from .spec import SCALE_NAMES, CampaignSpec
from .store import ResultStore

__all__ = ["add_campaign_commands", "run_campaign_command", "build_parser", "main"]

_LOG = get_logger("campaign")


def add_campaign_commands(commands: argparse._SubParsersAction) -> None:
    """Attach the ``campaign`` command group to the top-level CLI parser."""
    campaign = commands.add_parser("campaign", help="run and inspect campaigns")
    actions = campaign.add_subparsers(dest="action", required=True)

    run = actions.add_parser("run", help="execute a campaign")
    run.add_argument(
        "--scenarios",
        help="comma-separated built-in scenario names (see 'campaign scenarios')",
    )
    run.add_argument("--spec", help="path to a campaign JSON file (overrides --scenarios)")
    run.add_argument(
        "--seeds", type=int, default=None,
        help="replicates per scenario (default: 1, or the spec file's value)",
    )
    run.add_argument(
        "--root-seed", type=int, default=None,
        help="campaign root seed (default: 0, or the spec file's value)",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker processes (default: the spec's worker count)",
    )
    run.add_argument(
        "--scale", choices=SCALE_NAMES, default=None,
        help="override the evaluation scale of every scenario",
    )
    run.add_argument(
        "--policies",
        help="comma-separated scheduling policies; every scenario runs once "
        "per policy on the same workload (see 'policy list')",
    )
    run.add_argument(
        "--routings",
        help="comma-separated federation routing policies; every (federated) "
        "scenario runs once per routing on the same workload "
        "(see 'federation list')",
    )
    run.add_argument("--name", help="campaign name (defaults to the scenario list)")
    run.add_argument("--results-dir", default=None, help="result store root")
    run.add_argument(
        "--append", action="store_true",
        help="append to existing records instead of replacing them",
    )
    run.add_argument("--quiet", action="store_true", help="suppress progress output")
    run.add_argument(
        "--obs", action="store_true",
        help="collect per-run observability: metric counters into the run "
        "records ('obs' field, shown by 'campaign report') and wall-clock "
        "phase timers into meta.json",
    )
    run.add_argument(
        "--trace-dir", default=None,
        help="write one deterministic JSONL event trace per run into this "
        "directory (implies per-run tracing; see 'python -m repro obs')",
    )
    run.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="evaluate every run against an SLO spec ('default' or a path "
        "to a spec JSON file); verdicts land in the run records ('slo' "
        "field, aggregated by 'campaign report')",
    )
    run.add_argument(
        "--backend", choices=("pool", "dist"), default="pool",
        help="execution backend: the in-host multiprocessing pool, or the "
        "coordinator/worker service (identical store rows either way)",
    )
    run.add_argument(
        "--transport", choices=("thread", "ipc", "tcp"), default="thread",
        help="dist backend transport: in-thread loopback, subprocess pipes "
        "or TCP sockets (default thread)",
    )
    run.add_argument(
        "--dist-workers", type=int, default=None, metavar="N",
        help="dist backend worker count (defaults to --workers)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="skip runs whose idempotency key already has a store row "
        "(works on both backends; implies --append)",
    )
    run.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="dist backend: lease expiry without completion or heartbeat",
    )
    run.add_argument(
        "--dist-kill-after", default=None, metavar="IDX:N[,IDX:N...]",
        help="chaos (testing): kill dist worker IDX after its Nth lease",
    )

    listing = actions.add_parser("list", help="list stored campaigns")
    listing.add_argument("--results-dir", default=None, help="result store root")

    report = actions.add_parser("report", help="summarize a stored campaign")
    report.add_argument("name", help="campaign name")
    report.add_argument("--compare", help="second campaign to compare against")
    report.add_argument("--results-dir", default=None, help="result store root")

    actions.add_parser("scenarios", help="list built-in scenarios")


def _default_name(scenario_names: Sequence[str], seeds: int) -> str:
    return "-".join(scenario_names) + f"_x{seeds}"


def _cmd_run(args: argparse.Namespace) -> int:
    policies = tuple(
        p.strip() for p in (args.policies or "").split(",") if p.strip()
    )
    routings = tuple(
        r.strip() for r in (args.routings or "").split(",") if r.strip()
    )
    try:
        for p in policies:
            resolve_policy(p)
        for r in routings:
            make_routing(r)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        if args.spec:
            spec = CampaignSpec.load(args.spec)
            overrides = {}
            if args.scale is not None:
                overrides["scenarios"] = [
                    s.with_scale(args.scale).to_dict() for s in spec.scenarios
                ]
            # Explicit flags beat the spec file; omitted flags keep its values.
            if args.seeds is not None:
                overrides["seeds"] = args.seeds
            if args.root_seed is not None:
                overrides["root_seed"] = args.root_seed
            if policies:
                overrides["policies"] = list(policies)
            if routings:
                overrides["routings"] = list(routings)
            if overrides:
                spec = CampaignSpec.from_dict({**spec.to_dict(), **overrides})
        else:
            if not args.scenarios:
                print("error: provide --scenarios or --spec", file=sys.stderr)
                return 2
            names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
            try:
                scenarios = resolve_scenarios(names, scale=args.scale)
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 2
            seeds = 1 if args.seeds is None else args.seeds
            spec = CampaignSpec(
                name=args.name or _default_name(names, seeds),
                scenarios=tuple(scenarios),
                seeds=seeds,
                root_seed=0 if args.root_seed is None else args.root_seed,
                workers=args.workers or 1,
                policies=policies,
                routings=routings,
            )
        if args.name and spec.name != args.name:
            spec = CampaignSpec.from_dict({**spec.to_dict(), "name": args.name})
    except ValueError as exc:
        # e.g. a routing matrix over scenarios that have no federation spec.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if spec.policies:
        unaware = sorted(
            {s.runner for s in spec.scenarios} - set(builtin.POLICY_AWARE_RUNNERS)
        )
        if unaware:
            print(
                f"error: runner(s) {unaware} reproduce fixed paper experiments "
                "and cannot sweep scheduling policies; use 'amr_psa'-based "
                "scenarios (e.g. trace-replay, baseline-dynamic)",
                file=sys.stderr,
            )
            return 2

    store = ResultStore(args.results_dir)
    try:
        store.campaign_dir(spec.name)  # validate the name before running
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(done: int, total: int, record) -> None:
        # Narration goes through the shared logger (stderr): --quiet keeps
        # the historic behaviour, the global -q/-v flags tune it further.
        if not args.quiet:
            _LOG.info(
                "[%d/%d] %s replicate=%s seed=%s",
                done,
                total,
                record["scenario"],
                record["replicate"],
                record["seed"],
            )

    try:
        runner = CampaignRunner(
            spec,
            store=store,
            progress=progress,
            collect_obs=args.obs,
            trace_dir=args.trace_dir,
            slo_spec=args.slo,
        )
    except (OSError, ValueError) as exc:
        # A missing or malformed --slo spec file fails before any run starts.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    dist_config = None
    workers = args.workers
    if args.backend == "dist":
        from ..dist.coordinator import DistConfig

        try:
            kills = _parse_kill_spec(args.dist_kill_after)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        dist_config = DistConfig(
            transport=args.transport,
            lease_ttl=args.lease_ttl,
            kill_after_leases=kills,
        )
        if args.dist_workers is not None:
            workers = args.dist_workers

    try:
        result = runner.run(
            workers=workers,
            append=args.append,
            backend=args.backend,
            resume=args.resume,
            dist=dist_config,
        )
    except CampaignInterrupted as exc:
        partial = exc.result
        print(
            f"interrupted: {len(partial.records)} completed run(s) flushed to "
            f"{partial.store_path}; re-run with --resume to finish",
            file=sys.stderr,
        )
        return 130
    if args.trace_dir:
        _LOG.info("event traces written under %s", args.trace_dir)
    skipped = f" ({result.skipped} resumed)" if result.skipped else ""
    print(
        f"campaign {spec.name!r}: {len(result.records)} runs{skipped} in "
        f"{result.elapsed_seconds:.2f}s with {result.workers} "
        f"{result.backend} worker(s) -> {result.store_path}"
    )
    return 0


def _parse_kill_spec(text: Optional[str]) -> dict:
    """``"0:1,2:3"`` -> ``{0: 1, 2: 3}`` (worker index -> kill after Nth lease)."""
    kills = {}
    for part in (text or "").split(","):
        part = part.strip()
        if not part:
            continue
        index, _, count = part.partition(":")
        try:
            kills[int(index)] = int(count)
        except ValueError:
            raise ValueError(
                f"--dist-kill-after expects IDX:N pairs, got {part!r}"
            ) from None
    return kills


def _cmd_list(args: argparse.Namespace) -> int:
    store = ResultStore(args.results_dir)
    infos = store.list_campaigns()
    if not infos:
        print(f"no campaigns under {store.root}")
        return 0
    rows = [(i.name, i.run_count, ", ".join(i.scenarios)) for i in infos]
    print(format_table(["campaign", "runs", "scenarios"], rows))
    return 0


def _describe_provenance(provenance) -> str:
    """One human-readable line summarising a workload provenance record."""
    source = provenance.get("source", {})
    if isinstance(source, dict) and "path" in source and source.get("path"):
        description = f"trace file {source['path']}"
    elif isinstance(source, dict) and source.get("model"):
        arrivals = source["model"].get("arrivals", {}).get("kind", "?")
        # An unset source job_count means the default was synthesized; the
        # realised count always rides along in the provenance record.
        jobs = source.get("job_count") or provenance.get("job_count") or "?"
        description = f"synthesized trace ({arrivals} arrivals, {jobs} jobs)"
    elif isinstance(source, dict) and source.get("generator"):
        description = "generated rigid workload"
    else:
        description = json.dumps(source, sort_keys=True)
    steps = [
        step.get("kind", "?")
        for step in provenance.get("steps", [])
        if isinstance(step, dict)
        and step.get("kind") not in ("load", "synthesize", "fingerprint")
    ]
    if steps:
        description += f"; transforms: {' -> '.join(steps)}"
    counts = provenance.get("kind_counts")
    if isinstance(counts, dict):
        mixed = {k: v for k, v in counts.items() if v}
        if set(mixed) - {"rigid"}:
            description += "; mix: " + ", ".join(
                f"{kind}={count}" for kind, count in sorted(mixed.items())
            )
    return description


def _federation_breakdown_rows(summary: dict) -> List[tuple]:
    """Per-cluster table rows from the flat ``fed_*[name]`` metric keys."""
    clusters = []
    for key in summary:
        if key.startswith("fed_util_pct[") and key.endswith("]"):
            clusters.append(key[len("fed_util_pct["):-1])
    rows = []
    for name in sorted(clusters):
        rows.append(
            (
                name,
                summary.get(f"fed_nodes[{name}]", ""),
                summary.get(f"fed_routed[{name}]", ""),
                summary.get(f"fed_alloc_node_seconds[{name}]", ""),
                summary.get(f"fed_util_pct[{name}]", ""),
            )
        )
    return rows


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.results_dir)
    try:
        if args.compare:
            rows = store.compare(args.name, args.compare)
            print(f"campaign comparison: {args.name} vs {args.compare}")
            print(format_comparison(rows, label_a=args.name, label_b=args.compare))
            return 0
        records = store.load_records(args.name)
        summary = store.summarize(args.name, records)
        provenance = store.provenance_of(args.name, records)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    matrix = store.policy_matrix(args.name, records)
    routing_matrix = store.routing_matrix(args.name, records)
    obs_summary = store.obs_summary(args.name, records)
    slo_summary = store.slo_summary(args.name, records)
    print(f"campaign {args.name!r}: per-scenario medians over replicates")
    for scenario in summary:
        print()
        print(f"== {scenario} ==")
        if scenario in provenance:
            print(f"workload: {_describe_provenance(provenance[scenario])}")
        rows = list(summary[scenario].items())
        print(format_table(["metric", "median"], rows))
        breakdown = _federation_breakdown_rows(summary[scenario])
        if breakdown:
            print()
            print(f"-- {scenario}: per-cluster breakdown --")
            print(
                format_table(
                    ["cluster", "nodes", "routed", "alloc node-s", "util %"],
                    breakdown,
                )
            )
        if scenario in obs_summary:
            print()
            print(f"-- {scenario}: observability (median per run) --")
            print(
                format_table(
                    ["counter", "median"], list(obs_summary[scenario].items())
                )
            )
        if scenario in slo_summary:
            verdicts = slo_summary[scenario]
            # slo.passed is 1.0/0.0 per run; its median reads as "did the
            # majority of replicates pass".
            passed = verdicts.get("slo.passed", 0.0) >= 1.0
            print()
            print(
                f"-- {scenario}: SLO "
                f"({'PASS' if passed else 'FAIL'}, median per run) --"
            )
            print(format_table(["objective", "median"], list(verdicts.items())))
    # Matrix campaigns additionally get side-by-side comparisons of every
    # policy (and, for federated campaigns, every routing) on the same base
    # scenario -- identical workload per seed in both matrices.
    _print_matrix_comparisons(matrix, "policy comparison")
    _print_matrix_comparisons(routing_matrix, "routing comparison")
    meta = store.load_meta(args.name)
    if meta and meta.get("dist"):
        print()
        print("== distributed execution (last run) ==")
        rows = [(k, v) for k, v in sorted(meta["dist"].items())]
        print(format_table(["counter", "value"], rows))
    return 0


def _print_matrix_comparisons(matrix: dict, title: str) -> None:
    """One comparison table per base scenario with >= 2 matrix variants."""
    for base in sorted(matrix):
        variants = matrix[base]
        if len(variants) < 2:
            continue
        names = sorted(variants)
        metrics = sorted(set().union(*(variants[n] for n in names)))
        rows = [
            tuple([metric] + [variants[n].get(metric, "") for n in names])
            for metric in metrics
        ]
        print()
        print(f"== {base}: {title} ==")
        print(format_table(["metric"] + names, rows))


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    rows = [
        (spec.name, spec.runner, spec.scale, spec.description)
        for spec in sorted(builtin_scenarios().values(), key=lambda s: s.name)
    ]
    print(format_table(["scenario", "runner", "scale", "description"], rows))
    return 0


def run_campaign_command(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_run,
        "list": _cmd_list,
        "report": _cmd_report,
        "scenarios": _cmd_scenarios,
    }
    return handlers[args.action](args)


def build_parser() -> argparse.ArgumentParser:
    """The full ``python -m repro`` parser (alias of the central one)."""
    from ..__main__ import build_parser as _build_parser

    return _build_parser()


def main(argv: Optional[List[str]] = None) -> int:
    """Back-compat entry point delegating to the central dispatcher."""
    from ..__main__ import main as _main

    return _main(argv)
