"""Run-unit idempotency keys: stable across processes, sensitive to inputs.

The distributed backend's exactly-once guarantee rests on the unit key
being (a) a pure, process-independent function of everything that shapes a
run's store row and (b) different whenever any of those inputs differs.
Both directions are tested here: byte-equal keys from a fresh interpreter,
and hypothesis-driven single-component perturbations that must all change
the key.
"""
from __future__ import annotations

import json
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.campaign.registry import resolve_scenarios
from repro.campaign.runner import RunTask
from repro.campaign.spec import ScenarioSpec
from repro.campaign.units import task_from_dict, task_to_dict, unit_key
from repro.sim.randomness import derive_seed


def make_task(
    scenario="baseline-dynamic",
    replicate=0,
    root_seed=0,
    collect_obs=False,
    slo_spec="",
    trace_dir="",
) -> RunTask:
    (spec,) = resolve_scenarios([scenario])
    return RunTask(
        scenario=spec,
        replicate=replicate,
        seed=derive_seed(root_seed, spec.name, replicate),
        base_scenario=spec.name,
        collect_obs=collect_obs,
        trace_dir=trace_dir,
        slo_spec=slo_spec,
    )


class TestKeyStability:
    def test_key_is_deterministic_within_a_process(self):
        assert unit_key(make_task()) == unit_key(make_task())

    def test_key_has_a_greppable_prefix(self):
        key = unit_key(make_task(replicate=3))
        assert key.startswith("baseline-dynamic:r3:")
        assert len(key.rsplit(":", 1)[1]) == 16  # stable_fingerprint hex

    def test_key_is_identical_in_a_fresh_interpreter(self):
        """Same inputs -> same key across process boundaries.

        A worker on another machine must derive the same key the
        coordinator did, otherwise dedup and resume silently break.  A
        fresh interpreter catches anything process-local leaking into the
        key (hash randomisation, dict order, object ids).
        """
        task = make_task(replicate=1, root_seed=42)
        code = (
            "import sys, json\n"
            "from repro.campaign.units import task_from_dict, unit_key\n"
            "task = task_from_dict(json.loads(sys.stdin.read()))\n"
            "print(unit_key(task))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            input=json.dumps(task_to_dict(task)),
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == unit_key(task)

    def test_wire_round_trip_preserves_the_task_and_key(self):
        task = make_task(collect_obs=True, slo_spec="default")
        rebuilt = task_from_dict(json.loads(json.dumps(task_to_dict(task))))
        assert rebuilt == task
        assert unit_key(rebuilt) == unit_key(task)

    def test_trace_dir_does_not_perturb_the_key(self):
        # Where the side-channel trace lands never changes the row bytes,
        # so two otherwise-identical runs must deduplicate.
        assert unit_key(make_task()) == unit_key(make_task(trace_dir="/tmp/x"))


class TestKeySensitivity:
    @given(
        component=st.sampled_from(
            ["scenario", "replicate", "root_seed", "collect_obs", "slo_spec"]
        ),
        replicate=st.integers(min_value=0, max_value=20),
        root_seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_changing_any_component_changes_the_key(
        self, component, replicate, root_seed
    ):
        base = make_task(replicate=replicate, root_seed=root_seed)
        changed = {
            "scenario": lambda: make_task(
                scenario="strict-equipartition",
                replicate=replicate,
                root_seed=root_seed,
            ),
            "replicate": lambda: make_task(
                replicate=replicate + 1, root_seed=root_seed
            ),
            "root_seed": lambda: make_task(
                replicate=replicate, root_seed=root_seed + 1
            ),
            "collect_obs": lambda: make_task(
                replicate=replicate, root_seed=root_seed, collect_obs=True
            ),
            "slo_spec": lambda: make_task(
                replicate=replicate, root_seed=root_seed, slo_spec="default"
            ),
        }[component]()
        assert unit_key(changed) != unit_key(base)

    def test_policy_and_scale_change_the_key(self):
        (spec,) = resolve_scenarios(["baseline-dynamic"])
        base = make_task()
        repoliced = RunTask(
            scenario=spec.with_policy("easy"),
            replicate=0,
            seed=base.seed,
            base_scenario=spec.name,
        )
        rescaled = RunTask(
            scenario=spec.with_scale("reduced"),
            replicate=0,
            seed=base.seed,
            base_scenario=spec.name,
        )
        keys = {unit_key(base), unit_key(repoliced), unit_key(rescaled)}
        assert len(keys) == 3

    def test_workload_provenance_shapes_the_key(self):
        # The declarative workload description (the provenance-to-be) is
        # embedded in the scenario spec, so perturbing it perturbs the key.
        (spec,) = resolve_scenarios(["baseline-dynamic"])
        tweaked = ScenarioSpec.from_dict(
            {**spec.to_dict(), "params": {**spec.params, "tweak": 1}}
        )
        base = make_task()
        other = RunTask(
            scenario=tweaked, replicate=0, seed=base.seed, base_scenario=spec.name
        )
        assert unit_key(other) != unit_key(base)
