"""A small discrete-event simulation engine.

The paper's evaluation is driven by a discrete-event simulator ("we have
replaced remote calls with direct function calls and calls to sleep() with
simulator events", Section 5).  This module provides that substrate: a
priority-queue of timestamped events, a simulation clock, callback scheduling
and simpy-style generator processes (``yield <delay>`` suspends the process
for that many simulated seconds).

The engine is deterministic: events at equal times fire in scheduling order.
"""
from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Any, Callable, Generator, List, Optional

from ..core.errors import SimulationError
from ..core.types import Time
from ..obs import hooks as _obs

__all__ = ["EventHandle", "Simulator", "Process", "callback_label"]


def callback_label(callback: Callable) -> str:
    """Deterministic human-readable label of an event callback.

    Used by the tracer's engine instrumentation: the label must be a pure
    function of the *code*, never of object identity (no ``repr`` with
    memory addresses), so traces stay byte-identical across processes.
    Bound methods of a :class:`Process` report the process name, which is
    itself derived from the generator's qualified name.
    """
    owner = getattr(callback, "__self__", None)
    if isinstance(owner, Process):
        return f"process:{owner.name}"
    name = getattr(callback, "__qualname__", None)
    if name is None:  # pragma: no cover - exotic callables (partial, C funcs)
        name = getattr(type(callback), "__qualname__", "callable")
    return name


class EventHandle:
    """A scheduled callback; can be cancelled before it fires."""

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "fired")

    def __init__(self, time: Time, seq: int, callback: Callable, args: tuple, kwargs: dict):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def pending(self) -> bool:
        return not self.cancelled and not self.fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(t={self.time:g}, {state}, {self.callback!r})"


class Process:
    """A generator-based simulated process.

    The generator may ``yield`` a non-negative number (sleep that many
    simulated seconds) or ``None`` (yield control, resume immediately).  The
    process ends when the generator returns.
    """

    def __init__(self, simulator: "Simulator", generator: Generator, name: str = ""):
        self.simulator = simulator
        self.generator = generator
        # The default name is the generator's *qualified name*, not its repr:
        # a repr embeds the object address, which would make any trace or log
        # carrying process names non-deterministic across processes.
        self.name = name or getattr(generator, "__qualname__", type(generator).__qualname__)
        self.finished = False
        self._resume_handle: Optional[EventHandle] = None

    def _step(self) -> None:
        if self.finished:
            return
        try:
            delay = next(self.generator)
        except StopIteration:
            self.finished = True
            return
        if delay is None:
            delay = 0.0
        if delay < 0:
            raise SimulationError(f"process {self.name!r} yielded a negative delay")
        self._resume_handle = self.simulator.schedule(delay, self._step)

    def interrupt(self) -> None:
        """Stop the process; its pending resume event is cancelled."""
        self.finished = True
        if self._resume_handle is not None:
            self._resume_handle.cancel()

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """The discrete-event simulation core."""

    def __init__(self, start_time: Time = 0.0):
        self._now: Time = float(start_time)
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> Time:
        """The current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (diagnostic)."""
        return self._processed

    def empty(self) -> bool:
        """True when no pending event remains."""
        return not any(e.pending() for e in self._queue)

    def peek(self) -> Time:
        """Time of the next pending event, or ``inf`` if there is none."""
        self._drop_dead_events()
        return self._queue[0].time if self._queue else math.inf

    # ------------------------------------------------------------------ #
    def schedule(self, delay: Time, callback: Callable, *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule *callback* to run after *delay* simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule an event in the past")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: Time, callback: Callable, *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule *callback* to run at absolute simulated time *time*."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at t={time:g}, the clock is already at {self._now:g}"
            )
        handle = EventHandle(max(time, self._now), next(self._seq), callback, args, kwargs)
        heapq.heappush(self._queue, handle)
        return handle

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator-based :class:`Process` immediately."""
        proc = Process(self, generator, name)
        self.schedule(0.0, proc._step)
        return proc

    # ------------------------------------------------------------------ #
    def _drop_dead_events(self) -> None:
        while self._queue and (self._queue[0].cancelled or self._queue[0].fired):
            heapq.heappop(self._queue)

    def step(self) -> bool:
        """Fire the next pending event; returns False if none remained."""
        self._drop_dead_events()
        if not self._queue:
            return False
        handle = heapq.heappop(self._queue)
        if handle.time < self._now - 1e-9:
            raise SimulationError("event queue went back in time")
        self._now = max(self._now, handle.time)
        handle.fired = True
        self._processed += 1
        handle.callback(*handle.args, **handle.kwargs)
        return True

    def _step_observed(self) -> bool:
        """:meth:`step` with observability instrumentation.

        A deliberate near-duplicate of :meth:`step`: keeping the plain
        variant free of any observation code is what makes tracing
        zero-cost when disabled -- :meth:`run` selects the variant **once**
        per call, so a disabled run never pays a per-event check.  Any
        semantic change to :meth:`step` must be mirrored here (the obs
        regression tests assert both variants produce identical metrics).
        """
        self._drop_dead_events()
        if not self._queue:
            return False
        handle = heapq.heappop(self._queue)
        if handle.time < self._now - 1e-9:
            raise SimulationError("event queue went back in time")
        self._now = max(self._now, handle.time)
        handle.fired = True
        self._processed += 1
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                self._now,
                "engine",
                "dispatch",
                {"callback": callback_label(handle.callback), "event_seq": handle.seq},
            )
        metrics = _obs.METRICS[0]
        if metrics is not None:
            metrics.inc("engine.events_dispatched")
        profiler = _obs.PROFILER[0]
        if profiler is None:
            handle.callback(*handle.args, **handle.kwargs)
        else:
            started = time.perf_counter()
            try:
                handle.callback(*handle.args, **handle.kwargs)
            finally:
                profiler.add("engine.dispatch", time.perf_counter() - started)
        return True

    def run(self, until: Time = math.inf, max_events: int = 10_000_000) -> Time:
        """Run until the queue drains or the clock passes *until*.

        Returns the simulation time when the run stopped.  *max_events*
        guards against accidental infinite event loops.  Whether events are
        dispatched through the plain or the observed step variant is decided
        once per call, from the observation state at entry.
        """
        if self._running:
            raise SimulationError("the simulator is already running (re-entrant run())")
        self._running = True
        fired = 0
        step = self._step_observed if _obs.observation_enabled() else self.step
        try:
            if not math.isfinite(until):
                # Unbounded run: step() already sweeps dead events and
                # reports queue exhaustion, so the loop needs no per-event
                # peek -- this keeps run() as cheap as a bare step loop.
                while step():
                    fired += 1
                    if fired > max_events:
                        raise SimulationError(
                            f"more than {max_events} events fired; "
                            "likely an infinite scheduling loop"
                        )
            else:
                while True:
                    self._drop_dead_events()
                    if not self._queue:
                        break
                    if self._queue[0].time > until:
                        self._now = until
                        break
                    if not step():
                        break
                    fired += 1
                    if fired > max_events:
                        raise SimulationError(
                            f"more than {max_events} events fired; "
                            "likely an infinite scheduling loop"
                        )
        finally:
            self._running = False
        return self._now

    def run_until_empty(self) -> Time:
        """Run until no pending events remain."""
        return self.run(math.inf)

    def __repr__(self) -> str:
        pending = sum(1 for e in self._queue if e.pending())
        return f"Simulator(now={self._now:g}, pending={pending})"
