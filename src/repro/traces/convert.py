"""Converting rigid traces into mixes of adaptive applications.

Archived traces only know rigid jobs, but the paper's whole point (Section 4)
is a protocol under which rigid, moldable, malleable and evolving
applications coexist.  This module maps each rigid trace record onto one of
those four application kinds -- deterministically, using a per-job derived
seed, so the assignment never depends on iteration order or worker count --
and builds the corresponding simulator application objects:

* **rigid** jobs replay exactly as recorded;
* **moldable** jobs may reshape to nearby power-of-two node counts under a
  work-conserving walltime model (same node-seconds at any size);
* **malleable** jobs keep half their nodes as a firm minimum and treat the
  rest as an elastic, preemptible extra;
* **evolving** jobs declare a grow-shrink phase plan (half / full / half)
  whose node-seconds match the original record.
"""
from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..apps.base import BaseApplication
from ..apps.evolving_predictable import (
    EvolutionPhase,
    FullyPredictableEvolvingApplication,
)
from ..apps.malleable import MalleableApplication, power_of_two_selector
from ..apps.moldable import MoldableApplication
from ..apps.rigid import RigidApplication
from ..core.errors import WorkloadError
from ..sim.randomness import MAX_DERIVED_SEED, derive_seed
from ..workloads.generator import RigidJobSpec
from .serde import from_strict_dict
from .swf import Trace

__all__ = [
    "APP_KINDS",
    "AdaptiveMix",
    "ConvertedJob",
    "convert_trace",
    "build_application",
    "mix_counts",
    "replay_horizon",
]

#: Application kinds a trace job can be converted into, in mix order.
APP_KINDS: Tuple[str, ...] = ("rigid", "moldable", "malleable", "evolving")


@dataclass(frozen=True)
class AdaptiveMix:
    """Target fractions of each application kind (normalised on use)."""

    rigid: float = 1.0
    moldable: float = 0.0
    malleable: float = 0.0
    evolving: float = 0.0

    def __post_init__(self) -> None:
        # `not 0 <= f` (instead of `f < 0`) also rejects NaN fractions,
        # which would otherwise send every job to the last kind.
        if any(not 0 <= getattr(self, kind) < math.inf for kind in APP_KINDS):
            raise ValueError("mix fractions must be >= 0 and finite")
        if not self.total > 0:
            raise ValueError("at least one mix fraction must be positive")

    @property
    def total(self) -> float:
        return sum(getattr(self, kind) for kind in APP_KINDS)

    def pick(self, draw: float) -> str:
        """Map a uniform draw in [0, 1) onto a kind via cumulative fractions."""
        cumulative = 0.0
        for kind in APP_KINDS:
            cumulative += getattr(self, kind) / self.total
            if draw < cumulative:
                return kind
        return APP_KINDS[-1]

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "AdaptiveMix":
        return from_strict_dict(cls, data, ignore=())

    @classmethod
    def parse(cls, text: str) -> "AdaptiveMix":
        """Parse ``"rigid=0.5,moldable=0.3,evolving=0.2"``-style CLI mixes."""
        if not text.strip():
            return cls()
        values: Dict[str, float] = {kind: 0.0 for kind in APP_KINDS}
        for item in text.split(","):
            kind, sep, fraction = item.partition("=")
            kind = kind.strip()
            if not sep or kind not in APP_KINDS:
                raise WorkloadError(
                    f"bad mix component {item!r}; expected kind=fraction with "
                    f"kind in {APP_KINDS}"
                )
            try:
                values[kind] = float(fraction)
            except ValueError:
                raise WorkloadError(f"bad mix fraction in {item!r}") from None
        return cls(**values)


@dataclass(frozen=True)
class ConvertedJob:
    """One trace job assigned to an application kind."""

    kind: str
    job_id: str
    submit_time: float
    node_count: int
    duration: float

    def __post_init__(self) -> None:
        if self.kind not in APP_KINDS:
            raise ValueError(f"kind must be one of {APP_KINDS}, got {self.kind!r}")

    @property
    def area(self) -> float:
        return self.node_count * self.duration

    @property
    def end_of_work(self) -> float:
        """Earliest possible completion (submit + duration)."""
        return self.submit_time + self.duration


def _as_rigid_jobs(trace) -> List[RigidJobSpec]:
    if isinstance(trace, Trace):
        return trace.to_rigid_jobs()
    return sorted(trace, key=lambda j: (j.submit_time, j.job_id))


def convert_trace(
    trace,
    mix: AdaptiveMix = AdaptiveMix(),
    seed: Optional[int] = 0,
    max_nodes: Optional[int] = None,
) -> List[ConvertedJob]:
    """Assign every job of *trace* to an application kind.

    *trace* is a :class:`~repro.traces.swf.Trace` or any iterable of
    :class:`~repro.workloads.generator.RigidJobSpec`.  The kind of each job
    is drawn from ``derive_seed(seed, "convert", job_id)``, so the assignment
    of one job never depends on the other jobs, on ordering, or on which
    worker process performs the conversion.  *max_nodes* (when given) clamps
    node counts so converted jobs fit the target cluster.
    """
    converted: List[ConvertedJob] = []
    for job in _as_rigid_jobs(trace):
        # The derived seed is already a uniform 63-bit hash of (seed, job id);
        # dividing by the bound turns it into the kind-selection draw without
        # paying for a numpy Generator per job on this hot path.
        draw = derive_seed(seed, "convert", job.job_id) / MAX_DERIVED_SEED
        nodes = job.node_count if max_nodes is None else min(job.node_count, max_nodes)
        converted.append(
            ConvertedJob(
                kind=mix.pick(draw),
                job_id=job.job_id,
                submit_time=job.submit_time,
                node_count=max(1, nodes),
                duration=job.duration,
            )
        )
    return converted


def _power_of_two_candidates(nodes: int, max_nodes: int) -> List[int]:
    """Power-of-two node counts around *nodes* (always including *nodes*)."""
    lower = max(1, nodes // 2)
    upper = max(nodes, min(2 * nodes, max_nodes))
    candidates = {nodes}
    power = 1
    while power <= upper:
        if power >= lower:
            candidates.add(power)
        power <<= 1
    return sorted(min(c, max_nodes) for c in candidates if c > 0)


def _evolution_phases(job: ConvertedJob) -> List[EvolutionPhase]:
    """A half / full / half phase plan preserving the job's node-seconds.

    With the ramp node count at half the peak, splitting the *area* into
    thirds means the two ramp phases each run twice as long as a third of
    the original duration would -- the plan keeps the work, not the span.
    """
    half = max(1, job.node_count // 2)
    if half == job.node_count or job.duration < 3.0:
        return [EvolutionPhase(node_count=job.node_count, duration=job.duration)]
    area_third = job.area / 3.0
    return [
        EvolutionPhase(node_count=half, duration=area_third / half),
        EvolutionPhase(node_count=job.node_count, duration=area_third / job.node_count),
        EvolutionPhase(node_count=half, duration=area_third / half),
    ]


def build_application(job: ConvertedJob, cluster_nodes: int) -> BaseApplication:
    """Instantiate the simulator application a converted job maps to."""
    nodes = max(1, min(job.node_count, cluster_nodes))
    if job.kind == "rigid":
        return RigidApplication(job.job_id, node_count=nodes, duration=job.duration)
    if job.kind == "moldable":
        area = nodes * job.duration
        return MoldableApplication(
            job.job_id,
            candidate_node_counts=_power_of_two_candidates(nodes, cluster_nodes),
            walltime_model=lambda n: area / n,
        )
    if job.kind == "malleable":
        return MalleableApplication(
            job.job_id,
            min_nodes=max(1, nodes // 2),
            duration=job.duration,
            extra_selector=lambda available: min(
                power_of_two_selector(available), cluster_nodes
            ),
        )
    if job.kind == "evolving":
        return FullyPredictableEvolvingApplication(
            job.job_id, phases=_evolution_phases(job)
        )
    raise WorkloadError(f"unknown application kind {job.kind!r}")


def mix_counts(jobs: Sequence[ConvertedJob]) -> Dict[str, int]:
    """How many jobs of each kind a conversion produced."""
    counts = {kind: 0 for kind in APP_KINDS}
    for job in jobs:
        counts[job.kind] += 1
    return counts


def replay_horizon(jobs: Sequence[ConvertedJob]) -> float:
    """A lower bound on when the whole converted stream can be done."""
    return max((job.end_of_work for job in jobs), default=0.0)
