"""Generic malleable applications (paper Section 4).

A malleable application first sends a non-preemptible request ``r_min`` with
its minimum requirements, then scans its preemptive view and keeps a
preemptible request ``r_extra`` (co-allocated with ``r_min``) sized to the
extra resources it can actually exploit -- for instance rounded down to a
power of two.  During execution it monitors the preemptive view and updates
``r_extra`` whenever the availability changes.

The Parameter-Sweep Application of the evaluation is a specialised malleable
application (its minimum is zero and its granularity is one node); this class
covers the general pattern and is exercised by tests and examples.
"""
from __future__ import annotations

import math
from typing import Callable, FrozenSet, Optional

from ..core.request import Request
from ..core.types import ClusterId, NodeId, RelatedHow, RequestType, Time
from .base import BaseApplication

__all__ = ["MalleableApplication", "power_of_two_selector", "identity_selector"]


def power_of_two_selector(available: int) -> int:
    """Largest power of two not exceeding *available* (0 when none fits)."""
    if available < 1:
        return 0
    return 1 << (int(available).bit_length() - 1)


def identity_selector(available: int) -> int:
    """Use every available node."""
    return max(0, int(available))


class MalleableApplication(BaseApplication):
    """A malleable job with a fixed minimum and an elastic extra part."""

    def __init__(
        self,
        name: str,
        min_nodes: int,
        duration: Time,
        cluster_id: ClusterId = "cluster0",
        extra_selector: Callable[[int], int] = identity_selector,
    ):
        super().__init__(name, cluster_id)
        if min_nodes <= 0:
            raise ValueError("min_nodes must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.min_nodes = int(min_nodes)
        self.duration = float(duration)
        self.extra_selector = extra_selector

        self.min_request: Optional[Request] = None
        self.extra_request: Optional[Request] = None
        self.start_time: Time = math.nan
        self.extra_history = []
        self._submitted = False

    # ------------------------------------------------------------------ #
    def current_extra_nodes(self) -> int:
        """Nodes currently held through the preemptible request."""
        if self.extra_request is None or not self.extra_request.started():
            return 0
        if self.extra_request.finished():
            return 0
        return len(self.extra_request.node_ids)

    def total_nodes(self) -> int:
        held = 0
        if self.min_request is not None and self.min_request.started() and not self.min_request.finished():
            held += len(self.min_request.node_ids)
        return held + self.current_extra_nodes()

    # ------------------------------------------------------------------ #
    def on_views(self, non_preemptive, preemptive) -> None:
        super().on_views(non_preemptive, preemptive)
        if not self._submitted:
            self._submit_initial()
            return
        self._adapt_extra()

    def _submit_initial(self) -> None:
        self._submitted = True
        self.min_request = self.submit(
            node_count=self.min_nodes,
            duration=self.duration,
            rtype=RequestType.NON_PREEMPTIBLE,
        )
        extra = self.extra_selector(self.preemptive_available_now())
        if extra > 0:
            self.extra_request = self.submit(
                node_count=extra,
                duration=self.duration,
                rtype=RequestType.PREEMPTIBLE,
                related_how=RelatedHow.COALLOC,
                related_to=self.min_request,
            )

    def _adapt_extra(self) -> None:
        """Track the preemptive view with the elastic part of the allocation."""
        if self.finished() or self.killed:
            return
        wanted = self.extra_selector(self.preemptive_available_now())
        self.extra_history.append((self.now, wanted))
        if self.extra_request is None or self.extra_request.finished():
            if wanted > 0 and self.min_request is not None and not self.min_request.finished():
                self.extra_request = self.submit(
                    node_count=wanted,
                    duration=self.duration,
                    rtype=RequestType.PREEMPTIBLE,
                    related_how=RelatedHow.COALLOC,
                    related_to=self.min_request,
                )
            return
        if not self.extra_request.started():
            if self.extra_request.node_count != wanted:
                old = self.extra_request
                self.extra_request = None
                self.done(old)
                if wanted > 0:
                    self.extra_request = self.submit(
                        node_count=wanted,
                        duration=self.duration,
                        rtype=RequestType.PREEMPTIBLE,
                        related_how=RelatedHow.COALLOC,
                        related_to=self.min_request,
                    )
            return
        held = len(self.extra_request.node_ids)
        if wanted != held:
            self.extra_request = self.spontaneous_update(
                self.extra_request, wanted, duration=self.duration
            )

    def on_start(self, request: Request, node_ids: FrozenSet[NodeId]) -> None:
        if request is self.min_request:
            self.start_time = self.now
            self.rms.simulator.schedule(self.duration, self._complete)
        if request.rtype is RequestType.PREEMPTIBLE:
            self.extra_request = request

    def _complete(self) -> None:
        if self.finished() or self.killed:
            return
        for request in (self.extra_request, self.min_request):
            if request is not None and not request.finished():
                self.done(request)
        self.finish()
