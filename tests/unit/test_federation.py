"""Unit tests of the Federation, MetaScheduler and routing policies."""
from __future__ import annotations

import pytest

from repro.apps.rigid import RigidApplication
from repro.federation import (
    ClusterSpec,
    ClusterState,
    Federation,
    FederationSpec,
    RoutingRequest,
    locality_group,
    make_routing,
    routing_names,
)
from repro.sim import Simulator


def states(*capacities, outstanding=None):
    outstanding = outstanding or [0] * len(capacities)
    return [
        ClusterState(
            name=f"c{i}",
            index=i,
            capacity=capacity,
            free_nodes=capacity,
            outstanding_nodes=outstanding[i],
            outstanding_apps=1 if outstanding[i] else 0,
        )
        for i, capacity in enumerate(capacities)
    ]


def req(app_id="app", nodes=1, group=""):
    return RoutingRequest(app_id=app_id, node_count=nodes, group=group)


class TestRoutingPolicies:
    def test_any_picks_first_fitting(self):
        policy = make_routing("any")
        assert policy.route(req(nodes=8), states(4, 16, 32)) == 1
        assert policy.route(req(nodes=1), states(4, 16, 32)) == 0
        # Nothing fits: fall back to the first cluster (fails loudly later).
        assert policy.route(req(nodes=99), states(4, 16, 32)) == 0

    def test_round_robin_cycles_and_skips_misfits(self):
        policy = make_routing("round-robin")
        sequence = [policy.route(req(nodes=8), states(4, 16, 32)) for _ in range(4)]
        assert sequence == [1, 2, 1, 2]  # c0 (4 nodes) never fits 8

    def test_least_loaded_balances_by_relative_load(self):
        policy = make_routing("least-loaded")
        # c0 half full, c1 empty -> c1 despite equal capacity.
        assert policy.route(req(nodes=4), states(16, 16, outstanding=[8, 0])) == 1
        # Load is relative: 8/32 < 4/8.
        assert policy.route(req(nodes=4), states(8, 32, outstanding=[4, 8])) == 1

    def test_least_loaded_ties_break_towards_spec_order(self):
        policy = make_routing("least-loaded")
        assert policy.route(req(nodes=4), states(16, 16)) == 0

    def test_best_fit_picks_tightest_capacity(self):
        policy = make_routing("best-fit")
        assert policy.route(req(nodes=12), states(64, 16, 32)) == 1
        # Nothing fits: fall back to the largest cluster.
        assert policy.route(req(nodes=100), states(64, 16, 32)) == 0

    def test_random_is_deterministic_per_seed_and_app(self):
        one = make_routing("random", seed=5)
        two = make_routing("random", seed=5)
        choices_one = [one.route(req(app_id=f"a{i}"), states(8, 8, 8)) for i in range(20)]
        choices_two = [two.route(req(app_id=f"a{i}"), states(8, 8, 8)) for i in range(20)]
        assert choices_one == choices_two
        assert len(set(choices_one)) > 1  # actually spreads
        other_seed = make_routing("random", seed=6)
        assert choices_one != [
            other_seed.route(req(app_id=f"a{i}"), states(8, 8, 8)) for i in range(20)
        ]

    def test_affinity_pins_follow_ups_to_home(self):
        policy = make_routing("affinity")
        first = policy.route(req(app_id="j1", nodes=2, group="u1"), states(8, 8))
        # Load the other cluster heavily; the group still goes home.
        loaded = states(8, 8, outstanding=[16, 0] if first == 0 else [0, 16])
        assert policy.route(req(app_id="j2", nodes=2, group="u1"), loaded) == first

    def test_affinity_rehomes_when_home_cannot_fit(self):
        policy = make_routing("affinity")
        assert policy.route(req(app_id="j1", nodes=2, group="u"), states(4, 64)) == 0
        assert policy.route(req(app_id="j2", nodes=32, group="u"), states(4, 64)) == 1
        # The group's home moved to the big cluster.
        assert policy.route(req(app_id="j3", nodes=2, group="u"), states(4, 64)) == 1

    def test_fresh_instances_per_lookup(self):
        one, two = make_routing("round-robin"), make_routing("round-robin")
        one.route(req(nodes=1), states(8, 8))
        assert two.route(req(nodes=1), states(8, 8)) == 0  # no leaked counter

    def test_unknown_routing(self):
        with pytest.raises(KeyError, match="unknown routing policy"):
            make_routing("warp")


class TestLocalityGroup:
    def test_deterministic_and_bounded(self):
        groups = {locality_group(f"job{i}") for i in range(100)}
        assert groups <= {f"group{g}" for g in range(8)}
        assert len(groups) > 1
        assert locality_group("job1") == locality_group("job1")

    def test_rejects_non_positive_group_count(self):
        with pytest.raises(ValueError):
            locality_group("j", groups=0)


def two_cluster_federation(routing="round-robin", nodes=(8, 8)):
    spec = FederationSpec(
        clusters=tuple(
            ClusterSpec(name=f"c{i}", nodes=n) for i, n in enumerate(nodes)
        ),
        routing=routing,
    )
    simulator = Simulator()
    return Federation(spec, simulator), simulator


class TestFederation:
    def test_rejects_unresolved_spec(self):
        spec = FederationSpec(clusters=(ClusterSpec(name="c"),))
        with pytest.raises(ValueError, match="derived sizes"):
            Federation(spec, Simulator())

    def test_members_own_isolated_rms_instances(self):
        fed, _sim = two_cluster_federation()
        assert [m.name for m in fed.members] == ["c0", "c1"]
        assert fed.total_nodes() == 16
        assert fed.members[0].rms is not fed.members[1].rms
        assert fed.members[0].platform.default_cluster_id() == "c0"

    def test_submit_repoints_cluster_id_and_connects(self):
        fed, sim = two_cluster_federation()
        apps = [RigidApplication(f"job{i}", node_count=2, duration=5.0) for i in range(4)]
        for app in apps:
            fed.submit(app, node_count=2)
        assert [a.cluster_id for a in apps] == ["c0", "c1", "c0", "c1"]
        sim.run()
        assert all(a.finished() for a in apps)
        assert fed.routed_counts() == {"c0": 2, "c1": 2}

    def test_per_cluster_policy_overrides_default(self):
        spec = FederationSpec(
            clusters=(
                ClusterSpec(name="a", nodes=8, policy="easy"),
                ClusterSpec(name="b", nodes=8),
            )
        )
        fed = Federation(spec, Simulator(), default_policy="sjf")
        assert fed.member("a").rms.policy.name == "easy"
        assert fed.member("b").rms.policy.name == "sjf"

    def test_member_lookup_error(self):
        fed, _sim = two_cluster_federation()
        with pytest.raises(KeyError, match="unknown federation member"):
            fed.member("nope")

    def test_outstanding_load_drains_as_apps_finish(self):
        fed, sim = two_cluster_federation(routing="least-loaded")
        first = RigidApplication("j1", node_count=4, duration=5.0)
        fed.submit(first, node_count=4)
        assert first.cluster_id == "c0"
        second = RigidApplication("j2", node_count=4, duration=5.0)
        fed.submit(second, node_count=4)
        assert second.cluster_id == "c1"  # c0 already committed
        sim.run()
        # Both finished; the next submission sees empty clusters again.
        third = RigidApplication("j3", node_count=4, duration=5.0)
        fed.submit(third, node_count=4)
        assert third.cluster_id == "c0"

    @pytest.mark.parametrize("routing", sorted(routing_names()))
    def test_every_routing_runs_a_small_workload(self, routing):
        fed, sim = two_cluster_federation(routing=routing, nodes=(8, 16))
        apps = [RigidApplication(f"job{i}", node_count=1 + i % 4, duration=10.0)
                for i in range(10)]
        for app in apps:
            fed.submit(app, node_count=app.node_count, group=locality_group(app.name))
        sim.run()
        assert all(a.finished() for a in apps)
        assert sum(fed.routed_counts().values()) == len(apps)
