"""Application behaviours: rigid, moldable, malleable, evolving, AMR and PSA."""
from .base import BaseApplication
from .rigid import RigidApplication
from .moldable import MoldableApplication
from .malleable import (
    MalleableApplication,
    identity_selector,
    power_of_two_selector,
)
from .evolving_predictable import EvolutionPhase, FullyPredictableEvolvingApplication
from .nea import AmrApplication, AmrStepRecord
from .psa import ParameterSweepApplication, PsaStatistics

__all__ = [
    "BaseApplication",
    "RigidApplication",
    "MoldableApplication",
    "MalleableApplication",
    "identity_selector",
    "power_of_two_selector",
    "EvolutionPhase",
    "FullyPredictableEvolvingApplication",
    "AmrApplication",
    "AmrStepRecord",
    "ParameterSweepApplication",
    "PsaStatistics",
]
