"""Unit tests of the trace transformation pipeline (repro.traces.transform)."""
from __future__ import annotations

import json

import pytest

from repro.core.errors import WorkloadError
from repro.traces import (
    ClampNodes,
    FilterJobs,
    LoadRescale,
    Pipeline,
    ShiftToZero,
    SwfJob,
    TimeWindow,
    Trace,
    TraceModel,
    transform_from_dict,
)


@pytest.fixture
def trace() -> Trace:
    return TraceModel().synthesize(60, seed=42)


def job(number: int, submit: float, nodes: int, runtime: float, status: int = 1) -> SwfJob:
    return SwfJob(
        job_number=number,
        submit_time=submit,
        run_time=runtime,
        req_procs=nodes,
        status=status,
    )


class TestFilterJobs:
    def test_bounds(self):
        trace = Trace(jobs=(job(1, 0, 4, 100), job(2, 10, 64, 100), job(3, 20, 4, 5)))
        out = FilterJobs(max_nodes=32, min_duration=50.0).apply(trace)
        assert [j.job_number for j in out.jobs] == [1]

    def test_statuses(self):
        trace = Trace(jobs=(job(1, 0, 4, 100, status=1), job(2, 1, 4, 100, status=5)))
        out = FilterJobs(statuses=(1,)).apply(trace)
        assert [j.job_number for j in out.jobs] == [1]

    def test_require_valid_drops_unrunnable(self):
        broken = SwfJob(job_number=9, submit_time=5.0)  # no size, no runtime
        trace = Trace(jobs=(job(1, 0, 4, 100), broken))
        out = FilterJobs().apply(trace)
        assert [j.job_number for j in out.jobs] == [1]

    def test_provenance_counts_dropped(self, trace):
        out = FilterJobs(min_nodes=1000).apply(trace)
        assert out.provenance[-1]["dropped"] == trace.job_count


class TestTimeWindow:
    def test_half_open_interval(self):
        trace = Trace(jobs=(job(1, 0, 1, 10), job(2, 50, 1, 10), job(3, 100, 1, 10)))
        out = TimeWindow(start=0, end=100).apply(trace)
        assert [j.job_number for j in out.jobs] == [1, 2]

    def test_open_end_serialises_as_none(self):
        step = TimeWindow(start=10).to_dict()
        assert step["end"] is None
        json.dumps(step)  # strict JSON
        assert transform_from_dict(step) == TimeWindow(start=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeWindow(start=5, end=5)


class TestLoadRescale:
    def test_preserves_job_count_and_work(self, trace):
        out = LoadRescale(factor=2.0).apply(trace)
        assert out.job_count == trace.job_count
        assert out.total_area() == pytest.approx(trace.total_area())

    def test_compresses_span(self, trace):
        out = LoadRescale(factor=2.0).apply(trace)
        assert out.span == pytest.approx(trace.span / 2.0)

    def test_factor_below_one_stretches(self, trace):
        out = LoadRescale(factor=0.5).apply(trace)
        assert out.span == pytest.approx(trace.span * 2.0)


class TestClampNodes:
    def test_never_exceeds_limit(self, trace):
        out = ClampNodes(max_nodes=8).apply(trace)
        assert all(j.node_count <= 8 for j in out.jobs)

    def test_updates_header(self, trace):
        out = ClampNodes(max_nodes=8).apply(trace)
        assert out.header.max_nodes == 8
        assert out.max_nodes == 8


class TestShiftToZero:
    def test_rebases_and_records_offset(self):
        trace = Trace(jobs=(job(1, 100, 1, 10), job(2, 130, 1, 10)))
        out = ShiftToZero().apply(trace)
        assert [j.submit_time for j in out.jobs] == [0.0, 30.0]
        assert out.provenance[-1]["shifted_by"] == 100.0


class TestPipeline:
    def test_applies_in_order_and_chains_provenance(self, trace):
        pipeline = Pipeline(
            (FilterJobs(), LoadRescale(factor=2.0), ClampNodes(max_nodes=16), ShiftToZero())
        )
        out = pipeline.apply(trace)
        kinds = [step["kind"] for step in out.provenance]
        assert kinds[-4:] == ["filter", "load_rescale", "clamp_nodes", "shift_to_zero"]

    def test_dict_round_trip(self):
        pipeline = Pipeline(
            (FilterJobs(min_nodes=2), TimeWindow(start=0, end=50), LoadRescale(factor=3.0))
        )
        assert Pipeline.from_dicts(pipeline.to_dicts()) == pipeline

    def test_provenance_steps_are_reloadable(self, trace):
        # A recorded provenance step doubles as a transform description.
        out = ShiftToZero().apply(FilterJobs().apply(trace))
        for step in out.provenance[1:]:
            transform_from_dict(step)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError, match="unknown trace transform"):
            transform_from_dict({"kind": "reverse"})

    def test_unknown_field_rejected(self):
        with pytest.raises(WorkloadError, match="does not understand"):
            transform_from_dict({"kind": "load_rescale", "factor": 2, "bogus": 1})
