"""Unit tests of metric collection and text reporting."""
from __future__ import annotations

import numpy as np
import pytest

from repro.apps import AmrApplication, ParameterSweepApplication
from repro.cluster import Platform
from repro.core import CooRMv2
from repro.metrics import (
    SimulationMetrics,
    format_percent,
    format_series,
    format_table,
    median_summary,
    summarize_runs,
)
from repro.models import WorkingSetEvolution
from repro.sim import Simulator


class TestReportFormatting:
    def test_format_percent(self):
        assert format_percent(12.345) == "12.3%"
        assert format_percent(12.345, digits=2) == "12.35%"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [("a", 1), ("long-name", 123.5)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # All rows have the same width.
        assert len({len(line) for line in lines}) == 1

    def test_format_series(self):
        out = format_series("x", [1, 2], {"y1": [10, 20], "y2": [0.5, 0.25]})
        assert "y1" in out and "y2" in out
        assert "0.5" in out

    def test_format_table_handles_missing_cells(self):
        out = format_series("x", [1, 2, 3], {"y": [10]})
        assert out.count("\n") == 4


class TestSimulationMetrics:
    def test_collect_from_a_small_scenario(self):
        evolution = WorkingSetEvolution(np.linspace(5_000.0, 100_000.0, 10))
        sim = Simulator()
        rms = CooRMv2(Platform.single_cluster(64), sim, rescheduling_interval=1.0)
        amr = AmrApplication("amr", evolution, preallocation_nodes=40)
        psa = ParameterSweepApplication("psa", task_duration=30.0)
        amr.on_finished = lambda _app: psa.shutdown()
        amr.connect(rms)
        psa.connect(rms)
        sim.run()

        metrics = SimulationMetrics.collect(rms, amr=amr, psas=[psa])
        assert metrics.horizon == pytest.approx(amr.computation_time())
        assert metrics.capacity_node_seconds == pytest.approx(64 * metrics.horizon)
        assert metrics.amr_used_node_seconds > 0
        assert metrics.total_allocated_node_seconds >= metrics.amr_used_node_seconds
        assert 0.0 <= metrics.used_resources_percent <= 100.0
        assert metrics.psa_waste_percent >= 0.0
        assert metrics.amr_end_time == pytest.approx(amr.computation_time())

    def test_explicit_horizon(self):
        sim = Simulator()
        rms = CooRMv2(Platform.single_cluster(4), sim)
        metrics = SimulationMetrics.collect(rms, horizon=100.0)
        assert metrics.capacity_node_seconds == pytest.approx(400.0)
        assert metrics.used_resources_percent == 0.0

    def test_zero_capacity_percentages(self):
        metrics = SimulationMetrics(
            horizon=0.0,
            capacity_node_seconds=0.0,
            amr_used_node_seconds=0.0,
            amr_end_time=0.0,
            psa_waste_node_seconds=0.0,
            psa_completed_node_seconds=0.0,
            total_allocated_node_seconds=0.0,
        )
        assert metrics.used_resources_percent == 0.0
        assert metrics.psa_waste_percent == 0.0


class TestSummarizeRuns:
    def make(self, waste):
        return SimulationMetrics(
            horizon=100.0,
            capacity_node_seconds=1000.0,
            amr_used_node_seconds=500.0,
            amr_end_time=100.0,
            psa_waste_node_seconds=waste,
            psa_completed_node_seconds=100.0,
            total_allocated_node_seconds=800.0,
        )

    def test_median_of_odd_count(self):
        summary = summarize_runs([self.make(w) for w in (10.0, 30.0, 20.0)])
        assert summary["psa_waste_node_seconds"] == pytest.approx(20.0)

    def test_median_of_even_count(self):
        summary = summarize_runs([self.make(w) for w in (10.0, 30.0)])
        assert summary["psa_waste_node_seconds"] == pytest.approx(20.0)

    def test_empty_input(self):
        assert summarize_runs([]) == {}

    def make_unfinished(self, waste):
        """An unfinished AMR: NaN end time, zero-length (empty) capacity."""
        return SimulationMetrics(
            horizon=0.0,
            capacity_node_seconds=0.0,
            amr_used_node_seconds=0.0,
            amr_end_time=float("nan"),
            psa_waste_node_seconds=waste,
            psa_completed_node_seconds=0.0,
            total_allocated_node_seconds=0.0,
        )

    def test_nan_samples_dropped_per_key(self):
        runs = [self.make(10.0), self.make_unfinished(30.0), self.make(20.0)]
        summary = summarize_runs(runs)
        # The NaN end time is dropped for amr_end_time only; the run's
        # finite waste sample still participates in the waste median.
        assert summary["amr_end_time"] == pytest.approx(100.0)
        assert summary["psa_waste_node_seconds"] == pytest.approx(20.0)

    def test_key_with_no_finite_sample_is_omitted(self):
        summary = summarize_runs([self.make_unfinished(5.0)])
        assert "amr_end_time" not in summary
        assert summary["psa_waste_node_seconds"] == pytest.approx(5.0)

    def test_summary_is_nan_free(self):
        runs = [self.make(10.0), self.make_unfinished(30.0)]
        assert all(np.isfinite(v) for v in summarize_runs(runs).values())


class TestZeroLengthWindow:
    def make(self, capacity):
        return SimulationMetrics(
            horizon=0.0,
            capacity_node_seconds=capacity,
            amr_used_node_seconds=0.0,
            amr_end_time=0.0,
            psa_waste_node_seconds=50.0,
            psa_completed_node_seconds=0.0,
            total_allocated_node_seconds=100.0,
        )

    @pytest.mark.parametrize("capacity", [0.0, -1.0, float("nan"), float("inf")])
    def test_degenerate_capacity_yields_zero_percent(self, capacity):
        metrics = self.make(capacity)
        assert metrics.psa_waste_percent == 0.0
        assert metrics.used_resources_percent == 0.0


class TestMedianSummary:
    def test_empty_input(self):
        assert median_summary([]) == {}

    def test_skips_non_numeric_and_non_finite(self):
        records = [
            {"x": 1.0, "label": "a", "flag": True, "bad": float("nan")},
            {"x": 3.0, "label": "b", "flag": False, "bad": float("inf")},
        ]
        summary = median_summary(records)
        assert summary == {"x": 2.0}

    def test_missing_keys_skipped_per_record(self):
        summary = median_summary([{"x": 1.0}, {"x": 3.0, "y": 7.0}])
        assert summary == {"x": 2.0, "y": 7.0}
