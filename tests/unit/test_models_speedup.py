"""Unit tests of the AMR speed-up model (paper Section 2.2)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import GIB_IN_MIB, PAPER_SPEEDUP_MODEL, SpeedupModel, TIB_IN_MIB


class TestModelDefinition:
    def test_paper_constants(self):
        m = PAPER_SPEEDUP_MODEL
        assert m.a == pytest.approx(7.26e-3)
        assert m.b == pytest.approx(1.23e-4)
        assert m.c == pytest.approx(1.13e-6)
        assert m.d == pytest.approx(1.38)
        assert m.s_max_mib == pytest.approx(3.16 * TIB_IN_MIB)

    def test_formula(self):
        m = SpeedupModel(a=1.0, b=2.0, c=3.0, d=4.0)
        # t(n, S) = A*S/n + B*n + C*S + D
        assert m.step_duration(2, 10) == pytest.approx(1.0 * 10 / 2 + 2.0 * 2 + 3.0 * 10 + 4.0)

    def test_invalid_constants_rejected(self):
        with pytest.raises(ValueError):
            SpeedupModel(a=-1.0)
        with pytest.raises(ValueError):
            SpeedupModel(s_max_mib=0.0)

    def test_invalid_arguments_rejected(self):
        m = PAPER_SPEEDUP_MODEL
        with pytest.raises(ValueError):
            m.step_duration(0, 100)
        with pytest.raises(ValueError):
            m.step_duration(4, -1)
        with pytest.raises(ValueError):
            m.efficiency(0, 100)
        with pytest.raises(ValueError):
            m.nodes_for_efficiency(100, 0.0)

    def test_array_form_matches_scalar(self):
        m = PAPER_SPEEDUP_MODEL
        nodes = np.array([1, 16, 256])
        got = m.step_duration_array(nodes, 1e6)
        expected = [m.step_duration(int(n), 1e6) for n in nodes]
        assert np.allclose(got, expected)


class TestScalingBehaviour:
    def test_strong_scaling_then_overhead(self):
        m = PAPER_SPEEDUP_MODEL
        size = 784 * GIB_IN_MIB
        # Adding nodes helps at first...
        assert m.step_duration(16, size) < m.step_duration(1, size)
        assert m.step_duration(256, size) < m.step_duration(16, size)
        # ...but far beyond the optimum the overhead term dominates.
        optimum = m.optimal_nodes(size)
        assert m.step_duration(int(optimum * 20), size) > m.step_duration(int(optimum), size)

    def test_larger_data_takes_longer(self):
        m = PAPER_SPEEDUP_MODEL
        for nodes in (1, 64, 4096):
            assert m.step_duration(nodes, 3136 * GIB_IN_MIB) > m.step_duration(nodes, 12 * GIB_IN_MIB)

    def test_efficiency_decreases_with_node_count(self):
        m = PAPER_SPEEDUP_MODEL
        size = 196 * GIB_IN_MIB
        effs = [m.efficiency(n, size) for n in (1, 2, 8, 64, 512)]
        assert all(e1 >= e2 for e1, e2 in zip(effs, effs[1:]))
        assert m.efficiency(1, size) == pytest.approx(1.0)

    def test_speedup_at_one_node_is_one(self):
        assert PAPER_SPEEDUP_MODEL.speedup(1, 1e6) == pytest.approx(1.0)

    def test_consumed_area(self):
        m = PAPER_SPEEDUP_MODEL
        assert m.consumed_area(10, 1e5) == pytest.approx(10 * m.step_duration(10, 1e5))


class TestNodesForEfficiency:
    def test_target_is_met_but_not_exceeded(self):
        m = PAPER_SPEEDUP_MODEL
        size = m.s_max_mib
        n = m.nodes_for_efficiency(size, 0.75)
        assert m.efficiency(n, size) >= 0.75
        assert m.efficiency(n + 1, size) < 0.75

    def test_peak_size_needs_about_1500_nodes_at_75_percent(self):
        # Sanity anchor: with the paper's constants the 3.16 TiB mesh runs at
        # 75 % efficiency on roughly 1.5k nodes, consistent with the paper's
        # cluster of 1400 x overcommit nodes.
        n = PAPER_SPEEDUP_MODEL.nodes_for_efficiency(3.16 * TIB_IN_MIB, 0.75)
        assert 1200 <= n <= 1800

    def test_small_data_runs_on_one_node(self):
        assert PAPER_SPEEDUP_MODEL.nodes_for_efficiency(0.0, 0.75) == 1

    def test_higher_target_means_fewer_nodes(self):
        m = PAPER_SPEEDUP_MODEL
        size = 784 * GIB_IN_MIB
        assert m.nodes_for_efficiency(size, 0.9) < m.nodes_for_efficiency(size, 0.5)

    def test_duration_series_helper(self):
        series = PAPER_SPEEDUP_MODEL.duration_series([1, 2, 4], 1e5)
        assert [n for n, _ in series] == [1, 2, 4]
        assert series[0][1] > series[2][1]


class TestMemoization:
    def test_step_duration_is_cached(self):
        model = SpeedupModel()
        SpeedupModel.clear_caches()
        first = model.step_duration(64, 1e5)
        before = SpeedupModel.cache_stats()["step_duration"]
        second = model.step_duration(64, 1e5)
        after = SpeedupModel.cache_stats()["step_duration"]
        assert first == second
        assert after[0] == before[0] + 1  # one more cache hit

    def test_nodes_for_efficiency_is_cached(self):
        model = SpeedupModel()
        SpeedupModel.clear_caches()
        first = model.nodes_for_efficiency(1e6, 0.75)
        second = model.nodes_for_efficiency(1e6, 0.75)
        after = SpeedupModel.cache_stats()["nodes_for_efficiency"]
        assert first == second
        assert after[0] >= 1

    def test_cache_distinguishes_models(self):
        a = SpeedupModel()
        b = SpeedupModel(a=2 * a.a)
        assert a.step_duration(8, 1e5) != b.step_duration(8, 1e5)

    def test_validation_still_raises(self):
        with pytest.raises(ValueError):
            SpeedupModel().step_duration(0, 1e5)
        with pytest.raises(ValueError):
            SpeedupModel().nodes_for_efficiency(1e5, 0.0)

    def test_int_and_float_arguments_agree(self):
        model = SpeedupModel()
        assert model.step_duration(8, 1e5) == model.step_duration(8.0, 1e5)
