"""Golden regression tests: the figure scenarios must reproduce their fixtures.

Every fixture under ``tests/data/golden/`` pins the metrics one figure
scenario produced at the campaign's canonical seed when the fixture was
generated (see ``generate_golden.py``).  These tests re-run the scenarios and
compare metric-by-metric with explicit tolerances, so refactors of the
scheduling path cannot silently drift the paper outputs.

The simulations are fully deterministic, so the tolerances only absorb
floating-point noise across platforms and library versions -- any visible
change is a real behaviour change and must come with regenerated fixtures and
an explanation in the commit that carries them.
"""
from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from tests.regression.generate_golden import GOLDEN_DIR, GOLDEN_SCENARIOS, golden_record

#: Relative tolerance for metric comparison.  The runs are deterministic;
#: this only absorbs cross-platform floating-point differences.
REL_TOL = 1e-9
ABS_TOL = 1e-9


def load_fixture(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    assert path.is_file(), (
        f"missing golden fixture {path}; run "
        "'PYTHONPATH=src python tests/regression/generate_golden.py'"
    )
    return json.loads(path.read_text(encoding="utf-8"))


def assert_metric_equal(name: str, key: str, expected, actual) -> None:
    __tracebackhide__ = True
    if expected is None or actual is None:
        assert expected == actual, (
            f"{name}: metric {key!r} changed: expected {expected!r}, got {actual!r}"
        )
    elif isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        assert math.isclose(actual, expected, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
            f"{name}: metric {key!r} drifted: expected {expected!r}, got {actual!r}"
        )
    else:
        assert expected == actual, (
            f"{name}: metric {key!r} changed: expected {expected!r}, got {actual!r}"
        )


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_figure_scenario_matches_golden_fixture(name: str) -> None:
    fixture = load_fixture(name)
    fresh = golden_record(name)

    assert fresh["seed"] == fixture["seed"], (
        f"{name}: seed derivation changed "
        f"({fixture['seed']} -> {fresh['seed']}); campaign replays are broken"
    )
    expected_metrics = fixture["metrics"]
    actual_metrics = fresh["metrics"]
    missing = sorted(set(expected_metrics) - set(actual_metrics))
    added = sorted(set(actual_metrics) - set(expected_metrics))
    assert not missing, f"{name}: metrics disappeared: {missing}"
    assert not added, f"{name}: unexpected new metrics: {added}"
    for key in sorted(expected_metrics):
        assert_metric_equal(name, key, expected_metrics[key], actual_metrics[key])


def test_every_fixture_has_a_scenario() -> None:
    """Stale fixtures (for deleted scenarios) must be removed, not ignored."""
    fixture_names = {p.stem for p in Path(GOLDEN_DIR).glob("*.json")}
    assert fixture_names == set(GOLDEN_SCENARIOS)
