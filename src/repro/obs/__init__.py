"""Observability: deterministic tracing, metrics and wall-clock profiling.

The three pillars, all **zero-cost when disabled** (instrumented code takes
its plain path unless an instrument is activated with
:func:`~repro.obs.hooks.observe`):

* :class:`EventTracer` -- sim-time structured tracing of engine event
  dispatch, scheduler decisions (ordering, fits, reservations, sharing) and
  federation routing; exports deterministically to JSONL and Chrome
  ``trace_event`` JSON (``chrome://tracing`` / Perfetto).
* :class:`MetricsRegistry` -- deterministic counters/gauges/histograms per
  run, flowing into campaign result rows and ``campaign report``.
* :class:`PhaseProfiler` -- wall-clock phase timers (trace ingest,
  scheduling, event dispatch, store writes) feeding campaign ``meta.json``
  and the ``BENCH_*.json`` perf snapshots.

``python -m repro obs`` (see :mod:`repro.obs.cli`) fronts all three:
``summarize`` / ``export`` / ``diff`` / ``bench``.  :func:`logging_setup`
is the shared CLI logging configuration every command group uses.
"""
from .hooks import METRICS, PROFILER, TRACER, observation_enabled, observe
from .logsetup import get_logger, logging_setup
from .metrics import Histogram, MetricsRegistry
from .profiler import PhaseProfiler
from .tracer import EventTracer, TraceEvent, diff_events, load_jsonl

__all__ = [
    "TRACER",
    "METRICS",
    "PROFILER",
    "observation_enabled",
    "observe",
    "EventTracer",
    "TraceEvent",
    "diff_events",
    "load_jsonl",
    "MetricsRegistry",
    "Histogram",
    "PhaseProfiler",
    "logging_setup",
    "get_logger",
]
