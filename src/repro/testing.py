"""Shared test builders for schedulers, requests and RMS environments.

The unit, property and regression suites all need the same small factories:
a request of each type, an application's request sets, a preemptible request
set, and a wired (simulator, platform, RMS) triple.  They used to be
copy-pasted across ``tests/unit/test_scheduler.py``, ``test_rms.py`` and
``test_eqschedule.py``; this module is the single home, re-exported as
fixtures by ``tests/conftest.py`` and importable directly from benchmarks
and examples.
"""
from __future__ import annotations

import math
from typing import Optional, Tuple

from .cluster.platform import Platform
from .core.request import Request
from .core.request_set import ApplicationRequests, RequestSet
from .core.rms import CooRMv2
from .core.types import RelatedHow, RequestType
from .sim.engine import Simulator

__all__ = [
    "pa",
    "np_",
    "p_",
    "app_with",
    "p_set",
    "make_env",
    "RecordingApp",
]


def pa(n: int, duration: float = math.inf, cluster: str = "c0") -> Request:
    """A pre-allocation request."""
    return Request(cluster, n, duration, RequestType.PREALLOCATION)


def np_(
    n: int,
    duration: float = math.inf,
    cluster: str = "c0",
    related_how: RelatedHow = RelatedHow.FREE,
    related_to: Optional[Request] = None,
) -> Request:
    """A non-preemptible request."""
    return Request(
        cluster, n, duration, RequestType.NON_PREEMPTIBLE, related_how, related_to
    )


def p_(
    n: int,
    duration: float = math.inf,
    cluster: str = "c0",
    related_how: RelatedHow = RelatedHow.FREE,
    related_to: Optional[Request] = None,
) -> Request:
    """A preemptible request."""
    return Request(
        cluster, n, duration, RequestType.PREEMPTIBLE, related_how, related_to
    )


def app_with(*requests: Request, app_id: str = "app") -> ApplicationRequests:
    """An application's request sets pre-filled with *requests*."""
    app = ApplicationRequests(app_id)
    for r in requests:
        app.add(r)
    return app


def p_set(*requests: Request) -> RequestSet:
    """A preemptible request set holding *requests*."""
    rs = RequestSet(RequestType.PREEMPTIBLE)
    for r in requests:
        rs.add(r)
    return rs


def make_env(
    nodes: int = 16, interval: float = 1.0, **rms_kwargs
) -> Tuple[Simulator, Platform, CooRMv2]:
    """A wired (simulator, platform, RMS) triple on one homogeneous cluster.

    Extra keyword arguments (``strict_equipartition``, ``policy``,
    ``kill_protocol_violators``, ...) forward to :class:`CooRMv2`.
    """
    simulator = Simulator()
    platform = Platform.single_cluster(nodes)
    rms = CooRMv2(
        platform, simulator, rescheduling_interval=interval, **rms_kwargs
    )
    return simulator, platform, rms


class RecordingApp:
    """A minimal application that records every RMS callback."""

    def __init__(self, name: str):
        self.name = name
        self.views = []
        self.started = []
        self.killed_reason = None

    def on_views(self, non_preemptive, preemptive):
        self.views.append((non_preemptive, preemptive))

    def on_start(self, request, node_ids):
        self.started.append((request, node_ids))

    def on_killed(self, reason):
        self.killed_reason = reason
