"""Golden regression of the deterministic trace export.

The fixture under ``tests/data/golden_obs/`` pins the byte-exact JSONL
trace of the fig9 scenario at its canonical campaign seed (see
``generate_obs_golden.py``).  A drifting digest means the engine's event
order, the scheduler's decisions or the instrumentation itself changed --
all of which invalidate recorded traces and must be explicit.
"""
from __future__ import annotations

import json

import pytest

from tests.regression.generate_obs_golden import (
    GOLDEN_OBS_DIR,
    TRACED_SCENARIO,
    golden_trace_digest,
)


def load_fixture() -> dict:
    path = GOLDEN_OBS_DIR / f"{TRACED_SCENARIO}_trace.json"
    assert path.is_file(), (
        f"missing golden trace fixture {path}; run "
        "'PYTHONPATH=src python tests/regression/generate_obs_golden.py'"
    )
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def fresh() -> dict:
    """One traced scenario run shared by every assertion in this module."""
    return golden_trace_digest()


def _dispatch_labels(head_lines) -> list:
    labels = []
    for line in head_lines:
        event = json.loads(line)
        if event.get("cat") == "engine" and event.get("name") == "dispatch":
            labels.append(event["args"]["callback"])
    return labels


def test_trace_export_matches_golden_digest(fresh: dict) -> None:
    fixture = load_fixture()

    assert fresh["seed"] == fixture["seed"], "seed derivation changed"
    assert fresh["event_count"] == fixture["event_count"]
    assert fresh["count_by"] == fixture["count_by"], (
        "per-event-type counts drifted; the instrumentation or the "
        "simulation behaviour changed"
    )
    assert fresh["head"] == fixture["head"], "leading trace events changed"
    assert fresh["sha256"] == fixture["sha256"], (
        "trace bytes drifted despite identical counts -- event ordering or "
        "argument values changed"
    )


def test_dispatch_labels_match_golden(fresh: dict) -> None:
    """Memoized callback labels must equal the labels pinned in the golden.

    The label cache keys on code objects; if it ever returned a stale or
    identity-dependent string, the dispatch events would drift here first.
    """
    fixture = load_fixture()
    expected = _dispatch_labels(fixture["head"])
    actual = _dispatch_labels(fresh["head"])
    assert actual == expected, "engine dispatch callback labels drifted"
