"""Unit tests of the cluster substrate (nodes, clusters, platform, energy)."""
from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    EnergyModel,
    Node,
    NodeState,
    Platform,
    energy_report,
)
from repro.core import AllocationError


class TestNode:
    def test_allocate_and_release(self):
        node = Node(0, "c")
        node.allocate("app", 1, now=10.0)
        assert node.state is NodeState.ALLOCATED
        assert node.owner_app == "app"
        node.release(now=25.0)
        assert node.is_free()
        assert node.busy_seconds == pytest.approx(15.0)

    def test_double_allocation_rejected(self):
        node = Node(0, "c")
        node.allocate("app", 1, now=0.0)
        with pytest.raises(AllocationError):
            node.allocate("other", 2, now=1.0)

    def test_release_free_node_rejected(self):
        with pytest.raises(AllocationError):
            Node(0, "c").release(now=0.0)

    def test_power_cycle(self):
        node = Node(0, "c")
        node.power_down(now=0.0)
        assert node.state is NodeState.POWERED_DOWN
        node.power_up(now=5.0)
        assert node.is_free()

    def test_cannot_power_down_allocated_node(self):
        node = Node(0, "c")
        node.allocate("app", 1, now=0.0)
        with pytest.raises(AllocationError):
            node.power_down(now=1.0)


class TestCluster:
    def test_allocation_prefers_lowest_ids(self):
        cluster = Cluster("c", 8)
        ids = cluster.allocate(3, "app", 1, now=0.0)
        assert ids == frozenset({0, 1, 2})
        assert cluster.free_count() == 5
        assert cluster.allocated_to("app") == [0, 1, 2]

    def test_preferred_nodes_are_used_first(self):
        cluster = Cluster("c", 8)
        ids = cluster.allocate(2, "app", 1, now=0.0, preferred=[5, 6])
        assert ids == frozenset({5, 6})

    def test_insufficient_nodes_raise(self):
        cluster = Cluster("c", 4)
        cluster.allocate(3, "a", 1, now=0.0)
        with pytest.raises(AllocationError):
            cluster.allocate(2, "b", 2, now=0.0)

    def test_release_and_release_all(self):
        cluster = Cluster("c", 4)
        cluster.allocate(2, "a", 1, now=0.0)
        cluster.allocate(2, "b", 2, now=0.0)
        cluster.release([0], now=1.0)
        assert cluster.free_count() == 1
        released = cluster.release_all_of("b", now=2.0)
        assert len(released) == 2
        assert cluster.free_count() == 3

    def test_release_unknown_node_rejected(self):
        with pytest.raises(AllocationError):
            Cluster("c", 2).release([7], now=0.0)

    def test_transfer_relabels_owner_request(self):
        cluster = Cluster("c", 4)
        ids = cluster.allocate(2, "a", 1, now=0.0)
        cluster.transfer(ids, "a", 99, now=5.0)
        for nid in ids:
            assert cluster.nodes[nid].owner_request == 99
        with pytest.raises(AllocationError):
            cluster.transfer(ids, "someone-else", 100, now=6.0)

    def test_busy_node_seconds(self):
        cluster = Cluster("c", 4)
        cluster.allocate(2, "a", 1, now=0.0)
        assert cluster.busy_node_seconds(now=10.0) == pytest.approx(20.0)

    def test_zero_node_cluster_rejected(self):
        with pytest.raises(AllocationError):
            Cluster("c", 0)


class TestPlatform:
    def test_single_cluster_factory(self):
        platform = Platform.single_cluster(128)
        assert platform.total_nodes() == 128
        assert platform.capacity() == {"cluster0": 128}
        assert platform.default_cluster_id() == "cluster0"

    def test_multi_cluster(self):
        platform = Platform({"a": 4, "b": 8})
        assert platform.total_nodes() == 12
        assert platform.cluster("b").node_count == 8
        with pytest.raises(AllocationError):
            platform.cluster("missing")

    def test_requires_one_cluster(self):
        with pytest.raises(AllocationError):
            Platform({})

    def test_release_all_of_spans_clusters(self):
        platform = Platform({"a": 4, "b": 4})
        platform.allocate("a", 2, "app", 1, now=0.0)
        platform.allocate("b", 3, "app", 2, now=0.0)
        released = platform.release_all_of("app", now=1.0)
        assert len(released["a"]) == 2 and len(released["b"]) == 3
        assert platform.busy_node_seconds(now=1.0) == pytest.approx(5.0)


class TestEnergy:
    def test_report_balances(self):
        report = energy_report(
            total_nodes=10,
            horizon_seconds=100.0,
            busy_node_seconds=600.0,
            sleepable_node_seconds=200.0,
            model=EnergyModel(busy_watts=200, idle_watts=100, sleep_watts=10),
        )
        assert report.busy_joules == pytest.approx(600 * 200)
        assert report.idle_joules == pytest.approx(200 * 100 + 200 * 10)
        assert report.saved_joules == pytest.approx(200 * 90)
        assert report.total_kwh == pytest.approx(report.total_joules / 3.6e6)

    def test_busy_time_clamped_to_capacity(self):
        report = energy_report(10, 10.0, busy_node_seconds=1e9)
        assert report.idle_joules == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            energy_report(10, -1.0, 0.0)
        with pytest.raises(ValueError):
            EnergyModel(busy_watts=-5)
