"""Property-based tests of the workload-trace subsystem.

Three families of invariants, as demanded by the subsystem's contract:

* **round-trip** -- ``loads_swf(dumps_swf(t)) == t`` for arbitrary traces;
* **transform invariants** -- load rescaling preserves the job count (and
  the total work), node clamping never exceeds the requested bound;
* **determinism** -- model synthesis is a pure function of (model, seed)
  even when the seed is produced by :func:`repro.sim.randomness.derive_seed`.
"""
from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.randomness import derive_seed
from repro.traces import (
    ClampNodes,
    LoadRescale,
    PoissonArrivals,
    LogUniformNodes,
    ShiftToZero,
    SwfHeader,
    SwfJob,
    Trace,
    TraceModel,
    convert_trace,
    dumps_swf,
    loads_swf,
)

# SWF stores times/sizes as decimals; three fractional digits round-trip
# through the textual form exactly (they are dumped via repr).
_times = st.decimals(
    min_value=0, max_value=10_000_000, places=3, allow_nan=False
).map(float)
_maybe_times = st.one_of(st.just(-1.0), _times)
_procs = st.one_of(st.just(-1), st.integers(min_value=1, max_value=4096))
_small_ints = st.integers(min_value=-1, max_value=50)


@st.composite
def swf_jobs(draw, job_number: int = 0) -> SwfJob:
    return SwfJob(
        job_number=job_number or draw(st.integers(min_value=1, max_value=10**6)),
        submit_time=draw(_times),
        wait_time=draw(_maybe_times),
        run_time=draw(_maybe_times),
        used_procs=draw(_procs),
        avg_cpu_time=draw(_maybe_times),
        used_memory=draw(_maybe_times),
        req_procs=draw(_procs),
        req_time=draw(_maybe_times),
        req_memory=draw(_maybe_times),
        status=draw(st.sampled_from([-1, 0, 1, 5])),
        user_id=draw(_small_ints),
        group_id=draw(_small_ints),
        executable=draw(_small_ints),
        queue=draw(_small_ints),
        partition=draw(_small_ints),
        preceding_job=draw(_small_ints),
        think_time=draw(_maybe_times),
    )


@st.composite
def traces(draw) -> Trace:
    jobs = tuple(
        draw(swf_jobs(job_number=i + 1))
        for i in range(draw(st.integers(min_value=0, max_value=12)))
    )
    directives = draw(
        st.dictionaries(
            st.sampled_from(["MaxNodes", "MaxProcs", "UnixStartTime", "Version"]),
            st.integers(min_value=0, max_value=10**6).map(str),
            max_size=3,
        )
    )
    comments = draw(
        st.lists(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("L", "N"), whitelist_characters=" "
                ),
                min_size=1,
                max_size=30,
            ).map(str.strip).filter(lambda s: s and ":" not in s),
            max_size=2,
        )
    )
    header = SwfHeader(directives=directives, comments=tuple(comments))
    return Trace(header=header, jobs=jobs)


@settings(max_examples=80, deadline=None)
@given(traces())
def test_swf_round_trip(trace):
    assert loads_swf(dumps_swf(trace)) == trace


@settings(max_examples=60, deadline=None)
@given(traces(), st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
def test_rescale_preserves_job_count_and_work(trace, factor):
    rescaled = LoadRescale(factor=factor).apply(trace)
    assert rescaled.job_count == trace.job_count
    assert abs(rescaled.total_area() - trace.total_area()) <= 1e-6 * max(
        1.0, trace.total_area()
    )


@settings(max_examples=60, deadline=None)
@given(traces(), st.integers(min_value=1, max_value=256))
def test_clamp_never_exceeds_max_nodes(trace, max_nodes):
    clamped = ClampNodes(max_nodes=max_nodes).apply(trace)
    assert all(job.node_count <= max_nodes for job in clamped.jobs)
    assert clamped.max_nodes <= max_nodes


@settings(max_examples=40, deadline=None)
@given(traces())
def test_shift_to_zero_starts_at_zero(trace):
    shifted = ShiftToZero().apply(trace)
    if shifted.jobs:
        assert min(job.submit_time for job in shifted.jobs) == 0.0


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.text(min_size=0, max_size=10),
    st.integers(min_value=1, max_value=40),
)
def test_model_synthesis_deterministic_under_derive_seed(root, name, job_count):
    model = TraceModel(
        arrivals=PoissonArrivals(rate=0.01),
        nodes=LogUniformNodes(max_nodes=64),
    )
    seed = derive_seed(root, name, 0)
    assert model.synthesize(job_count, seed=seed) == model.synthesize(
        job_count, seed=derive_seed(root, name, 0)
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_conversion_deterministic_under_derive_seed(root):
    trace = TraceModel().synthesize(30, seed=7)
    from repro.traces import AdaptiveMix

    mix = AdaptiveMix(rigid=0.5, moldable=0.5)
    a = convert_trace(trace, mix=mix, seed=derive_seed(root, "convert"))
    b = convert_trace(trace, mix=mix, seed=derive_seed(root, "convert"))
    assert a == b
