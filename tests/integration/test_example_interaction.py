"""Integration test replaying the paper's example interaction (Figure 8).

One non-predictably evolving application (NEA) and one malleable application
share the RMS.  The NEA pre-allocates, requests nodes inside the
pre-allocation and later performs a spontaneous update; the malleable
application fills the unused resources with a preemptible request and
immediately frees nodes when the NEA's update needs them.
"""
from __future__ import annotations

import math


from repro.cluster import Platform
from repro.core import (
    CooRMv2,
    RelatedHow,
    Request,
    RequestType,
)
from repro.sim import Simulator


class ScriptedNea:
    """The evolving application of Figure 8, driven explicitly by the test."""

    def __init__(self, name="nea"):
        self.name = name
        self.views = []
        self.started = []

    def on_views(self, non_preemptive, preemptive):
        self.views.append((non_preemptive, preemptive))

    def on_start(self, request, node_ids):
        self.started.append((request, node_ids))

    def on_killed(self, reason):  # pragma: no cover - not expected here
        raise AssertionError(f"NEA killed: {reason}")


class CooperativeMalleable:
    """A malleable application that tracks its preemptive view exactly."""

    def __init__(self, rms, name="malleable"):
        self.rms = rms
        self.name = name
        self.request = None
        self.releases = 0

    def on_views(self, non_preemptive, preemptive):
        allowed = int(preemptive["cluster0"].value_at(self.rms.now))
        if self.request is None:
            self.request = self.rms.submit(
                self.name,
                Request("cluster0", allowed, math.inf, RequestType.PREEMPTIBLE),
            )
            return
        if not self.request.started():
            return
        held = len(self.request.node_ids)
        if allowed < held:
            # Release immediately, as the protocol requires.
            surplus = sorted(self.request.node_ids)[allowed:]
            new_request = self.rms.submit(
                self.name,
                Request(
                    "cluster0", allowed, math.inf, RequestType.PREEMPTIBLE,
                    related_how=RelatedHow.NEXT, related_to=self.request,
                ),
            )
            self.rms.done(self.name, self.request, released_node_ids=surplus)
            self.request = new_request
            self.releases += 1

    def on_start(self, request, node_ids):
        self.request = request

    def on_killed(self, reason):  # pragma: no cover - not expected here
        raise AssertionError(f"malleable killed: {reason}")


class TestFigure8Interaction:
    def test_full_protocol_trace(self):
        sim = Simulator()
        platform = Platform.single_cluster(14)
        rms = CooRMv2(platform, sim, rescheduling_interval=1.0)

        # Steps 1-2: the NEA connects and receives its views.
        nea = ScriptedNea()
        rms.connect(nea, "nea")
        sim.run(until=2.0)
        assert len(nea.views) == 1

        # Steps 3-5: pre-allocation plus a first non-preemptible request,
        # which is immediately served.
        prealloc = rms.submit("nea", Request("cluster0", 10, math.inf, RequestType.PREALLOCATION))
        first = rms.submit("nea", Request("cluster0", 4, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run(until=5.0)
        assert first.started()
        assert len(first.node_ids) == 4
        assert prealloc.started()

        # Steps 6-9: the malleable application connects and fills the rest
        # (including the pre-allocated but unused nodes).
        malleable = CooperativeMalleable(rms)
        rms.connect(malleable, "malleable")
        sim.run(until=10.0)
        assert malleable.request.started()
        assert len(malleable.request.node_ids) == 10  # 14 - 4 non-preemptible

        # Steps 10-11: the NEA performs a spontaneous update to 8 nodes.
        second = rms.submit(
            "nea",
            Request(
                "cluster0", 8, math.inf, RequestType.NON_PREEMPTIBLE,
                related_how=RelatedHow.NEXT, related_to=first,
            ),
        )
        rms.done("nea", first)

        # Steps 12-15: the malleable application is informed, frees nodes and
        # the RMS allocates them to the NEA.
        sim.run(until=20.0)
        assert malleable.releases >= 1
        assert second.started()
        assert len(second.node_ids) == 8
        assert set(first.node_ids).issubset(set(second.node_ids)) or len(second.node_ids) == 8
        assert len(malleable.request.node_ids) == 6  # 14 - 8

        # The protocol trace contains the expected message kinds in order.
        kinds = [type(e).__name__ for e in rms.event_log.for_app("nea")]
        assert kinds[0] == "Connected"
        assert "RequestSubmitted" in kinds
        assert "RequestStarted" in kinds
        assert "RequestDone" in kinds
        # Conservation at all times: never more nodes allocated than exist.
        assert platform.cluster("cluster0").allocated_count() <= 14

    def test_preallocation_guarantees_the_update(self):
        """Resources inside a pre-allocation are always available for updates,
        even if another application would like them non-preemptibly."""
        sim = Simulator()
        platform = Platform.single_cluster(12)
        rms = CooRMv2(platform, sim, rescheduling_interval=1.0)

        nea = ScriptedNea()
        rms.connect(nea, "nea")
        prealloc = rms.submit("nea", Request("cluster0", 10, math.inf, RequestType.PREALLOCATION))
        first = rms.submit("nea", Request("cluster0", 4, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run(until=5.0)

        # A rigid competitor asks for 6 nodes non-preemptibly: only 2 nodes
        # are outside the pre-allocation, so it must wait.
        competitor = ScriptedNea("rigid")
        rms.connect(competitor, "rigid")
        blocked = rms.submit("rigid", Request("cluster0", 6, 100.0, RequestType.NON_PREEMPTIBLE))
        sim.run(until=10.0)
        assert not blocked.started()

        # The NEA grows to 10 nodes inside its pre-allocation: guaranteed.
        growth = rms.submit(
            "nea",
            Request(
                "cluster0", 10, math.inf, RequestType.NON_PREEMPTIBLE,
                related_how=RelatedHow.NEXT, related_to=first,
            ),
        )
        rms.done("nea", first)
        sim.run(until=20.0)
        assert growth.started()
        assert len(growth.node_ids) == 10
