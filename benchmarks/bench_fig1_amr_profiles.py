"""Benchmark and reproduction of Figure 1 (AMR working-set evolutions)."""
from __future__ import annotations

from repro.experiments import fig1_amr_profiles


def test_fig1_profile_generation(benchmark):
    """Time the generation of one batch of normalised profiles."""
    profiles = benchmark(fig1_amr_profiles.run, seeds=tuple(range(5)))
    assert len(profiles) == 5
    print()
    print(fig1_amr_profiles.main(seeds=tuple(range(5))))
