"""Unit tests of requests and their lifecycle."""
from __future__ import annotations

import math

import pytest

from repro.core import (
    ConstraintError,
    RelatedHow,
    Request,
    RequestError,
    RequestState,
    RequestType,
)


class TestValidation:
    def test_negative_node_count_rejected(self):
        with pytest.raises(RequestError):
            Request("c", -1, 10, RequestType.NON_PREEMPTIBLE)

    def test_negative_duration_rejected(self):
        with pytest.raises(RequestError):
            Request("c", 1, -10, RequestType.NON_PREEMPTIBLE)

    def test_bad_types_rejected(self):
        with pytest.raises(RequestError):
            Request("c", 1, 10, "nonP")
        with pytest.raises(RequestError):
            Request("c", 1, 10, RequestType.PREEMPTIBLE, related_how="NEXT")

    def test_constraint_requires_related_to(self):
        with pytest.raises(ConstraintError):
            Request("c", 1, 10, RequestType.NON_PREEMPTIBLE, related_how=RelatedHow.NEXT)

    def test_cannot_relate_to_itself(self):
        # A request can never be its own constraint target; the object does
        # not exist before __init__, so exercise the defensive check by
        # re-initialising an allocated instance with itself as the parent.
        with pytest.raises(ConstraintError):
            r2 = Request.__new__(Request)
            Request.__init__(
                r2, "c", 1, 10, RequestType.NON_PREEMPTIBLE,
                related_how=RelatedHow.NEXT, related_to=r2,
            )

    def test_zero_node_count_is_legal(self):
        r = Request("c", 0, 10, RequestType.PREEMPTIBLE)
        assert r.node_count == 0

    def test_ids_are_unique_and_increasing(self):
        a = Request("c", 1, 10, RequestType.PREEMPTIBLE)
        b = Request("c", 1, 10, RequestType.PREEMPTIBLE)
        assert b.request_id > a.request_id


class TestLifecycle:
    def test_initial_state(self):
        r = Request("c", 4, 100, RequestType.NON_PREEMPTIBLE)
        assert r.pending()
        assert not r.started()
        assert not r.finished()
        assert math.isinf(r.scheduled_at)
        assert r.node_ids == frozenset()

    def test_start_and_finish(self):
        r = Request("c", 4, 100, RequestType.NON_PREEMPTIBLE)
        r.mark_started(10.0, {1, 2, 3, 4})
        assert r.started()
        assert r.active()
        assert r.state is RequestState.STARTED
        assert r.node_ids == frozenset({1, 2, 3, 4})
        r.mark_finished(60.0)
        assert r.finished()
        assert not r.active()
        # done() shrinks the duration to the actually used time.
        assert r.duration == pytest.approx(50.0)
        assert r.end_time() == pytest.approx(60.0)

    def test_finish_before_start(self):
        r = Request("c", 4, 100, RequestType.NON_PREEMPTIBLE)
        r.mark_finished(5.0)
        assert r.finished()
        assert r.duration == 0.0

    def test_cancel(self):
        r = Request("c", 4, 100, RequestType.NON_PREEMPTIBLE)
        r.mark_cancelled(3.0)
        assert r.finished()
        assert r.state is RequestState.CANCELLED

    def test_end_time_and_remaining(self):
        r = Request("c", 4, 100, RequestType.NON_PREEMPTIBLE)
        r.scheduled_at = 50.0
        assert r.end_time() == pytest.approx(150.0)
        r.mark_started(60.0)
        assert r.end_time() == pytest.approx(160.0)
        assert r.remaining_duration(100.0) == pytest.approx(60.0)
        assert r.remaining_duration(1000.0) == 0.0

    def test_type_predicates(self):
        assert Request("c", 1, 1, RequestType.PREALLOCATION).is_preallocation()
        assert Request("c", 1, 1, RequestType.NON_PREEMPTIBLE).is_non_preemptible()
        assert Request("c", 1, 1, RequestType.PREEMPTIBLE).is_preemptible()

    def test_clone_spec_resets_runtime_state(self):
        r = Request("c", 4, 100, RequestType.NON_PREEMPTIBLE, app_id="app1")
        r.mark_started(10.0, {1})
        clone = r.clone_spec()
        assert clone.node_count == 4
        assert clone.app_id == "app1"
        assert clone.pending()
        assert clone.node_ids == frozenset()
        assert clone.request_id != r.request_id

    def test_repr_mentions_constraint(self):
        parent = Request("c", 2, 10, RequestType.NON_PREEMPTIBLE)
        child = Request(
            "c", 4, 10, RequestType.NON_PREEMPTIBLE,
            related_how=RelatedHow.NEXT, related_to=parent,
        )
        assert "NEXT" in repr(child)
        assert str(parent.request_id) in repr(child)
