"""Workload traces: real SWF ingestion, statistical models, transformations.

This subsystem is the layer between raw workload data and the simulator:

* :mod:`repro.traces.swf` -- the full 18-field Standard Workload Format of
  the Parallel Workloads Archive, with ``;`` header directives, gzip
  support and strict/lenient parsing;
* :mod:`repro.traces.models` -- statistical arrival/duration/node-count
  models that synthesize arbitrarily large traces from fitted parameters;
* :mod:`repro.traces.transform` -- a composable transformation pipeline
  (filter, time window, load rescale, node clamp, shift) with provenance
  recorded on every trace;
* :mod:`repro.traces.convert` -- conversion of rigid trace records into
  mixes of rigid/moldable/malleable/evolving applications;
* :mod:`repro.traces.source` -- declarative trace sources
  (:class:`TraceSource`) resolved deterministically for campaign scenarios;
* :mod:`repro.traces.cli` -- the ``python -m repro trace`` command group.

Quick start::

    from repro.traces import TraceModel, load_swf

    trace = load_swf("KTH-SP2-1996-2.1-cln.swf.gz", strict=False)
    model = TraceModel.fit(trace)
    synthetic = model.synthesize(10_000, seed=42)
"""
from .convert import (
    APP_KINDS,
    AdaptiveMix,
    ConvertedJob,
    build_application,
    convert_trace,
    mix_counts,
    replay_horizon,
)
from .models import (
    DailyCycleArrivals,
    LogNormalDuration,
    LogUniformDuration,
    LogUniformNodes,
    PoissonArrivals,
    TraceModel,
    model_from_dict,
)
from .source import TraceSource, resolve_converted_jobs, resolve_trace
from .swf import (
    SWF_FIELDS,
    SwfHeader,
    SwfJob,
    Trace,
    dump_swf,
    dumps_swf,
    load_swf,
    loads_swf,
)
from .transform import (
    ClampNodes,
    FilterJobs,
    LoadRescale,
    Pipeline,
    ShiftToZero,
    TimeWindow,
    transform_from_dict,
)

__all__ = [
    "APP_KINDS",
    "AdaptiveMix",
    "ClampNodes",
    "ConvertedJob",
    "DailyCycleArrivals",
    "FilterJobs",
    "LoadRescale",
    "LogNormalDuration",
    "LogUniformDuration",
    "LogUniformNodes",
    "Pipeline",
    "PoissonArrivals",
    "SWF_FIELDS",
    "ShiftToZero",
    "SwfHeader",
    "SwfJob",
    "Trace",
    "TraceModel",
    "TraceSource",
    "TimeWindow",
    "build_application",
    "convert_trace",
    "dump_swf",
    "dumps_swf",
    "load_swf",
    "loads_swf",
    "mix_counts",
    "model_from_dict",
    "replay_horizon",
    "resolve_converted_jobs",
    "resolve_trace",
    "transform_from_dict",
]
