"""Views: per-cluster resource availability presented to applications.

A view (paper Sections 3.1.4 and A.3) maps a cluster ID to a Cluster
Availability Profile (a :class:`~repro.core.profile.StepFunction`).  The RMS
computes two views per application:

* the **non-preemptive view** ``V_{¬P}`` -- availability for pre-allocations
  and non-preemptible requests, and
* the **preemptive view** ``V_P`` -- availability for preemptible requests.

This module implements the view algebra of Appendix A.3: union (pointwise
max), sum, difference, ``alloc`` and ``findHole``.
"""
from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .errors import ViewError
from .profile import StepBuilder, StepFunction
from .types import ClusterId, Time

__all__ = ["View", "ViewBuilder"]

#: Shared zero profile handed out for absent clusters.  Profiles are
#: immutable by convention, so one instance can safely back every miss --
#: this keeps the (very hot) ``view[cid]`` lookup allocation-free.
_ZERO = StepFunction.zero()


class View:
    """A mapping of cluster IDs to availability profiles.

    Missing clusters evaluate as the zero profile, so views over different
    cluster sets combine naturally.  Like :class:`StepFunction`, views are
    treated as immutable; all operators return new instances.
    """

    __slots__ = ("_caps",)

    def __init__(self, caps: Optional[Mapping[ClusterId, StepFunction]] = None):
        self._caps: Dict[ClusterId, StepFunction] = {}
        if caps:
            for cid, cap in caps.items():
                if not isinstance(cap, StepFunction):
                    raise ViewError(f"cluster {cid!r}: expected a StepFunction")
                self._caps[cid] = cap

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "View":
        """A view with no clusters (zero availability everywhere)."""
        return cls()

    @classmethod
    def constant(cls, node_counts: Mapping[ClusterId, int]) -> "View":
        """A view where each cluster offers a constant node count forever."""
        return cls({cid: StepFunction.constant(n) for cid, n in node_counts.items()})

    @classmethod
    def from_duration_pairs(
        cls, pairs: Mapping[ClusterId, Iterable[Tuple[Time, float]]]
    ) -> "View":
        """Build a view from the paper's per-cluster ``[(duration, n), ...]`` form."""
        return cls({cid: StepFunction.from_duration_pairs(p) for cid, p in pairs.items()})

    # ------------------------------------------------------------------ #
    # Mapping-like access
    # ------------------------------------------------------------------ #
    def clusters(self) -> Tuple[ClusterId, ...]:
        """Cluster IDs present in this view."""
        return tuple(sorted(self._caps))

    def __getitem__(self, cid: ClusterId) -> StepFunction:
        """Profile of cluster *cid*; absent clusters are the zero profile."""
        return self._caps.get(cid, _ZERO)

    def __contains__(self, cid: ClusterId) -> bool:
        return cid in self._caps

    def __iter__(self) -> Iterator[ClusterId]:
        return iter(sorted(self._caps))

    def __len__(self) -> int:
        return len(self._caps)

    def items(self) -> Iterator[Tuple[ClusterId, StepFunction]]:
        for cid in sorted(self._caps):
            yield cid, self._caps[cid]

    def value_at(self, cid: ClusterId, t: Time) -> float:
        """Availability of cluster *cid* at time *t* (``V[cid](t)`` in the paper)."""
        return self[cid].value_at(t)

    # ------------------------------------------------------------------ #
    # Algebra (Appendix A.3)
    # ------------------------------------------------------------------ #
    def _combine(self, other: "View", op) -> "View":
        caps: Dict[ClusterId, StepFunction] = {}
        for cid in set(self._caps) | set(other._caps):
            caps[cid] = op(self[cid], other[cid])
        return View(caps)

    def union(self, other: "View") -> "View":
        """Pointwise maximum per cluster (the paper's ``∪``)."""
        return self._combine(other, lambda a, b: a.maximum(b))

    def __or__(self, other: "View") -> "View":
        return self.union(other)

    def __add__(self, other: "View") -> "View":
        return self._combine(other, lambda a, b: a + b)

    def __sub__(self, other: "View") -> "View":
        return self._combine(other, lambda a, b: a - b)

    def clip_low(self, floor: float = 0.0) -> "View":
        """Clamp every profile to be at least *floor* (usually 0)."""
        return View({cid: cap.clip_low(floor) for cid, cap in self._caps.items()})

    def clip_high(self, ceilings: Mapping[ClusterId, float]) -> "View":
        """Clamp each cluster's profile at its ceiling (e.g. the cluster size)."""
        caps = {}
        for cid, cap in self._caps.items():
            ceiling = ceilings.get(cid)
            caps[cid] = cap if ceiling is None else cap.clip_high(ceiling)
        return View(caps)

    def add_rectangle(self, cid: ClusterId, start: Time, duration: Time, height: float) -> "View":
        """Return this view with a rectangle added on cluster *cid*."""
        caps = dict(self._caps)
        caps[cid] = self[cid].add_rectangle(start, duration, height)
        return View(caps)

    def is_non_negative(self) -> bool:
        """True if no cluster profile ever goes below zero."""
        return all(cap.is_non_negative() for cap in self._caps.values())

    def is_zero(self) -> bool:
        """True if every cluster profile is identically zero."""
        return all(cap.is_zero() for cap in self._caps.values())

    def integrate(self, start: Time = 0.0, end: Time = math.inf) -> float:
        """Total node-seconds over all clusters in ``[start, end)``."""
        return sum(cap.integrate(start, end) for cap in self._caps.values())

    # ------------------------------------------------------------------ #
    # Scheduling primitives (Appendix A.3)
    # ------------------------------------------------------------------ #
    def alloc(self, request) -> int:
        """Node count that can be allocated to *request* at its scheduled time.

        Implements the paper's ``alloc(V, r)``: the minimum between the
        requested node count and the availability of the request's cluster
        over ``[scheduledAt, scheduledAt + duration)``.  Used to compute
        ``n_alloc`` for preemptible requests, which the RMS may legally
        shrink.
        """
        cap = self[request.cluster_id]
        granted = cap.alloc_limit(request.scheduled_at, request.duration, request.node_count)
        return int(math.floor(granted + 1e-9))

    def find_hole(self, request, not_before: Time = 0.0) -> Time:
        """Earliest start time for *request* (the paper's ``findHole``).

        The search starts no earlier than ``max(not_before,
        request.earliest_schedule_at)`` and returns ``math.inf`` if the
        request can never be placed.
        """
        earliest = max(not_before, request.earliest_schedule_at)
        cap = self[request.cluster_id]
        return cap.find_hole(request.node_count, request.duration, earliest)

    # ------------------------------------------------------------------ #
    # Dunder glue
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        for cid in set(self._caps) | set(other._caps):
            if self[cid] != other[cid]:
                return False
        return True

    def __repr__(self) -> str:
        inner = ", ".join(f"{cid!r}: {cap!r}" for cid, cap in self.items())
        return f"View({{{inner}}})"

    def to_duration_pairs(self, horizon: Time) -> Dict[ClusterId, list]:
        """Export every cluster profile in the paper's duration-pair form."""
        return {cid: cap.to_duration_pairs(horizon) for cid, cap in self.items()}


class ViewBuilder:
    """Accumulate per-cluster rectangles and build the occupation view once.

    The scheduling primitives (``fit``, ``toView``) used to grow their result
    views one ``add_rectangle`` at a time -- a full profile merge and two
    allocations per request.  The builder defers to one
    :class:`~repro.core.profile.StepBuilder` sweep per cluster, which is
    result-identical for the integer node counts the scheduler places (see
    the exactness note in :mod:`repro.core.profile`).
    """

    __slots__ = ("_builders",)

    def __init__(self) -> None:
        self._builders: Dict[ClusterId, StepBuilder] = {}

    def add_rectangle(
        self, cid: ClusterId, start: Time, duration: Time, height: float
    ) -> None:
        """Add a rectangle of *height* on ``[start, start + duration)`` to *cid*."""
        builder = self._builders.get(cid)
        if builder is None:
            builder = self._builders[cid] = StepBuilder()
        builder.add_rectangle(start, duration, height)

    def build(self) -> View:
        """The accumulated occupation as an immutable :class:`View`."""
        return View(
            {
                cid: builder.build()
                for cid, builder in self._builders.items()
                if not builder.is_empty()
            }
        )
