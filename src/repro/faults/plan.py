"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a frozen, JSON round-trippable description of a
chaos experiment against a federation:

- :class:`FaultEvent` -- timed node **crashes** / **restarts** and
  whole-cluster **outages** / **recoveries**;
- :class:`ElasticRule` -- a utilization-triggered grow/shrink policy
  evaluated on a finite check grid (finite so the event queue drains and
  the simulation terminates);
- :class:`AdmissionSpec` -- per-member token-bucket throttling plus a
  circuit breaker for the meta-scheduler's admission control.

Members are referenced either by cluster name (``"east"``) or by
federation order (``"#1"``), which lets the built-in plans apply to any
topology.  Plans carry no randomness themselves; optional event jitter is
resolved by the injector from a derived seed, keeping replays
byte-identical.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "FaultEvent",
    "ElasticRule",
    "AdmissionSpec",
    "FaultPlan",
    "register_fault_plan",
    "get_fault_plan",
    "fault_plan_names",
    "resolve_fault_plan",
]

#: Event kinds that remove/restore a fixed number of nodes.
NODE_KINDS = ("crash", "restart")
#: Event kinds that take a whole member down / bring it back.
MEMBER_KINDS = ("outage", "recover")


def _filter_kwargs(cls, data: Mapping) -> Dict:
    """Reject unknown keys instead of silently dropping them."""
    fields = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
    unknown = sorted(set(data) - fields)
    if unknown:
        raise ValueError(f"{cls.__name__}: unknown fields {unknown}")
    return dict(data)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: a node crash/restart or a member outage/recovery."""

    time: float
    kind: str
    member: str
    nodes: int = 0

    def __post_init__(self):
        if self.time < 0:
            raise ValueError(f"fault event time must be >= 0, got {self.time}")
        if self.kind not in NODE_KINDS + MEMBER_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{NODE_KINDS + MEMBER_KINDS}"
            )
        if not self.member:
            raise ValueError("fault event needs a member name or '#index'")
        if self.kind in NODE_KINDS and self.nodes <= 0:
            raise ValueError(f"{self.kind!r} needs a positive node count")
        if self.kind in MEMBER_KINDS and self.nodes != 0:
            raise ValueError(f"{self.kind!r} applies to the whole member; nodes must be 0")

    def to_dict(self) -> Dict:
        return {
            "time": self.time, "kind": self.kind,
            "member": self.member, "nodes": self.nodes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultEvent":
        return cls(**_filter_kwargs(cls, data))


@dataclass(frozen=True)
class ElasticRule:
    """Utilization-triggered capacity rule for one member.

    Every ``interval`` seconds from ``start`` until ``until`` (a *finite*
    grid -- an unbounded rule would keep the event queue non-empty and
    the simulation would never terminate), the member's utilization
    ``allocated / capacity`` is sampled: above ``high_util`` the member
    grows by ``grow_step`` nodes (capped at ``max_nodes``), below
    ``low_util`` it gently sheds up to ``shrink_step`` *free* nodes
    (floored at ``min_nodes``; running jobs are never killed by
    elasticity).
    """

    member: str
    interval: float
    until: float
    start: float = 0.0
    high_util: float = 0.85
    low_util: float = 0.25
    grow_step: int = 8
    shrink_step: int = 8
    min_nodes: int = 1
    max_nodes: int = 0  # 0 = unbounded

    def __post_init__(self):
        if not self.member:
            raise ValueError("elastic rule needs a member name or '#index'")
        if self.interval <= 0:
            raise ValueError("elastic rule interval must be positive")
        if self.until < self.start or self.start < 0:
            raise ValueError("elastic rule needs 0 <= start <= until")
        if not 0.0 <= self.low_util < self.high_util <= 1.0:
            raise ValueError("elastic rule needs 0 <= low_util < high_util <= 1")
        if self.grow_step < 0 or self.shrink_step < 0:
            raise ValueError("elastic grow/shrink steps must be >= 0")
        if self.min_nodes < 0 or self.max_nodes < 0:
            raise ValueError("elastic node bounds must be >= 0")
        if self.max_nodes and self.max_nodes < self.min_nodes:
            raise ValueError("elastic max_nodes must be >= min_nodes")

    def check_times(self) -> List[float]:
        """The finite grid of simulation times at which the rule fires."""
        times: List[float] = []
        k = 1
        while True:
            t = self.start + k * self.interval
            if t > self.until + 1e-9:
                return times
            times.append(t)
            k += 1

    def to_dict(self) -> Dict:
        return {
            "member": self.member, "interval": self.interval,
            "until": self.until, "start": self.start,
            "high_util": self.high_util, "low_util": self.low_util,
            "grow_step": self.grow_step, "shrink_step": self.shrink_step,
            "min_nodes": self.min_nodes, "max_nodes": self.max_nodes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ElasticRule":
        return cls(**_filter_kwargs(cls, data))


@dataclass(frozen=True)
class AdmissionSpec:
    """Meta-scheduler admission control parameters.

    ``rate``/``burst`` parameterize a per-member token bucket refilled in
    simulation time (``rate`` of 0 disables throttling); the circuit
    breaker trips after ``failure_threshold`` consecutive placement
    failures on a member and half-opens ``cooldown`` seconds later --
    one probe placement either closes it again or re-trips it.
    """

    rate: float = 0.0
    burst: int = 8
    failure_threshold: int = 3
    cooldown: float = 300.0

    def __post_init__(self):
        if self.rate < 0:
            raise ValueError("admission rate must be >= 0 (0 = unthrottled)")
        if self.burst <= 0:
            raise ValueError("admission burst must be positive")
        if self.failure_threshold <= 0:
            raise ValueError("admission failure_threshold must be positive")
        if self.cooldown <= 0:
            raise ValueError("admission cooldown must be positive")

    def to_dict(self) -> Dict:
        return {
            "rate": self.rate, "burst": self.burst,
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AdmissionSpec":
        return cls(**_filter_kwargs(cls, data))


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serialisable chaos experiment description."""

    name: str
    events: Tuple[FaultEvent, ...] = ()
    elastic: Tuple[ElasticRule, ...] = ()
    admission: Optional[AdmissionSpec] = None
    #: Maximum seconds of deterministic per-event jitter (resolved by the
    #: injector from ``derive_seed(seed, "fault-jitter", i)``).
    jitter: float = 0.0
    #: How many times a job killed by a fault is resubmitted before it
    #: counts as lost.
    max_respawns: int = 1

    def __post_init__(self):
        if not self.name:
            raise ValueError("a fault plan needs a name")
        events = tuple(
            FaultEvent.from_dict(e) if isinstance(e, Mapping) else e
            for e in self.events
        )
        object.__setattr__(self, "events", events)
        elastic = tuple(
            ElasticRule.from_dict(r) if isinstance(r, Mapping) else r
            for r in self.elastic
        )
        object.__setattr__(self, "elastic", elastic)
        if isinstance(self.admission, Mapping):
            object.__setattr__(
                self, "admission", AdmissionSpec.from_dict(self.admission)
            )
        if self.jitter < 0:
            raise ValueError("fault plan jitter must be >= 0")
        if self.max_respawns < 0:
            raise ValueError("fault plan max_respawns must be >= 0")

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "events": [e.to_dict() for e in self.events],
            "elastic": [r.to_dict() for r in self.elastic],
            "admission": None if self.admission is None else self.admission.to_dict(),
            "jitter": self.jitter,
            "max_respawns": self.max_respawns,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls(**_filter_kwargs(cls, data))

    def label(self) -> str:
        bits = [f"{len(self.events)} events"]
        if self.elastic:
            bits.append(f"{len(self.elastic)} elastic rules")
        if self.admission is not None:
            bits.append("admission control")
        return f"{self.name}: " + ", ".join(bits)


# --------------------------------------------------------------------- #
# Registry of built-in plans
# --------------------------------------------------------------------- #
_PLANS: Dict[str, Callable[[], FaultPlan]] = {}


def register_fault_plan(name: str, factory: Callable[[], FaultPlan]) -> None:
    """Register a named fault plan factory (keyed by its name)."""
    if name in _PLANS:
        raise ValueError(f"fault plan {name!r} is already registered")
    _PLANS[name] = factory


def get_fault_plan(name: str) -> FaultPlan:
    """Build the registered plan *name*, with a helpful error otherwise."""
    try:
        factory = _PLANS[name]
    except KeyError:
        known = ", ".join(sorted(_PLANS)) or "(none)"
        raise KeyError(
            f"unknown fault plan {name!r}; registered plans: {known}"
        ) from None
    return factory()


def fault_plan_names() -> List[str]:
    return sorted(_PLANS)


def resolve_fault_plan(faults: Union[str, Mapping, FaultPlan]) -> FaultPlan:
    """Promote a registered name, a plan dict or a plan instance to a plan."""
    if isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, str):
        return get_fault_plan(faults)
    if isinstance(faults, Mapping):
        return FaultPlan.from_dict(faults)
    raise TypeError(
        f"faults must be a plan name, mapping or FaultPlan, got {type(faults).__name__}"
    )


def _flaky_nodes() -> FaultPlan:
    # Two staggered partial crashes with later restarts; members are
    # referenced by federation order so the plan fits any >= 2-member
    # topology.  Admission control reroutes around the unhealthy member
    # once its breaker trips.
    return FaultPlan(
        name="flaky-nodes",
        events=(
            FaultEvent(time=600.0, kind="crash", member="#1", nodes=24),
            FaultEvent(time=1200.0, kind="crash", member="#0", nodes=16),
            FaultEvent(time=1800.0, kind="restart", member="#1", nodes=24),
            FaultEvent(time=2400.0, kind="restart", member="#0", nodes=16),
        ),
        admission=AdmissionSpec(),
    )


def _blackout() -> FaultPlan:
    # One member disappears entirely for 25 sim-minutes; placements
    # reroute to the survivors, killed jobs respawn there.
    return FaultPlan(
        name="blackout",
        events=(
            FaultEvent(time=900.0, kind="outage", member="#1"),
            FaultEvent(time=2400.0, kind="recover", member="#1"),
        ),
        admission=AdmissionSpec(),
    )


def _elastic_tide() -> FaultPlan:
    # No faults at all: a pure elasticity experiment where the first
    # member tracks its own utilization for an hour of sim time.
    return FaultPlan(
        name="elastic-tide",
        elastic=(
            ElasticRule(
                member="#0", interval=300.0, until=3600.0,
                high_util=0.7, low_util=0.2,
                grow_step=8, shrink_step=8,
                min_nodes=8, max_nodes=96,
            ),
        ),
    )


register_fault_plan("flaky-nodes", _flaky_nodes)
register_fault_plan("blackout", _blackout)
register_fault_plan("elastic-tide", _elastic_tide)
