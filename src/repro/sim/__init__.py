"""Discrete-event simulation substrate used by the evaluation."""
from .engine import EventHandle, Process, Simulator
from .randomness import RandomSource, derive_seed, spawn_streams, stable_fingerprint

__all__ = [
    "EventHandle",
    "Process",
    "Simulator",
    "RandomSource",
    "derive_seed",
    "spawn_streams",
    "stable_fingerprint",
]
