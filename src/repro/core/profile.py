"""Step-function Cluster Availability Profiles (CAPs).

The paper (Sections 3.1.4 and A.3) represents resource availability as a step
function: the x-axis is absolute time, the y-axis is a node count.  Views are
per-cluster collections of such profiles and every scheduling primitive of
CooRMv2 (``toView``, ``fit``, ``eqSchedule``, Conservative Back-Filling)
manipulates them.

This module provides :class:`StepFunction`, an immutable-by-convention
piecewise-constant function on ``[0, +inf)`` with the algebra the paper
requires:

* point evaluation (``cap(t)`` in the paper),
* ``+``, ``-``, pointwise ``max`` (the paper's union) and ``min``,
* clipping at zero,
* minimum over a time window,
* ``find_hole`` -- earliest time a rectangle of ``n`` nodes x ``duration``
  seconds fits below the profile,
* rectangle addition / subtraction,
* integration (node-seconds) over a window.

The representation is a compact list of breakpoints: ``times[i]`` is the start
of segment ``i`` and ``values[i]`` its constant value; the last segment
extends to ``+inf``.  ``times[0]`` is always ``0.0``.

Complexity contract (the simulation hot path leans on it):

* ``value_at`` / ``min_over`` / ``integrate`` are O(log n) + output size,
  via :mod:`bisect` over the breakpoint array;
* ``+`` / ``-`` / ``maximum`` / ``minimum`` are single-pass O(n + m) merges;
* ``find_hole`` is a single O(n) sweep (it was O(n^2));
* :class:`StepBuilder` accumulates many rectangles and materialises the sum
  in one O(k log k) sweep instead of k full merges;
* the private in-place rectangle ops let owners such as the CBF queue update
  an availability profile without reallocating it.

Exactness note: every transformation here computes segment values with the
same floating-point operations (and, for builders, integer-valued heights) as
the equivalent chain of immutable operations, so replacing one with the other
never changes results -- the golden regression suite pins this.
"""
from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Sequence, Tuple

from .errors import ProfileError
from .types import Time

__all__ = ["StepFunction", "StepBuilder"]

_EPS = 1e-9


def _merge_breakpoints(a: "StepFunction", b: "StepFunction") -> List[Time]:
    """Return the sorted union of the breakpoints of two profiles."""
    times: List[Time] = []
    ia = ib = 0
    ta, tb = a._times, b._times
    while ia < len(ta) or ib < len(tb):
        if ib >= len(tb) or (ia < len(ta) and ta[ia] <= tb[ib]):
            t = ta[ia]
            ia += 1
        else:
            t = tb[ib]
            ib += 1
        if not times or t > times[-1]:
            times.append(t)
    return times


class StepFunction:
    """A right-continuous piecewise-constant function of time.

    Values are numeric (node counts in almost all uses).  Instances should be
    treated as immutable: all arithmetic returns new objects.  The private
    ``*_in_place`` helpers are the one sanctioned exception, reserved for
    owners that never share the instance (e.g. the CBF queue's availability).

    Parameters
    ----------
    times:
        Segment start times.  Must be strictly increasing and start at 0.
    values:
        Segment values, same length as *times*.
    """

    __slots__ = ("_times", "_values")

    def __init__(self, times: Sequence[Time] = (0.0,), values: Sequence[float] = (0.0,)):
        times = [float(t) for t in times]
        values = [float(v) for v in values]
        if len(times) != len(values):
            raise ProfileError("times and values must have the same length")
        if not times:
            times, values = [0.0], [0.0]
        if times[0] != 0.0:
            raise ProfileError("the first breakpoint must be at t=0")
        for i in range(1, len(times)):
            if times[i] <= times[i - 1]:
                raise ProfileError("breakpoints must be strictly increasing")
            if not math.isfinite(times[i]):
                raise ProfileError("breakpoints must be finite")
        self._times = times
        self._values = values
        self._compact()

    @classmethod
    def _from_compacted(
        cls, times: List[Time], values: List[float]
    ) -> "StepFunction":
        """Internal fast constructor: *times*/*values* are adopted as-is.

        The caller guarantees strictly increasing finite times starting at
        0.0 and already-compacted values (no adjacent pair within ``_EPS``).
        """
        self = object.__new__(cls)
        self._times = times
        self._values = values
        return self

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(cls, value: float) -> "StepFunction":
        """A profile equal to *value* everywhere."""
        return cls._from_compacted([0.0], [float(value)])

    @classmethod
    def zero(cls) -> "StepFunction":
        """The everywhere-zero profile."""
        return cls.constant(0.0)

    @classmethod
    def from_duration_pairs(cls, pairs: Iterable[Tuple[Time, float]]) -> "StepFunction":
        """Build a profile from the paper's ``[(duration, value), ...]`` form.

        The profile takes the listed values for the listed durations starting
        at ``t = 0`` and is 0 afterwards.  For example
        ``[(3600, 4), (3600, 3)]`` means 4 nodes during the first hour, 3
        during the second and none afterwards.
        """
        times: List[Time] = [0.0]
        values: List[float] = []
        t = 0.0
        for duration, value in pairs:
            if duration <= 0:
                raise ProfileError("durations must be positive")
            values.append(float(value))
            t += float(duration)
            times.append(t)
        values.append(0.0)
        return cls(times, values)

    @classmethod
    def rectangle(cls, start: Time, duration: Time, height: float) -> "StepFunction":
        """A profile that is *height* on ``[start, start+duration)`` and 0 elsewhere."""
        if duration < 0:
            raise ProfileError("duration must be non-negative")
        if start < 0:
            raise ProfileError("start must be non-negative")
        if duration == 0 or height == 0:
            return cls.zero()
        if math.isinf(duration):
            if start == 0:
                return cls.constant(height)
            return cls([0.0, float(start)], [0.0, float(height)])
        if start == 0:
            return cls([0.0, float(duration)], [float(height), 0.0])
        return cls([0.0, float(start), float(start + duration)], [0.0, float(height), 0.0])

    def copy(self) -> "StepFunction":
        """An independent copy (snapshot of an in-place-updated profile)."""
        return StepFunction._from_compacted(list(self._times), list(self._values))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def times(self) -> Tuple[Time, ...]:
        """Segment start times (read-only)."""
        return tuple(self._times)

    @property
    def values(self) -> Tuple[float, ...]:
        """Segment values (read-only)."""
        return tuple(self._values)

    def segments(self) -> Iterator[Tuple[Time, Time, float]]:
        """Yield ``(start, end, value)`` triples; the last end is ``+inf``."""
        for i, (t, v) in enumerate(zip(self._times, self._values)):
            end = self._times[i + 1] if i + 1 < len(self._times) else math.inf
            yield t, end, v

    def breakpoints(self) -> Tuple[Time, ...]:
        """Alias of :attr:`times`, matching scheduler terminology."""
        return self.times

    def is_zero(self) -> bool:
        """True if the profile is 0 everywhere."""
        return all(abs(v) < _EPS for v in self._values)

    def is_non_negative(self) -> bool:
        """True if the profile never goes below zero."""
        return all(v >= -_EPS for v in self._values)

    def max_value(self) -> float:
        """The maximum value taken anywhere."""
        return max(self._values)

    def min_value(self) -> float:
        """The minimum value taken anywhere."""
        return min(self._values)

    def _compact(self) -> None:
        """Merge adjacent segments with equal values (in place, constructor only)."""
        times: List[Time] = [self._times[0]]
        values: List[float] = [self._values[0]]
        for t, v in zip(self._times[1:], self._values[1:]):
            if abs(v - values[-1]) < _EPS:
                continue
            times.append(t)
            values.append(v)
        self._times = times
        self._values = values

    # ------------------------------------------------------------------ #
    # Point and window queries
    # ------------------------------------------------------------------ #
    def __call__(self, t: Time) -> float:
        """Value at time *t* (the paper's ``cap(t)``)."""
        return self.value_at(t)

    def value_at(self, t: Time) -> float:
        """Value at time *t*; times before 0 evaluate as 0."""
        if t < 0:
            return 0.0
        return self._values[bisect_right(self._times, t) - 1]

    def min_over(self, start: Time, end: Time) -> float:
        """Minimum value over ``[start, end)``.

        An empty window (``end <= start``) returns the value at *start*.
        """
        if end <= start:
            return self.value_at(start)
        times = self._times
        # Segments covering [start, end): the one containing start plus every
        # breakpoint strictly inside the window.
        lo = bisect_right(times, start) - 1
        hi = bisect_left(times, end, lo + 1)
        if lo < 0:
            # start < 0 evaluates as 0, like value_at.
            best = 0.0
            lo = 0
        else:
            best = self._values[lo]
            lo += 1
        values = self._values
        for i in range(lo, hi):
            v = values[i]
            if v < best:
                best = v
        return best

    def integrate(self, start: Time = 0.0, end: Time = math.inf) -> float:
        """Integral (value x time, i.e. node-seconds) over ``[start, end)``.

        Integrating to ``+inf`` is allowed only if the profile is eventually
        zero; otherwise :class:`ProfileError` is raised.
        """
        if end <= start:
            return 0.0
        times, values = self._times, self._values
        n = len(times)
        # First segment overlapping [start, end) and first segment at/after end.
        first = max(bisect_right(times, start) - 1, 0)
        total = 0.0
        for i in range(first, n):
            seg_start = times[i]
            seg_end = times[i + 1] if i + 1 < n else math.inf
            lo = seg_start if seg_start > start else start
            hi = seg_end if seg_end < end else end
            if hi <= lo:
                if seg_start >= end:
                    break
                continue
            value = values[i]
            if math.isinf(hi):
                if abs(value) < _EPS:
                    continue
                raise ProfileError("cannot integrate a non-zero profile to infinity")
            total += value * (hi - lo)
        return total

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def _combine(self, other: "StepFunction", op) -> "StepFunction":
        """Single-pass merge: O(n + m), no intermediate point evaluations."""
        ta, va = self._times, self._values
        tb, vb = other._times, other._values
        na, nb = len(ta), len(tb)
        times: List[Time] = []
        values: List[float] = []
        append_t = times.append
        append_v = values.append
        ia = ib = 0
        cur_a = va[0]
        cur_b = vb[0]
        last_v = None
        while ia < na or ib < nb:
            if ib >= nb or (ia < na and ta[ia] <= tb[ib]):
                t = ta[ia]
            else:
                t = tb[ib]
            if ia < na and ta[ia] == t:
                cur_a = va[ia]
                ia += 1
            if ib < nb and tb[ib] == t:
                cur_b = vb[ib]
                ib += 1
            v = op(cur_a, cur_b)
            # Inline compaction, identical to _compact: keep the first value
            # of every eps-equal run.
            if last_v is not None and abs(v - last_v) < _EPS:
                continue
            append_t(t)
            append_v(v)
            last_v = v
        return StepFunction._from_compacted(times, values)

    def __add__(self, other: "StepFunction") -> "StepFunction":
        return self._combine(other, lambda a, b: a + b)

    def __sub__(self, other: "StepFunction") -> "StepFunction":
        return self._combine(other, lambda a, b: a - b)

    def maximum(self, other: "StepFunction") -> "StepFunction":
        """Pointwise maximum (the paper's view union)."""
        return self._combine(other, max)

    def minimum(self, other: "StepFunction") -> "StepFunction":
        """Pointwise minimum."""
        return self._combine(other, min)

    def scale(self, factor: float) -> "StepFunction":
        """Multiply every value by *factor*."""
        return StepFunction(list(self._times), [v * factor for v in self._values])

    def shift_value(self, delta: float) -> "StepFunction":
        """Add the scalar *delta* to every value."""
        return StepFunction(list(self._times), [v + delta for v in self._values])

    def clip_low(self, floor: float = 0.0) -> "StepFunction":
        """Clamp every value to be at least *floor*."""
        return StepFunction(list(self._times), [max(v, floor) for v in self._values])

    def clip_high(self, ceiling: float) -> "StepFunction":
        """Clamp every value to be at most *ceiling*."""
        return StepFunction(list(self._times), [min(v, ceiling) for v in self._values])

    def add_rectangle(self, start: Time, duration: Time, height: float) -> "StepFunction":
        """Return this profile plus a rectangle (used when placing a request)."""
        if duration <= 0 or height == 0:
            return StepFunction(list(self._times), list(self._values))
        return self + StepFunction.rectangle(start, duration, height)

    def subtract_rectangle(self, start: Time, duration: Time, height: float) -> "StepFunction":
        """Return this profile minus a rectangle (used when consuming capacity)."""
        return self.add_rectangle(start, duration, -height)

    def floor(self) -> "StepFunction":
        """Round every value down to the nearest integer."""
        return StepFunction(list(self._times), [math.floor(v + _EPS) for v in self._values])

    # ------------------------------------------------------------------ #
    # In-place updates (owners only -- see the class docstring)
    # ------------------------------------------------------------------ #
    def add_rectangle_in_place(self, start: Time, duration: Time, height: float) -> None:
        """Mutate this profile: add a rectangle without reallocating.

        Produces exactly the state :meth:`add_rectangle` would return, but in
        O(log n + segments touched) with no intermediate profiles.  Reserved
        for sole owners of the instance (incremental availability tracking);
        sharing a mutated profile breaks the immutability convention every
        other caller relies on.
        """
        if duration <= 0 or height == 0:
            return
        if start < 0:
            raise ProfileError("start must be non-negative")
        times, values = self._times, self._values

        # Ensure a breakpoint at `start`; remember the first affected index.
        i = bisect_right(times, start)
        if times[i - 1] == start:
            start_idx = i - 1
        else:
            times.insert(i, float(start))
            values.insert(i, values[i - 1])
            start_idx = i

        if math.isinf(duration):
            end_idx = len(times)
        else:
            end = start + duration
            j = bisect_right(times, end, start_idx)
            if times[j - 1] == end:
                end_idx = j - 1
            else:
                times.insert(j, float(end))
                values.insert(j, values[j - 1])
                end_idx = j

        for k in range(start_idx, end_idx):
            values[k] += height

        # Only the two junctions can have become eps-equal: interior
        # neighbours moved by the same height, exterior ones did not move.
        # Check the right junction first so the left-junction indices stay
        # valid after a potential deletion.
        if 0 < end_idx < len(times) and abs(values[end_idx] - values[end_idx - 1]) < _EPS:
            del times[end_idx]
            del values[end_idx]
        if 0 < start_idx and abs(values[start_idx] - values[start_idx - 1]) < _EPS:
            del times[start_idx]
            del values[start_idx]

    def subtract_rectangle_in_place(self, start: Time, duration: Time, height: float) -> None:
        """Mutate this profile: subtract a rectangle (see :meth:`add_rectangle_in_place`)."""
        self.add_rectangle_in_place(start, duration, -height)

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #
    def find_hole(self, n: float, duration: Time, earliest: Time = 0.0) -> Time:
        """Earliest ``t >= earliest`` such that the profile is >= *n* on
        ``[t, t + duration)``.

        This is the paper's ``findHole`` restricted to one cluster.  Returns
        ``math.inf`` if no such time exists (the request "never" starts).
        A zero-node or zero-duration request fits at *earliest* immediately.

        Single left-to-right sweep over the segments: a candidate start is
        only ever abandoned for the next segment that satisfies the node
        requirement, so every segment is visited at most once.
        """
        if n <= 0 or duration <= 0:
            return max(0.0, earliest)
        earliest = max(0.0, earliest)
        times, values = self._times, self._values
        m = len(times)
        need = n - _EPS

        if math.isinf(duration):
            # The profile must stay >= n forever starting at t: find the
            # start of the last all-satisfying suffix of segments.
            if values[-1] < need:
                return math.inf
            idx = m
            while idx > 0 and values[idx - 1] >= need:
                idx -= 1
            if idx == 0:
                return earliest
            return max(earliest, times[idx])

        t = earliest
        i = bisect_right(times, t) - 1  # segment containing the candidate
        while True:
            if values[i] < need:
                # The window starting at any time in this segment is blocked;
                # advance to the next segment that satisfies the requirement.
                i += 1
                while i < m and values[i] < need:
                    i += 1
                if i >= m:
                    return math.inf
                t = times[i]
                continue
            seg_end = times[i + 1] if i + 1 < m else math.inf
            if seg_end >= t + duration:
                return t
            i += 1

    def _segment_index(self, t: Time) -> int:
        return max(bisect_right(self._times, t) - 1, 0)

    def alloc_limit(self, start: Time, duration: Time, requested: float) -> float:
        """How many nodes can be granted on ``[start, start+duration)``.

        This is the paper's ``alloc`` on one cluster: the minimum of the
        requested node count and the availability over the window.  Never
        negative.
        """
        if duration <= 0:
            return max(0.0, min(requested, self.value_at(start)))
        available = self.min_over(start, start + duration)
        return max(0.0, min(requested, available))

    # ------------------------------------------------------------------ #
    # Dunder glue
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StepFunction):
            return NotImplemented
        if len(self._times) != len(other._times):
            return False
        return all(
            abs(t1 - t2) < _EPS and abs(v1 - v2) < _EPS
            for t1, t2, v1, v2 in zip(self._times, other._times, self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover - profiles are not meant to be dict keys
        return hash((tuple(self._times), tuple(self._values)))

    def __repr__(self) -> str:
        parts = ", ".join(f"[{t:g}:{v:g}]" for t, v in zip(self._times, self._values))
        return f"StepFunction({parts})"

    def to_duration_pairs(self, horizon: Time) -> List[Tuple[Time, float]]:
        """Export as the paper's ``[(duration, value), ...]`` form up to *horizon*."""
        pairs: List[Tuple[Time, float]] = []
        for start, end, value in self.segments():
            if start >= horizon:
                break
            pairs.append((min(end, horizon) - start, value))
        return pairs


class StepBuilder:
    """Accumulate rectangles and materialise their sum as one profile.

    Replaces chains of ``profile = profile.add_rectangle(...)`` (each a full
    merge allocating a new profile) with one delta sweep: O(k log k) for k
    rectangles instead of O(k^2).  With integer-valued heights -- node counts
    everywhere in the scheduler -- the result is bit-identical to the
    sequential chain, which the profile-equivalence property tests pin.
    """

    __slots__ = ("_deltas",)

    def __init__(self) -> None:
        # time -> accumulated height delta at that breakpoint; rectangles of
        # infinite duration contribute a start delta only.
        self._deltas: dict = {}

    def add_rectangle(self, start: Time, duration: Time, height: float) -> None:
        """Add a rectangle of *height* on ``[start, start + duration)``."""
        if duration <= 0 or height == 0:
            return
        start = float(start)
        deltas = self._deltas
        deltas[start] = deltas.get(start, 0.0) + height
        if math.isinf(duration):
            return
        end = float(start + duration)
        deltas[end] = deltas.get(end, 0.0) - height

    def is_empty(self) -> bool:
        """True when no rectangle has been added."""
        return not self._deltas

    def build(self) -> StepFunction:
        """The sum of every added rectangle, as an immutable profile."""
        if not self._deltas:
            return _SHARED_ZERO
        times: List[Time] = [0.0]
        values: List[float] = []
        level = 0.0
        last_kept = None
        for t in sorted(self._deltas):
            level += self._deltas[t]
            if t == 0.0:
                continue
            if last_kept is None:
                # First breakpoint after 0: the value on [0, t) is whatever
                # the deltas at 0 accumulated (0 if none).
                base = level - self._deltas[t]
                values.append(base)
                last_kept = base
            if abs(level - last_kept) < _EPS:
                continue
            times.append(t)
            values.append(level)
            last_kept = level
        if last_kept is None:
            # Only deltas at t=0 (infinite rectangles starting at 0).
            values.append(level)
        return StepFunction._from_compacted(times, values)


#: Shared zero profile: safe because profiles are immutable by convention.
_SHARED_ZERO = StepFunction.zero()
