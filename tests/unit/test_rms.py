"""Unit tests of the CooRMv2 RMS server (sessions, node IDs, protocol)."""
from __future__ import annotations

import math

import pytest

from repro.core import (
    CooRMv2,
    Connected,
    Request,
    RequestError,
    RequestStarted,
    RequestSubmitted,
    RequestType,
    RelatedHow,
    SessionError,
    SessionKilled,
    ViewsPushed,
)
from repro.cluster import Platform
from repro.sim import Simulator
from repro.testing import RecordingApp, make_env


class TestSessions:
    def test_connect_pushes_views(self):
        sim, _, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        sim.run()
        assert len(app.views) == 1
        non_preemptive, preemptive = app.views[0]
        assert non_preemptive["cluster0"].value_at(0) == 16
        assert preemptive["cluster0"].value_at(0) == 16
        assert isinstance(rms.event_log.last(Connected), Connected)

    def test_duplicate_connect_rejected(self):
        sim, _, rms = make_env()
        rms.connect(RecordingApp("a"), "a")
        with pytest.raises(SessionError):
            rms.connect(RecordingApp("a"), "a")

    def test_auto_generated_app_ids(self):
        _, _, rms = make_env()
        s1 = rms.connect(RecordingApp("x"))
        s2 = rms.connect(RecordingApp("y"))
        assert s1.app_id != s2.app_id

    def test_submit_requires_session(self):
        _, _, rms = make_env()
        with pytest.raises(SessionError):
            rms.submit("ghost", Request("cluster0", 1, 10, RequestType.NON_PREEMPTIBLE))

    def test_disconnect_releases_everything(self):
        sim, platform, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        request = rms.submit("a", Request("cluster0", 4, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run()
        assert platform.cluster("cluster0").free_count() == 12
        rms.disconnect("a")
        sim.run()
        assert platform.cluster("cluster0").free_count() == 16
        assert request.finished()
        with pytest.raises(SessionError):
            rms.submit("a", Request("cluster0", 1, 10, RequestType.NON_PREEMPTIBLE))


class TestRequestLifecycle:
    def test_submit_validates_cluster_and_size(self):
        _, _, rms = make_env()
        rms.connect(RecordingApp("a"), "a")
        with pytest.raises(RequestError):
            rms.submit("a", Request("nope", 1, 10, RequestType.NON_PREEMPTIBLE))
        with pytest.raises(RequestError):
            rms.submit("a", Request("cluster0", 100, 10, RequestType.NON_PREEMPTIBLE))

    def test_non_preemptible_request_gets_node_ids(self):
        sim, _, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        rms.submit("a", Request("cluster0", 4, 100.0, RequestType.NON_PREEMPTIBLE))
        sim.run(until=10.0)
        assert len(app.started) == 1
        request, node_ids = app.started[0]
        assert len(node_ids) == 4
        assert request.started()
        assert isinstance(rms.event_log.last(RequestStarted), RequestStarted)

    def test_preallocation_gets_no_node_ids(self):
        sim, _, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        rms.submit("a", Request("cluster0", 8, 100.0, RequestType.PREALLOCATION))
        sim.run(until=10.0)
        request, node_ids = app.started[0]
        assert node_ids == frozenset()
        assert request.is_preallocation()

    def test_request_expires_after_its_duration(self):
        sim, platform, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        rms.submit("a", Request("cluster0", 4, 50.0, RequestType.NON_PREEMPTIBLE))
        sim.run(until=40.0)
        assert platform.cluster("cluster0").free_count() == 12
        sim.run(until=60.0)
        assert platform.cluster("cluster0").free_count() == 16

    def test_done_releases_early_and_is_idempotent(self):
        sim, platform, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        request = rms.submit("a", Request("cluster0", 4, 1000.0, RequestType.NON_PREEMPTIBLE))
        sim.run(until=10.0)
        rms.done("a", request)
        rms.done("a", request)  # second call is a no-op
        sim.run(until=20.0)
        assert platform.cluster("cluster0").free_count() == 16
        summary = rms.accountant.summary("a")
        assert summary.non_preemptible_node_seconds == pytest.approx(4 * (10.0 - 1.0), rel=0.2)

    def test_done_rejects_foreign_requests(self):
        sim, _, rms = make_env()
        rms.connect(RecordingApp("a"), "a")
        rms.connect(RecordingApp("b"), "b")
        request = rms.submit("a", Request("cluster0", 2, 100.0, RequestType.NON_PREEMPTIBLE))
        with pytest.raises(RequestError):
            rms.done("b", request)

    def test_rescheduling_interval_coalesces_messages(self):
        sim, _, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        sim.run()
        passes_before = sim.processed_events
        # A burst of submissions at the same instant triggers one pass.
        for _ in range(5):
            rms.submit("a", Request("cluster0", 1, 10.0, RequestType.NON_PREEMPTIBLE))
        assert isinstance(rms.event_log.last(RequestSubmitted), RequestSubmitted)
        sim.run()
        started = [e for e in rms.event_log.of_kind(RequestStarted)]
        assert len(started) == 5
        # All five requests started at the same scheduling pass time.
        assert len({e.time for e in started}) == 1


class TestNextChains:
    def test_spontaneous_growth_carries_node_ids(self):
        sim, platform, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        first = rms.submit("a", Request("cluster0", 4, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run(until=5.0)
        first_nodes = set(first.node_ids)
        assert len(first_nodes) == 4
        # Grow to 6 nodes: new request NEXT to the running one, then done().
        second = rms.submit(
            "a",
            Request(
                "cluster0", 6, math.inf, RequestType.NON_PREEMPTIBLE,
                related_how=RelatedHow.NEXT, related_to=first,
            ),
        )
        rms.done("a", first)
        sim.run(until=10.0)
        assert second.started()
        assert first_nodes.issubset(set(second.node_ids))
        assert len(second.node_ids) == 6
        assert platform.cluster("cluster0").free_count() == 10

    def test_shrink_releases_chosen_nodes(self):
        sim, platform, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        first = rms.submit("a", Request("cluster0", 6, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run(until=5.0)
        to_free = sorted(first.node_ids)[-2:]
        second = rms.submit(
            "a",
            Request(
                "cluster0", 4, math.inf, RequestType.NON_PREEMPTIBLE,
                related_how=RelatedHow.NEXT, related_to=first,
            ),
        )
        rms.done("a", first, released_node_ids=to_free)
        sim.run(until=10.0)
        assert second.started()
        assert len(second.node_ids) == 4
        assert not set(to_free) & set(second.node_ids)
        assert platform.cluster("cluster0").free_count() == 12

    def test_orphaned_retained_nodes_are_released(self):
        sim, platform, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        first = rms.submit("a", Request("cluster0", 4, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run(until=5.0)
        successor = rms.submit(
            "a",
            Request(
                "cluster0", 4, math.inf, RequestType.NON_PREEMPTIBLE,
                related_how=RelatedHow.NEXT, related_to=first,
            ),
        )
        rms.done("a", first)
        # Abandon the successor before it starts: the carried nodes must not leak.
        rms.done("a", successor)
        sim.run(until=10.0)
        assert platform.cluster("cluster0").free_count() == 16

    def test_deferred_start_waits_for_release(self):
        sim, platform, rms = make_env(nodes=8)
        holder = RecordingApp("holder")
        grower = RecordingApp("grower")
        rms.connect(holder, "holder")
        rms.connect(grower, "grower")
        blocking = rms.submit("holder", Request("cluster0", 6, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run(until=5.0)
        wanted = rms.submit("grower", Request("cluster0", 4, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run(until=10.0)
        assert not wanted.started()  # only 2 nodes free
        rms.done("holder", blocking)
        sim.run(until=20.0)
        assert wanted.started()
        assert len(wanted.node_ids) == 4


class TestPreemptibleAndViews:
    def test_preemptible_request_shrinks_to_available(self):
        sim, _, rms = make_env(nodes=8)
        a, b = RecordingApp("a"), RecordingApp("b")
        rms.connect(a, "a")
        rms.connect(b, "b")
        ra = rms.submit("a", Request("cluster0", 8, math.inf, RequestType.PREEMPTIBLE))
        rb = rms.submit("b", Request("cluster0", 8, math.inf, RequestType.PREEMPTIBLE))
        sim.run(until=5.0)
        assert ra.started() and rb.started()
        assert len(ra.node_ids) + len(rb.node_ids) <= 8
        assert len(ra.node_ids) == 4  # equi-partition

    def test_views_are_pushed_when_state_changes(self):
        sim, _, rms = make_env()
        a, b = RecordingApp("a"), RecordingApp("b")
        rms.connect(a, "a")
        sim.run()
        views_before = len(a.views)
        rms.connect(b, "b")
        rms.submit("b", Request("cluster0", 8, 100.0, RequestType.NON_PREEMPTIBLE))
        sim.run(until=10.0)
        # Application "a" learns that 8 nodes are now taken.
        assert len(a.views) > views_before
        _, preemptive = a.views[-1]
        assert preemptive["cluster0"].value_at(10.0) == 8
        assert isinstance(rms.event_log.last(ViewsPushed), ViewsPushed)

    def test_kill_terminates_session_and_frees_nodes(self):
        sim, platform, rms = make_env()
        app = RecordingApp("a")
        rms.connect(app, "a")
        rms.submit("a", Request("cluster0", 4, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run(until=5.0)
        rms.kill("a", "testing the kill path")
        assert app.killed_reason == "testing the kill path"
        assert platform.cluster("cluster0").free_count() == 16
        assert isinstance(rms.event_log.last(SessionKilled), SessionKilled)
        with pytest.raises(SessionError):
            rms.submit("a", Request("cluster0", 1, 10, RequestType.NON_PREEMPTIBLE))

    def test_protocol_violators_are_killed_when_enabled(self):
        sim, _, rms = make_env(nodes=8, kill_protocol_violators=True, violation_grace=5.0)

        class StubbornApp(RecordingApp):
            """Never releases preemptible resources when asked to."""

        stubborn = StubbornApp("stubborn")
        polite = RecordingApp("polite")
        rms.connect(stubborn, "stubborn")
        rms.submit("stubborn", Request("cluster0", 8, math.inf, RequestType.PREEMPTIBLE))
        sim.run(until=5.0)
        # A competing non-preemptible request means the stubborn application
        # must give nodes back; it never does, so the RMS kills it.
        rms.connect(polite, "polite")
        rms.submit("polite", Request("cluster0", 6, math.inf, RequestType.NON_PREEMPTIBLE))
        sim.run(until=60.0)
        assert stubborn.killed_reason is not None

    def test_invalid_configuration_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CooRMv2(Platform.single_cluster(4), sim, rescheduling_interval=-1.0)
