"""The ``python -m repro policy`` command group.

Commands::

    python -m repro policy list
    python -m repro policy describe NAME [--json]
    python -m repro policy stages

``list`` fronts the policy registry with one line per registered policy;
``describe`` prints a policy's stage composition and documentation;
``stages`` enumerates the individual stage implementations a custom
policy mapping may reference.
"""
from __future__ import annotations

import argparse
import json
import sys

from ..metrics.report import format_table
from ..obs.logsetup import get_logger
from .registry import (
    backfill_names,
    describe_policy,
    get_policy,
    make_backfill,
    make_ordering,
    make_sharing,
    ordering_names,
    policy_names,
    sharing_names,
)

__all__ = ["add_policy_commands", "run_policy_command"]

_LOG = get_logger("policy")


def add_policy_commands(commands: argparse._SubParsersAction) -> None:
    """Attach the ``policy`` command group to the top-level CLI parser."""
    policy = commands.add_parser(
        "policy", help="inspect the scheduling-policy registry"
    )
    actions = policy.add_subparsers(dest="action", required=True)

    actions.add_parser("list", help="list registered policies")

    describe = actions.add_parser(
        "describe", help="show one policy's stage composition"
    )
    describe.add_argument("name", help="registered policy name")
    describe.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    actions.add_parser("stages", help="list individual stage implementations")


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    _LOG.debug("listing %d registered policies", len(policy_names()))
    for name in policy_names():
        entry = describe_policy(name)
        rows.append(
            (
                name,
                entry["ordering"],
                entry["backfill"],
                entry["sharing"],
                entry["description"],
            )
        )
    print(format_table(["policy", "ordering", "backfill", "sharing", "description"], rows))
    return 0


def _first_doc_line(obj) -> str:
    doc = (obj.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def _cmd_describe(args: argparse.Namespace) -> int:
    try:
        policy = get_policy(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(policy.to_dict(), indent=2, sort_keys=True))
        return 0
    print(policy.describe())
    print()
    rows = [
        ("ordering", policy.ordering.name, _first_doc_line(policy.ordering)),
        ("backfill", policy.backfill.name, _first_doc_line(policy.backfill)),
        ("sharing", policy.sharing.name, _first_doc_line(policy.sharing)),
    ]
    print(format_table(["stage", "implementation", "behaviour"], rows))
    return 0


def _cmd_stages(_args: argparse.Namespace) -> int:
    rows = []
    for name in ordering_names():
        rows.append(("ordering", name, _first_doc_line(make_ordering(name))))
    for name in backfill_names():
        rows.append(("backfill", name, _first_doc_line(make_backfill(name))))
    for name in sharing_names():
        rows.append(("sharing", name, _first_doc_line(make_sharing(name))))
    print(format_table(["stage", "name", "behaviour"], rows))
    return 0


def run_policy_command(args: argparse.Namespace) -> int:
    handlers = {
        "list": _cmd_list,
        "describe": _cmd_describe,
        "stages": _cmd_stages,
    }
    return handlers[args.action](args)
