#!/usr/bin/env python
"""Run one campaign twice -- serially, then over TCP workers -- and diff rows.

The distributed walk-through, one layer above plain campaign runs (for
which see ``quickstart.py``):

1. **run** a small two-scenario campaign with the in-process pool backend
   (``workers=1``), producing the reference ``runs.jsonl``;
2. **serve** the same campaign from a dist coordinator bound to an
   ephemeral TCP port, with two standalone worker processes connecting
   over length-prefixed JSON frames -- the exact setup ``python -m repro
   dist coordinator`` / ``dist worker`` gives you across machines;
3. **verify** the two stores row for row: per-run seeds come from
   ``derive_seed`` and records are canonically ordered before persist,
   so distribution must change *nothing* -- the files are byte-identical.

The same campaign runs through ``python -m repro campaign run --backend
dist --transport tcp --dist-workers 2``; this script uses the library
API so the coordinator/worker split is visible.

Run with::

    PYTHONPATH=src python examples/distributed_campaign.py
"""
from __future__ import annotations

import multiprocessing
import tempfile
from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec, ResultStore, resolve_scenarios
from repro.dist.coordinator import Coordinator, DistConfig
from repro.dist.transport import parse_endpoint
from repro.dist.worker import tcp_worker_entry

SCENARIOS = ("baseline-dynamic", "strict-equipartition")
SEEDS = 1  # one replicate per scenario keeps the walk-through quick
WORKERS = 2


def make_spec() -> CampaignSpec:
    return CampaignSpec(
        name="dist-demo",
        scenarios=tuple(resolve_scenarios(SCENARIOS)),
        seeds=SEEDS,
    )


def run_distributed(store: ResultStore) -> None:
    """Serve the campaign over TCP with external worker processes."""
    spec = make_spec()
    runner = CampaignRunner(spec, store=store)
    # workers=0: the coordinator only serves; we launch workers ourselves,
    # exactly as `python -m repro dist worker --connect HOST:PORT` would.
    coordinator = Coordinator(
        runner.tasks(), DistConfig(transport="tcp", bind="127.0.0.1:0")
    )
    host, port = parse_endpoint(coordinator.bind())
    print(f"coordinator listening on {host}:{port}, "
          f"launching {WORKERS} TCP workers")
    processes = [
        multiprocessing.Process(
            target=tcp_worker_entry,
            args=(host, port, f"demo-w{i}", {"heartbeat_interval": 2.0}),
            daemon=True,
        )
        for i in range(WORKERS)
    ]
    for process in processes:
        process.start()
    try:
        outcome = coordinator.run(workers=0)
    finally:
        for process in processes:
            process.join(timeout=5.0)
    store.save_campaign(spec, outcome.records)
    completed = int(outcome.stats["dist_completed"])
    print(f"distributed run complete: {completed} units over "
          f"{int(outcome.stats['dist_leases'])} leases")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-dist-demo-") as tmp:
        serial_store = ResultStore(Path(tmp) / "serial")
        dist_store = ResultStore(Path(tmp) / "dist")

        print(f"serial reference run ({', '.join(SCENARIOS)}, seeds={SEEDS})")
        CampaignRunner(make_spec(), store=serial_store).run(workers=1)
        serial_rows = serial_store.runs_path("dist-demo").read_bytes()

        run_distributed(dist_store)
        dist_rows = dist_store.runs_path("dist-demo").read_bytes()

        if dist_rows != serial_rows:
            print("MISMATCH: distributed rows differ from the serial run")
            return 1
        lines = serial_rows.decode("utf-8").strip().splitlines()
        print(f"byte-identical stores: {len(lines)} rows, "
              f"{len(serial_rows)} bytes each")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
