"""Observability: deterministic tracing, metrics and wall-clock profiling.

The three pillars, all **zero-cost when disabled** (instrumented code takes
its plain path unless an instrument is activated with
:func:`~repro.obs.hooks.observe`):

* :class:`EventTracer` -- sim-time structured tracing of engine event
  dispatch, scheduler decisions (ordering, fits, reservations, sharing) and
  federation routing; exports deterministically to JSONL and Chrome
  ``trace_event`` JSON (``chrome://tracing`` / Perfetto).
* :class:`MetricsRegistry` -- deterministic counters/gauges/histograms per
  run, flowing into campaign result rows and ``campaign report``.
* :class:`PhaseProfiler` -- wall-clock phase timers (trace ingest,
  scheduling, event dispatch, store writes) feeding campaign ``meta.json``
  and the ``BENCH_*.json`` perf snapshots.

On top of the instruments sits the **analytics layer**, pure functions of a
recorded trace (hence byte-identical at any worker count):

* :class:`TimelineBuilder` -- sim-time series (utilization, queue depth,
  running/waiting job counts, federation load) sampled on a fixed grid.
* :func:`build_audits` -- per-job lifecycle audits (queue wait, slowdown,
  grow/shrink counts, wait breakdown by scheduler stage).
* :class:`SLOSpec` / :func:`evaluate_slo` -- declarative service-level
  objectives evaluated per run and aggregated by ``campaign report``.
* :mod:`repro.obs.trajectory` -- the ``BENCH_*.json`` perf-trajectory
  regression gate CI runs.

``python -m repro obs`` (see :mod:`repro.obs.cli`) fronts all of it:
``summarize`` / ``export`` / ``timeline`` / ``audit`` / ``slo`` /
``report`` / ``trajectory`` / ``diff`` / ``bench``.  :func:`logging_setup`
is the shared CLI logging configuration every command group uses.
"""
from .hooks import METRICS, PROFILER, TRACER, observation_enabled, observe
from .lifecycle import JobAudit, build_audits, summarize_audits
from .logsetup import get_logger, logging_setup
from .metrics import Histogram, MetricsRegistry
from .profiler import PhaseProfiler
from .slo import DEFAULT_SLO, SLOReport, SLOSpec, evaluate_slo
from .timeline import Timeline, TimelineBuilder
from .tracer import EventTracer, TraceEvent, diff_events, load_chrome, load_jsonl

__all__ = [
    "TRACER",
    "METRICS",
    "PROFILER",
    "observation_enabled",
    "observe",
    "EventTracer",
    "TraceEvent",
    "diff_events",
    "load_jsonl",
    "load_chrome",
    "MetricsRegistry",
    "Histogram",
    "PhaseProfiler",
    "Timeline",
    "TimelineBuilder",
    "JobAudit",
    "build_audits",
    "summarize_audits",
    "SLOSpec",
    "SLOReport",
    "DEFAULT_SLO",
    "evaluate_slo",
    "logging_setup",
    "get_logger",
]
