"""The ``python -m repro obs`` command group.

Commands::

    python -m repro obs export --scenario fig9-spontaneous --seed 1
    python -m repro obs export --scenario fig9 --seed 1 --format jsonl --out t.jsonl
    python -m repro obs summarize --scenario fig9 --seed 1
    python -m repro obs timeline --scenario fig9 --seed 1
    python -m repro obs audit --scenario fig9 --seed 1
    python -m repro obs slo --scenario fig9 --seed 1 --spec default
    python -m repro obs report --scenario fig9 --seed 1
    python -m repro obs trajectory --dir .
    python -m repro obs diff a.trace.jsonl b.trace.jsonl
    python -m repro obs bench --output BENCH_10.json

``export`` runs one scenario under the event tracer and writes the trace as
Chrome ``trace_event`` JSON (open it in ``chrome://tracing`` or Perfetto) or
canonical JSONL.  ``summarize`` prints the event and metric breakdown of one
run.  The analytics commands replay the deterministic trace: ``timeline``
samples sim-time series (utilization, queue depth, job counts) on a fixed
grid, ``audit`` derives per-job lifecycle statistics, ``slo`` evaluates a
declarative SLO spec (exit 1 on violation) and ``report`` renders all of it
as one text dashboard.  ``trajectory`` diffs the committed ``BENCH_*.json``
perf snapshots and fails on a rate regression.  ``diff`` compares two JSONL
traces and pinpoints the first divergence -- the exports are deterministic,
so any difference is a real behavioural difference.  ``bench`` runs the
observability benchmark suite and writes the ``BENCH_10.json`` perf snapshot
CI archives.
"""
from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, Tuple

from .hooks import observe
from .logsetup import get_logger
from .metrics import MetricsRegistry
from .tracer import EventTracer, diff_events, load_jsonl

__all__ = ["add_obs_commands", "run_obs_command"]

_LOG = get_logger("obs")


def add_obs_commands(commands: argparse._SubParsersAction) -> None:
    """Attach the ``obs`` command group to the top-level CLI parser."""
    obs = commands.add_parser(
        "obs", help="trace, summarize and benchmark the observability layer"
    )
    actions = obs.add_subparsers(dest="action", required=True)

    export = actions.add_parser(
        "export", help="run one scenario under the tracer and export the trace"
    )
    export.add_argument("--scenario", required=True, help="built-in scenario name")
    export.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    export.add_argument(
        "--scale", default=None, help="evaluation scale override (tiny/reduced/paper)"
    )
    export.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="chrome trace_event JSON (default) or canonical JSONL",
    )
    export.add_argument(
        "--out", default=None, help="output file (default: stdout)"
    )

    summarize = actions.add_parser(
        "summarize", help="run one scenario and print its event/metric breakdown"
    )
    summarize.add_argument("--scenario", required=True, help="built-in scenario name")
    summarize.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    summarize.add_argument(
        "--scale", default=None, help="evaluation scale override (tiny/reduced/paper)"
    )

    def scenario_command(name: str, help_text: str) -> argparse.ArgumentParser:
        parser = actions.add_parser(name, help=help_text)
        parser.add_argument(
            "--scenario", required=True, help="built-in scenario name"
        )
        parser.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
        parser.add_argument(
            "--scale", default=None,
            help="evaluation scale override (tiny/reduced/paper)",
        )
        parser.add_argument(
            "--json", action="store_true", help="emit canonical JSON instead of text"
        )
        parser.add_argument("--out", default=None, help="output file (default: stdout)")
        return parser

    timeline = scenario_command(
        "timeline", "sample one run's sim-time series on a fixed grid"
    )
    timeline.add_argument(
        "--samples", type=int, default=None,
        help="grid intervals (default 60); the grid has samples+1 points",
    )

    scenario_command("audit", "derive per-job lifecycle audits from one run")

    slo = scenario_command(
        "slo", "evaluate one run against an SLO spec (exit 1 on violation)"
    )
    slo.add_argument(
        "--spec", default="default",
        help="'default' or a path to an SLO spec JSON file",
    )

    scenario_command(
        "report", "render timeline + audits + SLO of one run as a text dashboard"
    )

    trajectory = actions.add_parser(
        "trajectory", help="diff BENCH_*.json perf snapshots; fail on regression"
    )
    trajectory.add_argument(
        "--dir", default=".", help="directory holding the BENCH_*.json snapshots"
    )
    trajectory.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional rate drop before failing (default 0.5)",
    )
    trajectory.add_argument(
        "--self-test", action="store_true",
        help="verify the gate trips on a synthetic regression, then exit",
    )

    diff = actions.add_parser(
        "diff", help="compare two JSONL trace exports, pinpointing divergence"
    )
    diff.add_argument("trace_a", help="first JSONL trace file")
    diff.add_argument("trace_b", help="second JSONL trace file")

    bench = actions.add_parser(
        "bench", help="run the observability benchmark suite (BENCH_10.json)"
    )
    bench.add_argument(
        "--output", default=None, help="write the JSON report to this file"
    )
    bench.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per benchmark"
    )
    bench.add_argument(
        "--no-check", action="store_true",
        help="report floors without failing on a violation",
    )


def _traced_run(
    scenario: str, seed: int, scale
) -> Tuple[EventTracer, MetricsRegistry, Dict]:
    """Run one scenario under tracer + metrics; returns both instruments."""
    from ..campaign import builtin  # noqa: F401  (registers the runners)
    from ..campaign.registry import consume_provenance, get_runner, resolve_scenarios

    spec = resolve_scenarios([scenario], scale=scale)[0]
    runner = get_runner(spec.runner)
    tracer = EventTracer()
    registry = MetricsRegistry()
    consume_provenance()
    with observe(tracer=tracer, metrics=registry):
        metrics = dict(runner(spec, seed))
    consume_provenance()
    return tracer, registry, metrics


def _cmd_export(args: argparse.Namespace) -> int:
    try:
        tracer, _registry, _metrics = _traced_run(args.scenario, args.seed, args.scale)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    text = tracer.to_chrome(label=f"repro {args.scenario} seed={args.seed}")
    if args.format == "jsonl":
        text = tracer.to_jsonl()
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        _LOG.info(
            "%d events (%s) -> %s", len(tracer), args.format, args.out
        )
        print(args.out)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from ..metrics.report import format_table

    try:
        tracer, registry, metrics = _traced_run(args.scenario, args.seed, args.scale)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    dropped = tracer.summary()["dropped"]
    truncation = f" ({dropped} dropped past max_events)" if dropped else ""
    print(
        f"scenario {args.scenario!r} seed={args.seed}: "
        f"{len(tracer)} trace events{truncation}, {len(registry)} metrics"
    )
    event_rows = [
        (cat, name, count)
        for (cat, name), count in sorted(tracer.count_by().items())
    ]
    if event_rows:
        print()
        print(format_table(["category", "event", "count"], event_rows))
    if len(registry):
        print()
        print(format_table(["metric", "value"], registry.rows()))
    if metrics:
        print()
        print(
            format_table(
                ["simulation metric", "value"], sorted(metrics.items())
            )
        )
    return 0


def _emit(args: argparse.Namespace, text: str) -> None:
    """Write a command's output to ``--out`` or stdout."""
    if args.out:
        Path(args.out).write_text(
            text if text.endswith("\n") else text + "\n", encoding="utf-8"
        )
        print(args.out)
    else:
        print(text)


def _analytics_run(args: argparse.Namespace):
    """Traced run + timeline + audits; shared by the analytics commands."""
    from .lifecycle import build_audits
    from .timeline import DEFAULT_SAMPLES, TimelineBuilder

    tracer, _registry, _metrics = _traced_run(args.scenario, args.seed, args.scale)
    samples = getattr(args, "samples", None) or DEFAULT_SAMPLES
    timeline = TimelineBuilder(samples=samples).build(tracer.events)
    audits = build_audits(tracer.events)
    return tracer, timeline, audits


def _timeline_text(timeline) -> str:
    from .timeline import sparkline

    lines = [
        f"timeline: t=[{timeline.t0:g}, {timeline.t1:g}]s, "
        f"{timeline.samples} intervals, {timeline.event_count} events, "
        "capacity "
        + (
            ", ".join(f"{k}={v}" for k, v in sorted(timeline.capacity.items()))
            or "unknown"
        )
    ]
    width = max(len(name) for name in timeline.series) if timeline.series else 0
    for name in sorted(timeline.series):
        stats = timeline.stats(name)
        lines.append(
            f"  {name:<{width}}  {sparkline(timeline.series[name])}  "
            f"min={stats['min']:g} mean={stats['mean']:.2f} max={stats['max']:g}"
        )
    return "\n".join(lines)


def _cmd_timeline(args: argparse.Namespace) -> int:
    try:
        _tracer, timeline, _audits = _analytics_run(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    _emit(args, timeline.to_json() if args.json else _timeline_text(timeline))
    return 0


def _audit_text(audits) -> str:
    from ..metrics.report import format_table
    from .lifecycle import summarize_audits

    def fmt(value, precision: str = ".1f"):
        return "-" if value is None else format(value, precision)

    rows = [
        (
            a.app,
            fmt(a.queue_wait),
            fmt(a.runtime),
            fmt(a.bounded_slowdown, ".3f"),
            a.grows,
            a.shrinks,
            f"{a.node_seconds:.0f}",
            "killed" if a.killed else ("done" if a.end_ts is not None else "open"),
        )
        for a in audits
    ]
    table = format_table(
        ["job", "wait s", "runtime s", "slowdown", "grows", "shrinks", "node-s", "state"],
        rows,
    )
    summary = summarize_audits(audits)
    summary_table = format_table(["statistic", "value"], sorted(summary.items()))
    return f"{table}\n\n{summary_table}"


def _cmd_audit(args: argparse.Namespace) -> int:
    from .lifecycle import audits_to_json

    try:
        _tracer, _timeline, audits = _analytics_run(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    _emit(args, audits_to_json(audits) if args.json else _audit_text(audits))
    return 0


def _slo_text(report) -> str:
    lines = [
        f"SLO spec {report.spec_name!r}: "
        f"{'PASS' if report.passed else 'FAIL'} "
        f"({report.violations} violation(s), {len(report.evaluated)} evaluated)"
    ]
    for r in report.results:
        kind = r["kind"]
        if r.get("skipped"):
            lines.append(f"  [skip] {kind}: not measurable with these inputs")
            continue
        verdict = "ok  " if r["ok"] else "FAIL"
        thresholds = ", ".join(
            f"{k}={v}" for k, v in r.items() if k not in ("kind", "measured", "ok")
        )
        lines.append(f"  [{verdict}] {kind}: measured {r['measured']:g} ({thresholds})")
    return "\n".join(lines)


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from .slo import DEFAULT_SLO, SLOSpec, evaluate_slo

    try:
        spec = DEFAULT_SLO if args.spec == "default" else SLOSpec.load(args.spec)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        _tracer, timeline, audits = _analytics_run(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    report = evaluate_slo(spec, audits, timeline)
    _emit(
        args,
        json.dumps(report.to_dict(), sort_keys=True, allow_nan=False)
        if args.json
        else _slo_text(report),
    )
    return 0 if report.passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from .slo import DEFAULT_SLO, evaluate_slo

    try:
        tracer, timeline, audits = _analytics_run(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    slo_report = evaluate_slo(DEFAULT_SLO, audits, timeline)
    if args.json:
        _emit(
            args,
            json.dumps(
                {
                    "scenario": args.scenario,
                    "seed": args.seed,
                    "trace": tracer.summary(),
                    "timeline": timeline.to_dict(),
                    "audits": [a.to_dict() for a in audits],
                    "slo": slo_report.to_dict(),
                },
                sort_keys=True,
                allow_nan=False,
            ),
        )
        return 0
    trace = tracer.summary()
    truncation = f" ({trace['dropped']} dropped)" if trace["dropped"] else ""
    sections = [
        f"== obs report: scenario {args.scenario!r} seed={args.seed} ==",
        f"trace: {trace['events']} events{truncation}",
        "",
        _timeline_text(timeline),
        "",
        f"-- job lifecycle ({len(audits)} jobs) --",
        _audit_text(audits),
        "",
        _slo_text(slo_report),
    ]
    _emit(args, "\n".join(sections))
    return 0


def _cmd_trajectory(args: argparse.Namespace) -> int:
    from .trajectory import (
        DEFAULT_TOLERANCE,
        format_report,
        load_trajectory,
        self_test,
        trajectory_report,
    )

    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    if args.self_test:
        report = self_test(tolerance=tolerance)
        ok = report["self_test_ok"]
        print(
            "trajectory gate self-test: "
            + ("OK (synthetic regression detected)" if ok else "FAILED")
        )
        return 0 if ok else 1
    try:
        snapshots = load_trajectory(args.dir)
        report = trajectory_report(snapshots, tolerance=tolerance)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(report))
    return 0 if report["passed"] else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        events_a = load_jsonl(Path(args.trace_a).read_text(encoding="utf-8"))
        events_b = load_jsonl(Path(args.trace_b).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lines = diff_events(events_a, events_b)
    if not lines:
        print(f"identical: {len(events_a)} events")
        return 0
    for line in lines:
        print(line)
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench import run_bench

    try:
        report = run_bench(
            output=args.output,
            repeats=args.repeats,
            check_floors=not args.no_check,
        )
    except AssertionError as exc:
        print(f"benchmark floor violation: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        _LOG.info("report written to %s", args.output)
    return 0


def run_obs_command(args: argparse.Namespace) -> int:
    handlers = {
        "export": _cmd_export,
        "summarize": _cmd_summarize,
        "timeline": _cmd_timeline,
        "audit": _cmd_audit,
        "slo": _cmd_slo,
        "report": _cmd_report,
        "trajectory": _cmd_trajectory,
        "diff": _cmd_diff,
        "bench": _cmd_bench,
    }
    return handlers[args.action](args)
