"""Resolving declarative trace sources into concrete traces.

A campaign scenario never embeds a trace; it *describes* one -- either a
path to an SWF file or the parameters of a statistical model -- plus an
optional transformation chain and an adaptive-conversion mix.  This module
turns such a description into jobs, recording the full derivation (source
fingerprint, model parameters, every transformation, the mix) as provenance
that the campaign result store persists next to the metrics.
"""
from __future__ import annotations

import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.textio import read_trace_text
from .serde import from_strict_dict
from ..sim.randomness import derive_seed, stable_fingerprint
from .convert import AdaptiveMix, ConvertedJob, convert_trace, mix_counts
from .models import TraceModel
from .swf import Trace, loads_swf
from .transform import Pipeline

__all__ = ["TraceSource", "resolve_trace", "resolve_converted_jobs"]

#: Jobs synthesized from a model source when *job_count* is unset.
DEFAULT_JOB_COUNT = 100


@dataclass(frozen=True)
class TraceSource:
    """Declarative description of where a workload trace comes from.

    Exactly one of *path* (an SWF file, optionally gzip-compressed) and
    *model* (a :class:`~repro.traces.models.TraceModel` dictionary) must be
    given.  *job_count* applies to model sources only -- how many jobs to
    synthesize (default 100); a file replays in full.  *transforms* is a
    list of transformation dictionaries applied in order (see
    :mod:`repro.traces.transform`); *mix* optionally converts the rigid
    records into adaptive applications
    (see :class:`~repro.traces.convert.AdaptiveMix`).  The whole object
    round-trips through JSON, so scenario specs stay declarative.
    """

    path: Optional[str] = None
    model: Optional[Mapping] = None
    job_count: Optional[int] = None
    transforms: Tuple[Mapping, ...] = ()
    mix: Optional[Mapping] = None
    strict: bool = True

    def __post_init__(self) -> None:
        if (self.path is None) == (self.model is None):
            raise ValueError("exactly one of path/model must be given")
        if self.path is not None and self.job_count is not None:
            # A file replays in full; accepting the knob would silently
            # persist a job count the replay ignores.
            raise ValueError("job_count only applies to model-backed sources")
        if self.job_count is not None and self.job_count <= 0:
            raise ValueError("job_count must be positive")
        if self.model is not None:
            object.__setattr__(self, "model", dict(self.model))
            TraceModel.from_dict(self.model)  # validate eagerly
        object.__setattr__(
            self, "transforms", tuple(dict(t) for t in self.transforms)
        )
        Pipeline.from_dicts(self.transforms)  # validate eagerly
        if self.mix is not None:
            object.__setattr__(self, "mix", dict(self.mix))
            AdaptiveMix.from_dict(self.mix)  # validate eagerly

    def to_dict(self) -> Dict:
        data: Dict = {
            "path": self.path,
            "model": None if self.model is None else dict(self.model),
            "job_count": self.job_count,
            "transforms": [dict(t) for t in self.transforms],
            "mix": None if self.mix is None else dict(self.mix),
            "strict": self.strict,
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceSource":
        kwargs = dict(data)
        if kwargs.get("transforms") is not None:
            kwargs["transforms"] = tuple(kwargs["transforms"])
        else:
            kwargs.pop("transforms", None)
        return from_strict_dict(cls, kwargs, ignore=())


@lru_cache(maxsize=8)
def _load_file_trace(path_str: str, strict: bool, transforms_json: str) -> Trace:
    """Load, fingerprint and transform an SWF file, cached per process.

    Every (scenario, seed) run of a campaign resolves its trace source, but
    a file-backed trace is seed-independent -- including its transformation
    pipeline -- so re-reading, re-parsing and re-transforming a
    multi-megabyte archive trace per run would dominate the replay.  The
    pipeline enters as canonical JSON because tuples of dictionaries are
    unhashable.  The returned :class:`Trace` is frozen and its consumers
    never mutate it, so sharing one instance across runs in a worker
    process is safe.  The flip side: a file edited in place during the
    process's lifetime is not re-read (the recorded fingerprint still
    names the content replayed).
    """
    text = read_trace_text(path_str)
    trace = loads_swf(text, strict=strict, source=path_str)
    # Fingerprint the decompressed content just read: renamed or
    # silently-edited inputs become visible in the result store.
    trace = trace.with_step(
        {"kind": "fingerprint", "sha256_16": stable_fingerprint(text)}
    )
    return Pipeline.from_dicts(json.loads(transforms_json)).apply(trace)


def resolve_trace(source: TraceSource, seed: Optional[int] = None) -> Trace:
    """Load or synthesize the trace a :class:`TraceSource` describes.

    File-backed sources ignore *seed* entirely (replaying a file is
    deterministic by definition); model-backed sources derive their
    synthesis seed as ``derive_seed(seed, "trace-synth")`` so the trace is a
    pure function of the scenario seed, independent of execution order.
    """
    if source.path is not None:
        return _load_file_trace(
            str(source.path),
            source.strict,
            json.dumps(list(source.transforms), sort_keys=True),
        )
    model = TraceModel.from_dict(source.model)
    trace = model.synthesize(
        source.job_count if source.job_count is not None else DEFAULT_JOB_COUNT,
        seed=derive_seed(seed, "trace-synth"),
    )
    return Pipeline.from_dicts(source.transforms).apply(trace)


def resolve_converted_jobs(
    source: TraceSource,
    seed: Optional[int] = None,
    max_nodes: Optional[int] = None,
) -> Tuple[List[ConvertedJob], Dict]:
    """Resolve a source all the way to converted jobs plus their provenance.

    Returns ``(jobs, provenance)`` where *provenance* is the JSON-friendly
    record the campaign layer stores next to the run metrics: the source
    description, the applied pipeline steps and the realised kind counts.
    """
    trace = resolve_trace(source, seed=seed)
    mix = AdaptiveMix() if source.mix is None else AdaptiveMix.from_dict(source.mix)
    jobs = convert_trace(
        trace, mix=mix, seed=derive_seed(seed, "trace-convert"), max_nodes=max_nodes
    )
    provenance = {
        "source": source.to_dict(),
        "steps": [dict(step) for step in trace.provenance],
        "kind_counts": mix_counts(jobs),
        "job_count": len(jobs),
    }
    return jobs, provenance
