#!/usr/bin/env python
"""Run the fed-hetero3 scenario under a custom crash/outage fault plan.

The chaos walk-through, one layer above plain federation runs (for which
see ``federated_trace_campaign.py``):

1. **declare** a :class:`FaultPlan` -- a partial crash on the ``large``
   member, a whole-cluster outage on ``medium`` with a later recovery,
   and admission control so placements reroute around the unhealthy
   members while their circuit breakers are open;
2. **run** the built-in ``fed-hetero3`` scenario (adaptive trace mix over
   three heterogeneous clusters) with the plan armed, at the scenario's
   canonical campaign seed;
3. **report** the recovery metrics the injector keeps: time-to-recover,
   SLA attainment, jobs lost / rescheduled / rejected, breaker trips.

Faults are first-class simulation events driven by ``derive_seed``, so
this script prints byte-identical numbers on every run.  The same plans
run inside campaigns (``--scenarios fed-chaos-dual``) and ad hoc via
``python -m repro federation run --faults blackout``.

Run with::

    PYTHONPATH=src python examples/chaos_federation.py
"""
from __future__ import annotations

from dataclasses import replace

from repro.campaign import builtin  # noqa: F401  (registers the scenarios)
from repro.campaign.registry import builtin_scenarios, get_runner
from repro.faults import AdmissionSpec, FaultEvent, FaultPlan
from repro.metrics import format_table
from repro.sim.randomness import derive_seed

SCENARIO = "fed-hetero3"

#: A hand-written plan against the hetero3 topology (small/medium/large):
#: the big member loses half its nodes early, the mid-size member blacks
#: out entirely for 20 sim-minutes, and everything is back by t=2400.
PLAN = FaultPlan(
    name="hetero3-chaos",
    events=(
        FaultEvent(time=600.0, kind="crash", member="large", nodes=32),
        FaultEvent(time=900.0, kind="outage", member="medium"),
        FaultEvent(time=2100.0, kind="recover", member="medium"),
        FaultEvent(time=2400.0, kind="restart", member="large", nodes=32),
    ),
    admission=AdmissionSpec(failure_threshold=3, cooldown=300.0),
    max_respawns=1,
)


def main() -> int:
    spec = replace(builtin_scenarios()[SCENARIO], faults=PLAN)
    seed = derive_seed(0, SCENARIO, 0)

    print(f"Scenario {SCENARIO!r} under fault plan {PLAN.label()!r}, seed {seed}")
    metrics = dict(get_runner(spec.runner)(spec, seed))

    fault_rows = sorted(
        (k, v) for k, v in metrics.items() if k.startswith("fault_")
    )
    print()
    print(format_table(["fault metric", "value"], fault_rows))
    print()
    print(f"time to recover:   {metrics['fault_time_to_recover']:.0f} s "
          f"(mean over {metrics['fault_recovered_count']:.0f} degradation spans)")
    print(f"SLA attainment:    {metrics['fault_sla_attainment_pct']:.2f} % "
          f"of offered jobs neither lost nor rejected")
    print(f"jobs rescheduled:  {metrics['fault_jobs_rescheduled']:.0f}, "
          f"lost: {metrics['fault_jobs_lost']:.0f}, "
          f"rejected: {metrics['fault_jobs_rejected']:.0f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
