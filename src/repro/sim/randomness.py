"""Seeded random-number utilities for reproducible simulations.

All stochastic components of the library (the AMR working-set model, workload
generators, experiment replications) draw their randomness through
:class:`RandomSource` so that every experiment is exactly reproducible from a
single integer seed.
"""
from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

__all__ = ["RandomSource", "spawn_streams"]


class RandomSource:
    """Thin, documented wrapper around :class:`numpy.random.Generator`."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying numpy generator (for vectorised draws)."""
        return self._rng

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in the closed interval ``[low, high]``."""
        return int(self._rng.integers(low, high + 1))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def gaussian(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._rng.normal(mean, std))

    def gaussian_array(self, mean: float, std: float, size: int) -> np.ndarray:
        return self._rng.normal(mean, std, size)

    def exponential(self, mean: float) -> float:
        return float(self._rng.exponential(mean))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._rng.lognormal(mean, sigma))

    def choice(self, options: Sequence):
        return options[int(self._rng.integers(0, len(options)))]

    def spawn(self) -> "RandomSource":
        """Derive an independent child stream (stable under numpy spawning)."""
        child_seed = int(self._rng.integers(0, 2**31 - 1))
        return RandomSource(child_seed)


def spawn_streams(seed: Optional[int], count: int) -> Iterator[RandomSource]:
    """Yield *count* independent :class:`RandomSource` streams from one seed."""
    root = RandomSource(seed)
    for _ in range(count):
        yield root.spawn()
