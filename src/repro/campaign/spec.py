"""Declarative scenario and campaign specifications.

A *scenario* describes one simulated configuration -- platform, workload mix,
RMS configuration and the runner that executes it -- while a *campaign*
groups scenarios with a seed range and parallelism settings.  Both are plain
frozen dataclasses that round-trip losslessly through dictionaries and JSON,
so campaigns can be written by hand, versioned next to the results they
produced, and replayed later.

The specs deliberately describe *what* to simulate, never *how*:
execution lives in :mod:`repro.campaign.runner` and the built-in scenario
definitions in :mod:`repro.campaign.builtin`.
"""
from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..experiments.runner import EvaluationScale
from ..faults.plan import FaultPlan, get_fault_plan
from ..federation.routing import make_routing
from ..federation.spec import FederationSpec
from ..policies.registry import policy_label, resolve_policy
from ..traces.source import TraceSource

__all__ = [
    "SCALE_NAMES",
    "PlatformSpec",
    "WorkloadSpec",
    "RmsSpec",
    "ScenarioSpec",
    "CampaignSpec",
    "resolve_scale",
]

#: Named evaluation scales (constructors on :class:`EvaluationScale`).
SCALE_NAMES: Tuple[str, ...] = ("tiny", "reduced", "paper")


def _jsonify(value):
    """Convert tuples to lists recursively so ``to_dict`` is JSON-canonical."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    return value


def _filter_kwargs(cls, data: Mapping) -> Dict:
    """Keep only keys that are fields of *cls*, rejecting unknown ones."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"{cls.__name__} does not understand field(s): {sorted(unknown)}"
        )
    return dict(data)


@dataclass(frozen=True)
class PlatformSpec:
    """Where the scenario runs.

    ``cluster_nodes == 0`` means "derive the cluster size from the evolving
    application's pre-allocation times *cluster_headroom*", which is how the
    paper sizes its platform.
    """

    cluster_nodes: int = 0
    cluster_headroom: float = 1.16

    def __post_init__(self) -> None:
        if self.cluster_nodes < 0:
            raise ValueError("cluster_nodes must be >= 0 (0 = derive)")
        if self.cluster_headroom < 1.0:
            raise ValueError("cluster_headroom must be >= 1")

    def to_dict(self) -> Dict:
        return _jsonify(asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlatformSpec":
        return cls(**_filter_kwargs(cls, data))


@dataclass(frozen=True)
class WorkloadSpec:
    """The application mix submitted to the RMS.

    The default is the paper's evaluation workload: one non-predictably
    evolving AMR application plus the PSA(s) of the active scale.  Rigid
    batch jobs (generated or replayed from a trace file) can be layered on
    top to exercise mixed classical + evolving load.
    """

    #: Submit the evolving AMR application (the paper's NEA).
    include_amr: bool = True
    #: PSA task durations, seconds.  Empty means "use the scale's PSA1"
    #: while the AMR is included, and "no PSAs" in AMR-free scenarios.
    psa_task_durations: Tuple[float, ...] = ()
    #: Pre-allocation overcommit factor of the AMR (Figure 9's x-axis).
    overcommit: float = 1.0
    #: Announce interval of AMR updates, seconds (0 = spontaneous).
    announce_interval: float = 0.0
    #: Force the AMR to hold its whole pre-allocation (static baseline).
    static_allocation: bool = False
    #: Number of background rigid batch jobs (0 = none).
    rigid_job_count: int = 0
    #: Largest rigid job, nodes.
    rigid_max_nodes: int = 32
    #: Mean inter-arrival time of rigid jobs, seconds.
    rigid_mean_interarrival: float = 400.0
    #: Median runtime of rigid jobs, seconds (their tail is capped at 10x).
    rigid_runtime_median: float = 1800.0
    #: Optional SWF-like trace file to replay instead of generated rigid jobs.
    trace_path: Optional[str] = None
    #: Full declarative trace source (SWF path or statistical model, plus a
    #: transformation chain and an adaptive-kind mix); supersedes the plain
    #: ``trace_path`` replay.  Dictionaries are promoted to
    #: :class:`~repro.traces.source.TraceSource` on construction.
    trace: Optional[TraceSource] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "psa_task_durations", tuple(float(d) for d in self.psa_task_durations)
        )
        if self.trace is not None and not isinstance(self.trace, TraceSource):
            object.__setattr__(self, "trace", TraceSource.from_dict(self.trace))
        if self.trace is not None and self.trace_path is not None:
            raise ValueError("give either trace or trace_path, not both")
        if any(d <= 0 for d in self.psa_task_durations):
            raise ValueError("psa_task_durations must be positive")
        if self.overcommit <= 0:
            raise ValueError("overcommit must be positive")
        if self.announce_interval < 0:
            raise ValueError("announce_interval must be >= 0")
        if self.rigid_job_count < 0:
            raise ValueError("rigid_job_count must be >= 0")
        if self.rigid_runtime_median <= 0:
            raise ValueError("rigid_runtime_median must be positive")

    def to_dict(self) -> Dict:
        data = _jsonify(asdict(self))
        data["trace"] = None if self.trace is None else self.trace.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadSpec":
        kwargs = _filter_kwargs(cls, data)
        if "psa_task_durations" in kwargs:
            kwargs["psa_task_durations"] = tuple(kwargs["psa_task_durations"])
        if kwargs.get("trace") is not None:
            kwargs["trace"] = TraceSource.from_dict(kwargs["trace"])
        return cls(**kwargs)


@dataclass(frozen=True)
class RmsSpec:
    """Configuration of the CooRMv2 RMS under test."""

    rescheduling_interval: float = 1.0
    strict_equipartition: bool = False
    kill_protocol_violators: bool = False
    violation_grace: float = 30.0

    def __post_init__(self) -> None:
        if self.rescheduling_interval < 0:
            raise ValueError("rescheduling_interval must be >= 0")
        if self.violation_grace < 0:
            raise ValueError("violation_grace must be >= 0")

    def to_dict(self) -> Dict:
        return _jsonify(asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping) -> "RmsSpec":
        return cls(**_filter_kwargs(cls, data))


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully-described simulation scenario.

    ``runner`` names an executor registered in
    :mod:`repro.campaign.registry` (``amr_psa`` is the generic paper
    scenario; ``fig1`` ... ``fig11`` reproduce the paper's figures).
    ``params`` carries runner-specific knobs such as the overcommit sweep of
    Figure 9.  ``metrics`` optionally restricts which metric keys are kept
    in the result records (empty = keep everything).
    """

    name: str
    runner: str = "amr_psa"
    scale: str = "tiny"
    description: str = ""
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    rms: RmsSpec = field(default_factory=RmsSpec)
    params: Mapping[str, object] = field(default_factory=dict)
    metrics: Tuple[str, ...] = ()
    #: Scheduling policy of the simulated RMS: a registered policy name
    #: (see ``python -m repro policy list``) or a declarative stage mapping
    #: (``{"ordering": ..., "backfill": ..., "sharing": ...}``).  ``None``
    #: keeps the paper's default composition (Algorithm 4).
    policy: Optional[Union[str, Mapping]] = None
    #: Multi-cluster federation topology + routing policy (see
    #: :class:`~repro.federation.spec.FederationSpec`).  ``None`` runs the
    #: classic single-scheduler path; dictionaries are promoted on
    #: construction so specs stay JSON-writable.
    federation: Optional[FederationSpec] = None
    #: Fault plan armed against the federation: a registered plan name
    #: (see ``repro.faults.plan``), a plan dictionary (promoted to
    #: :class:`~repro.faults.plan.FaultPlan`) or a plan instance.
    #: Requires ``federation``; ``None`` runs fault-free.
    faults: Optional[Union[str, FaultPlan]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must not be empty")
        if not self.runner:
            raise ValueError("scenario runner must not be empty")
        if self.scale not in SCALE_NAMES:
            raise ValueError(f"scale must be one of {SCALE_NAMES}, got {self.scale!r}")
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "metrics", tuple(str(m) for m in self.metrics))
        if self.policy is not None:
            if isinstance(self.policy, Mapping):
                object.__setattr__(self, "policy", _jsonify(dict(self.policy)))
            elif not isinstance(self.policy, str):
                raise ValueError(
                    "policy must be a registered name or a stage mapping, "
                    f"got {self.policy!r}"
                )
            resolve_policy(self.policy)  # fail fast on unknown names/stages
        if self.federation is not None and not isinstance(self.federation, FederationSpec):
            object.__setattr__(
                self, "federation", FederationSpec.from_dict(self.federation)
            )
        if self.faults is not None:
            if isinstance(self.faults, str):
                get_fault_plan(self.faults)  # fail fast on unknown plan names
            elif isinstance(self.faults, Mapping):
                object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))
            elif not isinstance(self.faults, FaultPlan):
                raise ValueError(
                    "faults must be a registered plan name, a plan mapping or "
                    f"a FaultPlan, got {self.faults!r}"
                )
            if self.federation is None:
                raise ValueError(
                    f"scenario {self.name!r} declares a fault plan but no "
                    f"federation; fault injection targets federation members"
                )

    def with_scale(self, scale: str) -> "ScenarioSpec":
        return replace(self, scale=scale)

    def with_policy(self, policy: Union[str, Mapping]) -> "ScenarioSpec":
        """This scenario under another scheduling policy, suffix-renamed so
        a policy matrix never produces duplicate scenario names."""
        return replace(self, name=f"{self.name}@{policy_label(policy)}", policy=policy)

    def with_routing(self, routing: str) -> "ScenarioSpec":
        """This (federated) scenario under another routing policy,
        suffix-renamed so a routing matrix never duplicates names."""
        if self.federation is None:
            raise ValueError(
                f"scenario {self.name!r} has no federation; routing matrices "
                f"only apply to federated scenarios"
            )
        return replace(
            self,
            name=f"{self.name}+{routing}",
            federation=self.federation.with_routing(routing),
        )

    @property
    def policy_name(self) -> str:
        """Display name of the scenario's policy (default when unset)."""
        return policy_label(self.policy)

    @property
    def routing_name(self) -> str:
        """The federation's routing policy name ('' when not federated)."""
        return "" if self.federation is None else self.federation.routing

    @property
    def topology_label(self) -> str:
        """Compact federation topology label ('' when not federated)."""
        return "" if self.federation is None else self.federation.label()

    @property
    def trace(self) -> Optional[TraceSource]:
        """The scenario's declarative trace source, if any."""
        return self.workload.trace

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "runner": self.runner,
            "scale": self.scale,
            "description": self.description,
            "platform": self.platform.to_dict(),
            "workload": self.workload.to_dict(),
            "rms": self.rms.to_dict(),
            "params": _jsonify(dict(self.params)),
            "metrics": list(self.metrics),
            "policy": self.policy,
            "federation": None if self.federation is None else self.federation.to_dict(),
            "faults": (
                self.faults.to_dict()
                if isinstance(self.faults, FaultPlan)
                else self.faults
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        kwargs = _filter_kwargs(cls, data)
        if "platform" in kwargs:
            kwargs["platform"] = PlatformSpec.from_dict(kwargs["platform"])
        if "workload" in kwargs:
            kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"])
        if "rms" in kwargs:
            kwargs["rms"] = RmsSpec.from_dict(kwargs["rms"])
        if "metrics" in kwargs:
            kwargs["metrics"] = tuple(kwargs["metrics"])
        if kwargs.get("federation") is not None:
            kwargs["federation"] = FederationSpec.from_dict(kwargs["federation"])
        return cls(**kwargs)


@dataclass(frozen=True)
class CampaignSpec:
    """A set of scenarios swept over a seed range (and optionally policies).

    Every (scenario, replicate) pair becomes one run whose seed is
    ``derive_seed(root_seed, scenario.name, replicate)`` -- fully determined
    by the spec, never by execution order or worker count.

    A non-empty ``policies`` tuple turns the campaign into a policy x
    scenario x replicate matrix: every scenario is executed once per listed
    policy (named ``<scenario>@<policy>``), and the run seed is still derived
    from the *base* scenario name -- so every policy replays the exact same
    workload and the per-policy metrics are directly comparable.

    A non-empty ``routings`` tuple does the same for federated scenarios:
    every (policy-expanded) scenario additionally runs once per listed
    routing policy (named ``<scenario>+<routing>``), again with the seed
    derived from the base name, so every cell of the routing x topology
    matrix fans in the exact same workload.
    """

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    seeds: int = 1
    root_seed: int = 0
    workers: int = 1
    description: str = ""
    #: Scheduling policies to sweep every scenario over (empty = run each
    #: scenario under its own ``policy`` field, the default being Algorithm 4).
    policies: Tuple[str, ...] = ()
    #: Federation routing policies to sweep every scenario over (empty =
    #: run each scenario under its federation's own routing).  Requires
    #: every scenario in the campaign to carry a federation spec.
    routings: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must not be empty")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ValueError("campaign needs at least one scenario")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names in campaign: {names}")
        if self.seeds <= 0:
            raise ValueError("seeds must be positive")
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        object.__setattr__(self, "policies", tuple(str(p) for p in self.policies))
        if len(set(self.policies)) != len(self.policies):
            raise ValueError(f"duplicate policies in campaign: {list(self.policies)}")
        for p in self.policies:
            resolve_policy(p)  # fail fast on unknown policy names
        object.__setattr__(self, "routings", tuple(str(r) for r in self.routings))
        if len(set(self.routings)) != len(self.routings):
            raise ValueError(f"duplicate routings in campaign: {list(self.routings)}")
        for r in self.routings:
            make_routing(r)  # fail fast on unknown routing names
        if self.routings:
            unfederated = [s.name for s in self.scenarios if s.federation is None]
            if unfederated:
                raise ValueError(
                    f"routing matrix requires federated scenarios, but "
                    f"{unfederated} have no federation spec"
                )

    @property
    def run_count(self) -> int:
        return (
            len(self.scenarios)
            * max(1, len(self.policies))
            * max(1, len(self.routings))
            * self.seeds
        )

    def expanded_scenarios(self) -> Tuple[Tuple[ScenarioSpec, str], ...]:
        """The policy x routing x scenario grid as ``(variant, base_name)``.

        Without matrices every scenario maps to itself; a policy matrix
        yields one ``@<policy>`` variant per policy, a routing matrix one
        ``+<routing>`` variant per routing, and both together the full
        cross product.  Seeds must be derived from the *base* name so that
        all variants of one scenario replay identical workloads.
        """
        variants: List[Tuple[ScenarioSpec, str]] = []
        for scenario in self.scenarios:
            policy_variants = (
                [scenario.with_policy(p) for p in self.policies]
                if self.policies
                else [scenario]
            )
            for policy_variant in policy_variants:
                routing_variants = (
                    [policy_variant.with_routing(r) for r in self.routings]
                    if self.routings
                    else [policy_variant]
                )
                variants.extend((v, scenario.name) for v in routing_variants)
        return tuple(variants)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "scenarios": [s.to_dict() for s in self.scenarios],
            "seeds": self.seeds,
            "root_seed": self.root_seed,
            "workers": self.workers,
            "description": self.description,
            "policies": list(self.policies),
            "routings": list(self.routings),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        kwargs = _filter_kwargs(cls, data)
        kwargs["scenarios"] = tuple(
            ScenarioSpec.from_dict(s) for s in kwargs.get("scenarios", ())
        )
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def resolve_scale(spec: ScenarioSpec) -> EvaluationScale:
    """Build the :class:`EvaluationScale` a scenario runs at.

    The named scale supplies the size knobs; the scenario's RMS and platform
    sections override the scheduling interval and the cluster headroom.
    """
    scale: EvaluationScale = getattr(EvaluationScale, spec.scale)()
    return replace(
        scale,
        rescheduling_interval=spec.rms.rescheduling_interval,
        cluster_headroom=spec.platform.cluster_headroom,
    )
