"""Synthetic workload generation.

The paper's evaluation focuses on one evolving application plus one or two
malleable PSAs, but Section 4 shows that CooRMv2 also supports classical
rigid and moldable workloads.  This module generates such workloads (rigid
job streams with log-uniform sizes and exponential inter-arrival times, in
the spirit of the Parallel Workloads Archive models) so that integration
tests and examples can exercise the RMS under mixed load.
"""
from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Mapping, Optional

from ..sim.randomness import RandomSource

__all__ = ["RigidJobSpec", "WorkloadParameters", "generate_rigid_workload"]


@dataclass(frozen=True)
class RigidJobSpec:
    """One rigid job of a synthetic workload."""

    job_id: str
    submit_time: float
    node_count: int
    duration: float

    @property
    def area(self) -> float:
        """Node-seconds the job will consume."""
        return self.node_count * self.duration


@dataclass(frozen=True)
class WorkloadParameters:
    """Knobs of the rigid-workload generator."""

    #: Number of jobs to generate.
    job_count: int = 100
    #: Mean inter-arrival time (exponential distribution), seconds.
    mean_interarrival: float = 300.0
    #: Smallest / largest node count (log-uniform distribution).
    min_nodes: int = 1
    max_nodes: int = 128
    #: Round node counts to powers of two (common in HPC traces).
    power_of_two_nodes: bool = True
    #: Log-normal runtime parameters (median ~ exp(mu) seconds).
    runtime_log_mean: float = math.log(1800.0)
    runtime_log_sigma: float = 1.0
    #: Hard bounds on the runtime, seconds.
    min_runtime: float = 60.0
    max_runtime: float = 86_400.0

    def __post_init__(self) -> None:
        if self.job_count <= 0:
            raise ValueError("job_count must be positive")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("node bounds must satisfy 1 <= min <= max")
        if not 0 < self.min_runtime <= self.max_runtime:
            raise ValueError("runtime bounds must satisfy 0 < min <= max")

    def to_dict(self) -> Dict:
        """JSON-friendly representation (for campaign scenario specs)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadParameters":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"WorkloadParameters does not understand field(s): {sorted(unknown)}"
            )
        return cls(**dict(data))


def generate_rigid_workload(
    params: WorkloadParameters = WorkloadParameters(),
    seed: Optional[int] = None,
    random_source: Optional[RandomSource] = None,
) -> List[RigidJobSpec]:
    """Generate a stream of rigid jobs sorted by submission time."""
    rng = random_source if random_source is not None else RandomSource(seed)
    jobs: List[RigidJobSpec] = []
    clock = 0.0
    log_min = math.log(params.min_nodes)
    log_max = math.log(params.max_nodes)
    for index in range(params.job_count):
        clock += rng.exponential(params.mean_interarrival)
        nodes = int(round(math.exp(rng.uniform(log_min, log_max))))
        nodes = max(params.min_nodes, min(params.max_nodes, nodes))
        if params.power_of_two_nodes and nodes > 0:
            nodes = 1 << (nodes.bit_length() - 1)
        runtime = rng.lognormal(params.runtime_log_mean, params.runtime_log_sigma)
        runtime = max(params.min_runtime, min(params.max_runtime, runtime))
        jobs.append(
            RigidJobSpec(
                job_id=f"job{index:04d}",
                submit_time=clock,
                node_count=nodes,
                duration=runtime,
            )
        )
    return jobs
