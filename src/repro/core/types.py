"""Fundamental enumerations and type aliases of the CooRMv2 core.

The paper (Section 3.1) defines three request types and three request
constraints.  They are modelled here as :class:`enum.Enum` members so that
invalid values are impossible to construct and comparisons are explicit.
"""
from __future__ import annotations

import enum
from typing import Union

#: Simulated time, in seconds.  ``float`` so that ``math.inf`` can represent
#: "never" / "unbounded".
Time = float

#: Node counts are plain integers.
NodeCount = int

#: Cluster identifiers are opaque strings (e.g. ``"cluster0"``).
ClusterId = str

#: Node identifiers are integers unique within a cluster.
NodeId = int

#: Anything accepted where a time is expected.
TimeLike = Union[int, float]


class RequestType(enum.Enum):
    """Type of a resource request (paper Section 3.1.1).

    * ``PREALLOCATION`` -- marks resources for possible future use; no node
      IDs are bound to it.  Written ``PA`` in the paper.
    * ``NON_PREEMPTIBLE`` -- a run-to-completion allocation (``¬P``).  Once
      started it cannot be interrupted by the RMS.
    * ``PREEMPTIBLE`` -- a best-effort allocation (``P``) that the RMS may
      shrink or revoke at any time.
    """

    PREALLOCATION = "PA"
    NON_PREEMPTIBLE = "nonP"
    PREEMPTIBLE = "P"

    @property
    def short(self) -> str:
        """Short label used in traces and log lines."""
        return {
            RequestType.PREALLOCATION: "PA",
            RequestType.NON_PREEMPTIBLE: "~P",
            RequestType.PREEMPTIBLE: "P",
        }[self]


class RelatedHow(enum.Enum):
    """Constraint between a request and its ``related_to`` request (Sec 3.1.2).

    * ``FREE`` -- the request is unconstrained; ``related_to`` is ignored.
    * ``COALLOC`` -- the request must start at the same time as its parent.
    * ``NEXT`` -- the request must start immediately after its parent ends,
      sharing common resources (node IDs are carried over).
    """

    FREE = "FREE"
    COALLOC = "COALLOC"
    NEXT = "NEXT"


class RequestState(enum.Enum):
    """Lifecycle of a request inside the RMS."""

    PENDING = "pending"      # submitted, not yet started
    STARTED = "started"      # node IDs allocated (or PA activated)
    FINISHED = "finished"    # done() called or duration elapsed
    CANCELLED = "cancelled"  # withdrawn before it started


class ApplicationKind(enum.Enum):
    """Application taxonomy used throughout the paper (Sections 1 and 4)."""

    RIGID = "rigid"
    MOLDABLE = "moldable"
    MALLEABLE = "malleable"
    EVOLVING_FULLY_PREDICTABLE = "evolving-fully-predictable"
    EVOLVING_MARGINALLY_PREDICTABLE = "evolving-marginally-predictable"
    EVOLVING_NON_PREDICTABLE = "evolving-non-predictable"


#: Sentinel meaning "time not yet decided"; the paper uses NaN for this.
UNSET_TIME: Time = float("nan")

#: Positive infinity, used for "scheduled never" and unbounded durations.
INFINITY: Time = float("inf")
