"""End-to-end million-job replay benchmark (issue 7 acceptance).

Synthesizes an SWF trace with :class:`~repro.traces.TraceModel`, round-trips
it through the text serializer (so the measured path is the same
synthesize -> dump -> parse -> replay pipeline a real trace study uses),
then replays every job through the discrete-event engine driving a
conservative back-filling queue.  The whole pipeline must finish inside a
wall-clock budget; on the overhauled kernel the full million-job run takes
well under a minute on a dev container, versus a budget of five CI minutes.

By default the benchmark runs a 100,000-job smoke (the CI benchmarks job
uses this mode); set ``BENCH_MILLION_JOBS=1`` for the full million:

    BENCH_MILLION_JOBS=1 PYTHONPATH=src python benchmarks/bench_million_jobs.py

When ``BENCH_10.json`` already exists in the working directory the phase
timings are merged into its ``million_jobs`` section.
"""
from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Dict

from repro.core.cbf import CbfJob, ConservativeBackfillQueue
from repro.sim.engine import Simulator
from repro.traces import TraceModel, dumps_swf, loads_swf

FULL_RUN = os.environ.get("BENCH_MILLION_JOBS", "") not in ("", "0")
JOB_COUNT = 1_000_000 if FULL_RUN else 100_000
#: Issue 7 acceptance: the full million must replay within five CI minutes.
BUDGET_SECONDS = 300.0 if FULL_RUN else 90.0
SEED = 7

BENCH_REPORT = "BENCH_10.json"


def _merge_into_bench_report(payload: Dict[str, object]) -> None:
    path = Path(BENCH_REPORT)
    if not path.is_file():
        return
    report = json.loads(path.read_text(encoding="utf-8"))
    report["million_jobs"] = payload
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def size_cluster(jobs) -> int:
    """Capacity from offered load: ~40% headroom keeps the queue balanced.

    A starved cluster would measure backlog growth instead of kernel speed;
    an infinite one would never exercise backfilling.
    """
    horizon = max(job.submit_time for job in jobs) or 1.0
    node_seconds = sum(job.node_count * max(job.run_time, 1.0) for job in jobs)
    widest = max(job.node_count for job in jobs)
    return max(widest, math.ceil(1.4 * node_seconds / horizon))


def replay(jobs, node_count: int) -> ConservativeBackfillQueue:
    """Feed every job through the engine into a CBF queue at its submit time."""
    sim = Simulator()
    queue = ConservativeBackfillQueue(node_count)
    submit = queue.submit
    for job in jobs:
        sim.schedule_at(
            job.submit_time,
            submit,
            CbfJob(str(job.job_number), job.node_count, max(job.run_time, 1.0), job.submit_time),
        )
    sim.run()
    return queue


def run_pipeline(job_count: int = JOB_COUNT, seed: int = SEED) -> Dict[str, float]:
    phases: Dict[str, float] = {}
    started = time.perf_counter()

    trace = TraceModel().synthesize(job_count, seed=seed)
    phases["synthesize_seconds"] = time.perf_counter() - started

    mark = time.perf_counter()
    text = dumps_swf(trace)
    phases["serialize_seconds"] = time.perf_counter() - mark

    mark = time.perf_counter()
    parsed = loads_swf(text)
    phases["ingest_seconds"] = time.perf_counter() - mark
    assert parsed.job_count == job_count

    node_count = size_cluster(parsed.jobs)
    mark = time.perf_counter()
    queue = replay(parsed.jobs, node_count)
    phases["replay_seconds"] = time.perf_counter() - mark

    phases["total_seconds"] = time.perf_counter() - started
    phases["jobs"] = float(job_count)
    phases["node_count"] = float(node_count)
    phases["jobs_per_second"] = job_count / phases["total_seconds"]

    assert len(queue.jobs) == job_count, "every job must receive a reservation"
    assert queue.makespan() > 0.0
    return phases


def test_trace_replay_within_budget():
    phases = run_pipeline()
    print(f"\n{JOB_COUNT:,}-job replay on {phases['node_count']:,.0f} nodes:")
    for phase in ("synthesize", "serialize", "ingest", "replay", "total"):
        print(f"  {phase:>10}: {phases[f'{phase}_seconds']:8.2f} s")
    print(f"  overall: {phases['jobs_per_second']:,.0f} jobs/s "
          f"(budget {BUDGET_SECONDS:.0f} s, full run: {FULL_RUN})")
    _merge_into_bench_report({**phases, "budget_seconds": BUDGET_SECONDS, "full_run": FULL_RUN})
    assert phases["total_seconds"] <= BUDGET_SECONDS, (
        f"{JOB_COUNT:,}-job pipeline took {phases['total_seconds']:.1f}s, "
        f"budget is {BUDGET_SECONDS:.0f}s"
    )


if __name__ == "__main__":
    test_trace_replay_within_budget()
