"""Unit tests of the full SWF format (repro.traces.swf)."""
from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.errors import WorkloadError
from repro.traces import (
    SWF_FIELDS,
    SwfHeader,
    SwfJob,
    Trace,
    dump_swf,
    dumps_swf,
    load_swf,
    loads_swf,
)

FIXTURE = Path(__file__).parent.parent / "data" / "tiny.swf"


class TestFixtureParsing:
    def test_fixture_loads(self):
        trace = load_swf(FIXTURE)
        assert trace.job_count == 12

    def test_header_directives(self):
        trace = load_swf(FIXTURE)
        assert trace.header.max_nodes == 64
        assert trace.header.max_procs == 64
        assert trace.header.unix_start_time == 820454400
        assert trace.header.directives["Computer"] == "Imaginary-SP2"

    def test_comments_preserved(self):
        trace = load_swf(FIXTURE)
        assert any("Parallel Workloads Archive" in c for c in trace.header.comments)

    def test_all_18_fields_parsed(self):
        trace = load_swf(FIXTURE)
        first = trace.jobs[0]
        assert first.to_fields() == (
            1, 0.0, 10.0, 120.0, 8, 110.5, 512.0, 8, 300.0, 1024.0,
            1, 3, 1, 1, 1, 1, -1, -1.0,
        )

    def test_tab_and_space_separated_lines(self):
        # Job 3 uses spaces, the others tabs; both must parse identically.
        trace = load_swf(FIXTURE)
        assert trace.jobs[2].job_number == 3
        assert trace.jobs[2].req_procs == 1

    def test_invalid_jobs_dropped_by_to_rigid(self):
        # Job 10 has no runtime at all and drops; job 9 is cancelled but
        # still has a requested time, so it replays (status-based dropping
        # is FilterJobs' explicit job, not an implicit side effect).
        trace = load_swf(FIXTURE)
        rigid = trace.to_rigid_jobs()
        assert len(rigid) == 11
        assert "swf10" not in {j.job_id for j in rigid}
        assert [j.submit_time for j in rigid] == sorted(j.submit_time for j in rigid)

    def test_cancelled_jobs_drop_via_filter(self):
        from repro.traces import FilterJobs

        trace = FilterJobs(statuses=(1,)).apply(load_swf(FIXTURE))
        assert {j.status for j in trace.jobs} == {1}
        assert trace.job_count == 10

    def test_provenance_records_source(self):
        trace = load_swf(FIXTURE)
        assert trace.provenance[0]["kind"] == "load"
        assert trace.provenance[0]["source"].endswith("tiny.swf")

    def test_max_nodes_prefers_header(self):
        trace = load_swf(FIXTURE)
        assert trace.max_nodes == 64


class TestStrictAndLenient:
    def test_strict_reports_source_and_line(self):
        text = "1 0 10 120\n"
        with pytest.raises(WorkloadError, match=r"bad\.swf:1"):
            loads_swf(text, strict=True, source="bad.swf")

    def test_strict_rejects_bad_value(self):
        fields = ["1"] * len(SWF_FIELDS)
        fields[3] = "not-a-number"
        with pytest.raises(WorkloadError, match=r"<string>:1.*run_time"):
            loads_swf(" ".join(fields))

    def test_lenient_pads_short_lines(self):
        trace = loads_swf("1 0 10 120 8\n", strict=False)
        assert trace.job_count == 1
        assert trace.jobs[0].req_procs == -1

    def test_lenient_skips_garbage_and_counts_it(self):
        good = " ".join(["7"] * len(SWF_FIELDS))
        trace = loads_swf(f"x y z\n{good}\n", strict=False)
        assert trace.job_count == 1
        assert trace.provenance[0]["skipped_lines"] == 1

    def test_missing_file_mentions_path(self):
        with pytest.raises(WorkloadError, match="no-such-file"):
            load_swf("no-such-file.swf")


class TestRoundTrip:
    def test_dumps_loads_round_trip(self):
        trace = load_swf(FIXTURE)
        assert loads_swf(dumps_swf(trace)) == trace

    def test_gzip_round_trip(self, tmp_path):
        trace = load_swf(FIXTURE)
        path = tmp_path / "t.swf.gz"
        dump_swf(trace, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # really gzip
        assert load_swf(path) == trace

    def test_gzip_write_is_reproducible(self, tmp_path):
        trace = load_swf(FIXTURE)
        a, b = tmp_path / "a.swf.gz", tmp_path / "b.swf.gz"
        dump_swf(trace, a)
        dump_swf(trace, b)
        assert a.read_bytes() == b.read_bytes()

    def test_non_integral_floats_survive(self):
        job = SwfJob(job_number=1, submit_time=0.125, run_time=3.3, req_procs=2)
        trace = Trace(jobs=(job,))
        back = loads_swf(dumps_swf(trace))
        assert back.jobs[0].submit_time == 0.125
        assert back.jobs[0].run_time == 3.3


class TestSwfJob:
    def test_node_count_fallbacks(self):
        assert SwfJob(job_number=1, submit_time=0, req_procs=8).node_count == 8
        assert SwfJob(job_number=1, submit_time=0, used_procs=4).node_count == 4
        assert SwfJob(job_number=1, submit_time=0).node_count == 1

    def test_duration_fallbacks(self):
        assert SwfJob(job_number=1, submit_time=0, run_time=9.0).duration == 9.0
        assert SwfJob(job_number=1, submit_time=0, req_time=7.0).duration == 7.0
        assert SwfJob(job_number=1, submit_time=0).duration == 0.0

    def test_to_rigid(self):
        job = SwfJob(job_number=3, submit_time=5.0, run_time=60.0, req_procs=4)
        rigid = job.to_rigid()
        assert (rigid.job_id, rigid.submit_time, rigid.node_count, rigid.duration) == (
            "swf3", 5.0, 4, 60.0,
        )

    def test_header_with_directive(self):
        header = SwfHeader().with_directive("MaxNodes", 32)
        assert header.max_nodes == 32


class TestSkippedLineSurfacing:
    def test_skipped_lines_property_sums_provenance(self):
        good = " ".join(["7"] * len(SWF_FIELDS))
        trace = loads_swf(f"x y z\nalso bad\n{good}\n", strict=False)
        assert trace.skipped_lines == 2
        assert load_swf(FIXTURE).skipped_lines == 0

    def test_trace_info_rows_surface_skips_only_when_present(self):
        from repro.traces.cli import _trace_summary_rows

        good = " ".join(["7"] * len(SWF_FIELDS))
        dirty = loads_swf(f"garbage\n{good}\n", strict=False)
        assert ("skipped lines", 1) in _trace_summary_rows(dirty)
        clean = load_swf(FIXTURE)
        assert all(k != "skipped lines" for k, _ in _trace_summary_rows(clean))

    def test_lenient_skips_warn_once_then_log_debug(self, caplog):
        import logging

        from repro.traces import swf as swf_module

        good = " ".join(["7"] * len(SWF_FIELDS))
        # An earlier CLI test may have turned off propagation on the
        # package logger; caplog listens on the root logger.
        logger = logging.getLogger("repro")
        propagate_before = logger.propagate
        logger.propagate = True
        swf_module._SKIP_WARNED[0] = False
        try:
            with caplog.at_level("WARNING"):
                loads_swf(f"bad\n{good}\n", strict=False)
                loads_swf(f"bad again\n{good}\n", strict=False)
        finally:
            logger.propagate = propagate_before
            swf_module._SKIP_WARNED[0] = False
        warnings = [
            r.getMessage() for r in caplog.records if r.levelname == "WARNING"
        ]
        assert len(warnings) == 1
        assert "lenient parse skipped" in warnings[0]
