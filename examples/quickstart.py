#!/usr/bin/env python
"""Quickstart: a non-predictably evolving application next to a malleable one.

This is the smallest end-to-end use of the library's public API:

1. build a discrete-event simulator, a platform and a CooRMv2 RMS;
2. create a non-predictably evolving AMR application (it targets 75 %
   efficiency and adapts its allocation inside a pre-allocation) and a
   malleable Parameter-Sweep Application that fills whatever is left;
3. run the simulation and print what happened.

Run with::

    python examples/quickstart.py
"""
from __future__ import annotations

import numpy as np

from repro import CooRMv2, Platform, Simulator
from repro.apps import AmrApplication, ParameterSweepApplication
from repro.metrics import SimulationMetrics, format_table
from repro.models import WorkingSetEvolution


def main() -> None:
    # --- substrate -------------------------------------------------------
    simulator = Simulator()
    platform = Platform.single_cluster(64)
    rms = CooRMv2(platform, simulator, rescheduling_interval=1.0)

    # --- applications ----------------------------------------------------
    # A deterministic working set that grows from ~5 GiB to ~100 GiB over 25
    # steps (use WorkingSetEvolution.generate(...) for the paper's random
    # acceleration-deceleration profiles).
    evolution = WorkingSetEvolution(np.linspace(5_000.0, 100_000.0, 25))
    amr = AmrApplication(
        name="amr",
        evolution=evolution,
        preallocation_nodes=40,     # the user's guess of the peak requirement
        target_efficiency=0.75,
    )
    psa = ParameterSweepApplication(name="psa", task_duration=60.0)

    # Stop the (infinite) PSA once the evolving application completes.
    amr.on_finished = lambda _app: psa.shutdown()

    amr.connect(rms)
    psa.connect(rms)

    # --- run ---------------------------------------------------------------
    simulator.run()

    # --- report ------------------------------------------------------------
    metrics = SimulationMetrics.collect(rms, amr=amr, psas=[psa])
    print("CooRMv2 quickstart")
    print(
        format_table(
            ["metric", "value"],
            [
                ("cluster size (nodes)", platform.total_nodes()),
                ("AMR steps executed", amr.current_step),
                ("AMR end time (s)", round(metrics.amr_end_time, 1)),
                ("AMR used resources (node*s)", round(metrics.amr_used_node_seconds)),
                ("PSA tasks completed", psa.stats.completed_tasks),
                ("PSA waste (node*s)", round(metrics.psa_waste_node_seconds, 1)),
                ("used resources", f"{metrics.used_resources_percent:.1f}%"),
            ],
        )
    )
    print()
    print("AMR allocation per step (first 10 steps):")
    for record in amr.step_records[:10]:
        print(
            f"  step {record.step:2d}: {record.node_count:3d} nodes, "
            f"{record.duration:7.1f} s, {record.data_size_mib:9.0f} MiB"
        )


if __name__ == "__main__":
    main()
