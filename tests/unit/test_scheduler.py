"""Unit tests of the main scheduling algorithm (paper Algorithm 4)."""
from __future__ import annotations

import math

import pytest

from repro.core import RelatedHow, Scheduler
from repro.testing import app_with, np_, p_, pa


class TestSchedulerBasics:
    def test_requires_clusters(self):
        with pytest.raises(ValueError):
            Scheduler({})
        with pytest.raises(ValueError):
            Scheduler({"c0": 0})

    def test_full_view(self):
        s = Scheduler({"c0": 32, "c1": 8})
        v = s.full_view()
        assert v.value_at("c0", 1e9) == 32
        assert v.value_at("c1", 0) == 8
        assert s.total_nodes() == 40

    def test_everything_fits_starts_now(self):
        sched = Scheduler({"c0": 32})
        prealloc, nonp = pa(10), np_(5)
        result = sched.schedule({"app": app_with(prealloc, nonp)}, now=0.0)
        started_ids = {r.request_id for r in result.to_start}
        assert prealloc.request_id in started_ids
        assert nonp.request_id in started_ids
        assert prealloc.scheduled_at == pytest.approx(0.0)
        assert nonp.scheduled_at == pytest.approx(0.0)

    def test_non_preemptive_view_shows_whole_free_cluster(self):
        sched = Scheduler({"c0": 32})
        result = sched.schedule({"app": app_with()}, now=0.0)
        assert result.non_preemptive_views["app"]["c0"].value_at(0) == 32

    def test_preemptive_view_excludes_non_preemptible_but_not_preallocations(self):
        sched = Scheduler({"c0": 32})
        prealloc, nonp = pa(20), np_(5)
        prealloc.mark_started(0.0)
        nonp.mark_started(0.0)
        result = sched.schedule({"app": app_with(prealloc, nonp)}, now=10.0)
        # Pre-allocated but unused resources remain available preemptibly:
        # only the 5 non-preemptibly allocated nodes are removed.
        assert result.preemptive_views["app"]["c0"].value_at(10.0) == 27

    def test_preallocation_blocks_other_apps_non_preemptive_view(self):
        sched = Scheduler({"c0": 32})
        prealloc = pa(20)
        prealloc.mark_started(0.0)
        first = app_with(prealloc, app_id="first")
        second = app_with(app_id="second")
        result = sched.schedule({"first": first, "second": second}, now=1.0)
        assert result.non_preemptive_views["second"]["c0"].value_at(1.0) == 12
        # The owner still sees its own pre-allocated space.
        assert result.non_preemptive_views["first"]["c0"].value_at(1.0) == 32


class TestOrderingAndBackfilling:
    def test_applications_are_served_in_connection_order(self):
        sched = Scheduler({"c0": 10})
        first = app_with(np_(8, duration=100), app_id="first")
        second = app_with(np_(8, duration=100), app_id="second")
        result = sched.schedule({"first": first, "second": second}, now=0.0)
        r1 = first.non_preemptible.roots()[0]
        r2 = second.non_preemptible.roots()[0]
        assert r1.scheduled_at == pytest.approx(0.0)
        assert r2.scheduled_at == pytest.approx(100.0)
        assert [r.request_id for r in result.to_start] == [r1.request_id]

    def test_later_small_job_backfills(self):
        sched = Scheduler({"c0": 10})
        first = app_with(np_(8, duration=100), app_id="first")
        second = app_with(np_(10, duration=100), app_id="second")
        third = app_with(np_(2, duration=50), app_id="third")
        result = sched.schedule(
            {"first": first, "second": second, "third": third}, now=0.0
        )
        r3 = third.non_preemptible.roots()[0]
        r2 = second.non_preemptible.roots()[0]
        # The 2-node job fits alongside the 8-node job without delaying the
        # 10-node reservation: conservative back-filling.
        assert r3.scheduled_at == pytest.approx(0.0)
        assert r2.scheduled_at == pytest.approx(100.0)

    def test_non_preemptible_fits_inside_preallocation(self):
        sched = Scheduler({"c0": 10})
        # Another application already pre-allocated 8 nodes forever.
        blocker = pa(8)
        blocker.mark_started(0.0)
        first = app_with(blocker, app_id="first")
        # The second application asks for 6 nodes non-preemptibly: they do
        # not fit outside the pre-allocation, so they can never start.
        second = app_with(np_(6, duration=100), app_id="second")
        sched.schedule({"first": first, "second": second}, now=0.0)
        r2 = second.non_preemptible.roots()[0]
        assert math.isinf(r2.scheduled_at)

    def test_own_preallocation_guarantees_update(self):
        sched = Scheduler({"c0": 10})
        prealloc = pa(8)
        prealloc.mark_started(0.0)
        running = np_(4)
        running.mark_started(0.0)
        grow = np_(8, related_how=RelatedHow.NEXT, related_to=running)
        own = app_with(prealloc, running, grow, app_id="own")
        # Another application's preemptible request fills the rest.
        other = app_with(p_(10), app_id="other")
        sched.schedule({"own": own, "other": other}, now=5.0)
        # The update is guaranteed: it can start as soon as the current
        # request ends, because it fits inside the pre-allocation.
        running_end = running.scheduled_at + running.duration
        assert grow.scheduled_at <= max(5.0, running_end) or not math.isinf(grow.scheduled_at)

    def test_preemptible_requests_share_leftover(self):
        sched = Scheduler({"c0": 12})
        nonp = np_(4)
        nonp.mark_started(0.0)
        a = app_with(nonp, p_(8), app_id="a")
        b = app_with(p_(8), app_id="b")
        result = sched.schedule({"a": a, "b": b}, now=1.0)
        va = result.preemptive_views["a"]["c0"].value_at(1.0)
        vb = result.preemptive_views["b"]["c0"].value_at(1.0)
        assert va + vb <= 12 - 4 + 4  # fairness sanity: both see at most the free pool
        assert va == 4 and vb == 4

    def test_strict_equipartition_flag(self):
        sched = Scheduler({"c0": 16}, strict_equipartition=True)
        a = app_with(p_(2), app_id="a")
        b = app_with(p_(16), app_id="b")
        result = sched.schedule({"a": a, "b": b}, now=0.0)
        assert result.preemptive_views["a"]["c0"].value_at(0) == 8
        assert result.preemptive_views["b"]["c0"].value_at(0) == 8

    def test_repr_mentions_mode(self):
        assert "strict" in repr(Scheduler({"c0": 4}, strict_equipartition=True))
        assert "filling" in repr(Scheduler({"c0": 4}))
