"""The fault injector: arms a :class:`FaultPlan` against a live federation.

Faults are first-class simulation events: :meth:`FaultInjector.arm`
pre-schedules every plan event (plus each elastic rule's finite check
grid) on the federation's shared discrete-event engine, then the
simulation run plays them back deterministically.

What a fault *does*:

- **crash** -- the member's RMS sheds the given number of nodes
  (highest IDs first); applications holding a victim node are killed,
  reported to admission control, and respawned via their registered
  resubmission factory (up to ``max_respawns`` times) or counted lost.
- **restart** -- the nodes come back (same IDs, so replays are
  byte-identical) and a scheduling pass is triggered.
- **outage** -- the whole member goes down: capacity drops to zero, the
  member is flagged ``down`` so the meta-scheduler reroutes around it.
- **recover** -- the member returns at its pre-outage size.
- **elastic rules** -- on their check grid, members above the high-water
  utilization grow and members below the low-water mark gently shed
  *free* nodes (elasticity never kills running jobs).

The injector also keeps the recovery ledger: per-member degradation
spans (first capacity loss until capacity is back at baseline), jobs
lost / rescheduled / rejected, and the SLA attainment derived from them
-- all surfaced by :meth:`summary` as flat ``fault_*`` metrics.
"""
from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import AdmissionError, RequestError
from ..obs import hooks as _obs
from ..sim.randomness import MAX_DERIVED_SEED, derive_seed
from .admission import AdmissionController
from .plan import FaultEvent, FaultPlan

__all__ = ["FaultInjector"]

#: A resubmission factory: given a fresh application name, rebuilds and
#: resubmits the killed job, returning nothing.  May raise
#: :class:`AdmissionError`/:class:`RequestError`, in which case the job
#: counts as lost.
RespawnFactory = Callable[[str], None]


class FaultInjector:
    """Plays one :class:`FaultPlan` into a federation, deterministically."""

    def __init__(self, plan: FaultPlan, federation, seed: Optional[int] = 0):
        self.plan = plan
        self.federation = federation
        self.simulator = federation.simulator
        self.seed = 0 if seed is None else int(seed)
        self.admission: Optional[AdmissionController] = None
        if plan.admission is not None:
            self.admission = AdmissionController(
                plan.admission, [m.name for m in federation.members]
            )
            federation.meta.admission = self.admission
        self.counts: Dict[str, int] = {
            "crashes": 0, "restarts": 0, "outages": 0, "recoveries": 0,
            "jobs_lost": 0, "jobs_rescheduled": 0, "jobs_rejected": 0,
            "elastic_grows": 0, "elastic_shrinks": 0,
        }
        #: Completed degradation spans, seconds (capacity loss -> restored).
        self.recovery_seconds: List[float] = []
        self.submitted = 0
        self._armed = False
        #: Healthy capacity per member; recovery means being back at this
        #: size.  Elastic grow/shrink moves the baseline (it is a policy
        #: decision, not a degradation).
        self._baseline: Dict[str, int] = {}
        self._degraded_since: Dict[str, float] = {}
        self._outage_nodes: Dict[str, int] = {}
        #: Per-member (min, max) elastic bounds from the ClusterSpecs.
        self._spec_bounds: Dict[str, Tuple[int, int]] = {}
        #: app id -> (factory, respawns so far, original name).
        self._respawns: Dict[str, Tuple[RespawnFactory, int, str]] = {}

    # ------------------------------------------------------------------ #
    def arm(self) -> None:
        """Pre-schedule every plan event on the shared event engine."""
        if self._armed:
            raise ValueError(f"fault plan {self.plan.name!r} is already armed")
        self._armed = True
        for member in self.federation.members:
            self._baseline[member.name] = member.capacity
        self._spec_bounds = {
            c.name: (c.min_nodes, c.max_nodes)
            for c in self.federation.spec.clusters
        }
        for i, event in enumerate(self.plan.events):
            member = self._resolve(event.member)
            time = event.time + self._jitter(i)
            self.simulator.schedule_at(time, self._apply, event, member)
        for rule in self.plan.elastic:
            member = self._resolve(rule.member)
            for time in rule.check_times():
                self.simulator.schedule_at(time, self._elastic_check, rule, member)
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                self.simulator.now,
                "fault",
                "plan",
                {
                    "plan": self.plan.name,
                    "events": len(self.plan.events),
                    "elastic": len(self.plan.elastic),
                    "admission": self.admission is not None,
                },
            )

    def _jitter(self, index: int) -> float:
        if self.plan.jitter <= 0:
            return 0.0
        draw = derive_seed(self.seed, "fault-jitter", index) / MAX_DERIVED_SEED
        return self.plan.jitter * draw

    def _resolve(self, ref: str):
        """A member reference: a cluster name or ``"#i"`` federation index."""
        members = self.federation.members
        if ref.startswith("#"):
            try:
                index = int(ref[1:])
            except ValueError:
                raise ValueError(
                    f"fault plan {self.plan.name!r}: bad member reference {ref!r}"
                ) from None
            if not 0 <= index < len(members):
                raise ValueError(
                    f"fault plan {self.plan.name!r} references member {ref!r} "
                    f"but the federation has {len(members)} members"
                )
            return members[index]
        try:
            return self.federation.member(ref)
        except KeyError as exc:
            raise ValueError(
                f"fault plan {self.plan.name!r}: {exc.args[0]}"
            ) from None

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def _apply(self, event: FaultEvent, member) -> None:
        now = self.simulator.now
        reason = f"fault:{self.plan.name}:{event.kind}"
        if event.kind == "crash":
            self.counts["crashes"] += 1
            self._mark_degraded(member, now)
            target = max(0, member.capacity - event.nodes)
            killed = member.rms.set_capacity(target, reason=reason)
            self._emit(now, "crash", {
                "member": member.name, "nodes": event.nodes, "killed": killed,
            })
            self._handle_killed(member, killed, now)
        elif event.kind == "restart":
            self.counts["restarts"] += 1
            member.rms.set_capacity(member.capacity + event.nodes, reason=reason)
            self._emit(now, "restart", {
                "member": member.name, "nodes": event.nodes,
            })
            self._maybe_recovered(member, now)
        elif event.kind == "outage":
            if member.down:
                return
            self.counts["outages"] += 1
            self._mark_degraded(member, now)
            self._outage_nodes[member.name] = member.capacity
            member.down = True
            killed = member.rms.set_capacity(0, reason=reason)
            self._emit(now, "outage", {"member": member.name, "killed": killed})
            self._down_counter(now)
            self._handle_killed(member, killed, now)
        elif event.kind == "recover":
            if not member.down:
                return
            self.counts["recoveries"] += 1
            member.down = False
            restored = self._outage_nodes.pop(
                member.name, self._baseline[member.name]
            )
            member.rms.set_capacity(restored, reason=reason)
            self._emit(now, "recover", {"member": member.name, "nodes": restored})
            self._down_counter(now)
            self._maybe_recovered(member, now)

    def _mark_degraded(self, member, now: float) -> None:
        self._degraded_since.setdefault(member.name, now)

    def _maybe_recovered(self, member, now: float) -> None:
        started = self._degraded_since.get(member.name)
        if started is not None and member.capacity >= self._baseline[member.name]:
            del self._degraded_since[member.name]
            self.recovery_seconds.append(now - started)

    def _down_counter(self, now: float) -> None:
        tracer = _obs.TRACER[0]
        if tracer is not None:
            down = sum(1 for m in self.federation.members if m.down)
            tracer.counter(now, "fault", "down", {"members": float(down)})

    def _emit(self, now: float, name: str, args: Dict) -> None:
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(now, "fault", name, args)
        metrics = _obs.METRICS[0]
        if metrics is not None:
            metrics.inc(f"fault.events[{name}]")

    # ------------------------------------------------------------------ #
    # Elasticity
    # ------------------------------------------------------------------ #
    def _elastic_check(self, rule, member) -> None:
        now = self.simulator.now
        # A down or degraded member is the fault path's business, not the
        # elastic policy's; sit the check out.
        if member.down or member.name in self._degraded_since:
            return
        capacity = member.capacity
        if capacity <= 0:
            return
        # The rule's own bounds compose with the member ClusterSpec's
        # declarative elastic bounds (0 = unbounded on either side).
        spec_min, spec_max = self._spec_bounds.get(member.name, (0, 0))
        floor = max(rule.min_nodes, spec_min)
        util = (capacity - member.free_nodes()) / capacity
        if util >= rule.high_util and rule.grow_step > 0:
            target = capacity + rule.grow_step
            for ceiling in (rule.max_nodes, spec_max):
                if ceiling:
                    target = min(target, ceiling)
            if target > capacity:
                member.rms.set_capacity(target, reason="elastic grow")
                self._baseline[member.name] = target
                self.counts["elastic_grows"] += 1
                self._emit(now, "elastic-grow", {
                    "member": member.name, "nodes": target - capacity,
                    "util": round(util, 6),
                })
        elif util <= rule.low_util and rule.shrink_step > 0:
            removable = min(rule.shrink_step, capacity - floor)
            if removable > 0:
                removed = member.rms.release_capacity(
                    removable, reason="elastic shrink"
                )
                if removed:
                    self._baseline[member.name] = member.capacity
                    self.counts["elastic_shrinks"] += 1
                    self._emit(now, "elastic-shrink", {
                        "member": member.name, "nodes": removed,
                        "util": round(util, 6),
                    })

    # ------------------------------------------------------------------ #
    # Workload bookkeeping (driven by the scenario runner)
    # ------------------------------------------------------------------ #
    def note_submitted(self) -> None:
        """One workload job was offered to the federation."""
        self.submitted += 1

    def note_rejected(self, app_id: str) -> None:
        """A job's *initial* submission was refused by admission control."""
        self.counts["jobs_rejected"] += 1
        self._emit(self.simulator.now, "rejected", {"app": app_id})

    def register_respawn(self, app_id: str, factory: RespawnFactory) -> None:
        """Arrange for *app_id* to be resubmitted if a fault kills it."""
        self._respawns[app_id] = (factory, 0, app_id)

    def _handle_killed(self, member, killed: List[str], now: float) -> None:
        for app_id in killed:
            if self.admission is not None:
                self.admission.record_failure(member.name, now)
            self._respawn(app_id, now)

    def _respawn(self, app_id: str, now: float) -> None:
        entry = self._respawns.pop(app_id, None)
        if entry is None or entry[1] >= self.plan.max_respawns:
            self.counts["jobs_lost"] += 1
            self._emit(now, "lost", {"app": app_id})
            return
        factory, attempts, base = entry
        new_name = f"{base}:r{attempts + 1}"
        try:
            factory(new_name)
        except (AdmissionError, RequestError):
            self.counts["jobs_lost"] += 1
            self._emit(now, "lost", {"app": new_name})
            return
        self._respawns[new_name] = (factory, attempts + 1, base)
        self.counts["jobs_rescheduled"] += 1
        self._emit(now, "rescheduled", {"app": app_id, "as": new_name})

    # ------------------------------------------------------------------ #
    def time_to_recover(self) -> float:
        """Mean seconds from first capacity loss to full restoration."""
        if not self.recovery_seconds:
            return 0.0
        return sum(self.recovery_seconds) / len(self.recovery_seconds)

    def sla_attainment_pct(self) -> float:
        """Share of offered jobs neither lost nor rejected, in percent."""
        if self.submitted <= 0:
            return 100.0
        failed = self.counts["jobs_lost"] + self.counts["jobs_rejected"]
        pct = 100.0 * (self.submitted - failed) / self.submitted
        return max(0.0, min(100.0, pct))

    def summary(self) -> Dict[str, float]:
        """Flat ``fault_*`` metrics merged into the scenario's metric row."""
        out: Dict[str, float] = {
            "fault_crashes": float(self.counts["crashes"]),
            "fault_restarts": float(self.counts["restarts"]),
            "fault_outages": float(self.counts["outages"]),
            "fault_recoveries": float(self.counts["recoveries"]),
            "fault_jobs_lost": float(self.counts["jobs_lost"]),
            "fault_jobs_rescheduled": float(self.counts["jobs_rescheduled"]),
            "fault_jobs_rejected": float(self.counts["jobs_rejected"]),
            "fault_elastic_grows": float(self.counts["elastic_grows"]),
            "fault_elastic_shrinks": float(self.counts["elastic_shrinks"]),
            "fault_recovered_count": float(len(self.recovery_seconds)),
            "fault_time_to_recover": round(self.time_to_recover(), 6),
            "fault_sla_attainment_pct": round(self.sla_attainment_pct(), 6),
        }
        if self.admission is not None:
            out["fault_breaker_trips"] = float(self.admission.breaker_trips())
            out["fault_admission_rejections"] = float(self.admission.rejections)
        return out
