"""Distributed campaign execution: byte-identity, chaos, resume, CLI.

The acceptance bar of the distributed tier: for the same campaign spec,
``runs.jsonl`` is byte-identical across the serial pool, a multi-process
pool and the dist backend at one and four workers on every transport --
and a worker killed mid-campaign changes nothing except the retry
counters in ``meta.json``.
"""
from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, ResultStore, resolve_scenarios
from repro.campaign.cli import main as cli_main
from repro.dist.coordinator import Coordinator, DistConfig
from repro.dist.transport import TRANSPORT_NAMES

#: Cheap scenarios (single simulation per run at tiny scale).
FAST = ("baseline-dynamic", "strict-equipartition")


def make_spec(name, scenarios=FAST, seeds=2) -> CampaignSpec:
    return CampaignSpec(
        name=name, scenarios=tuple(resolve_scenarios(scenarios)), seeds=seeds
    )


def run_bytes(store, name, **kwargs) -> bytes:
    CampaignRunner(make_spec(name), store=store).run(**kwargs)
    return store.runs_path(name).read_bytes()


@pytest.fixture(scope="module")
def serial_rows(tmp_path_factory) -> bytes:
    store = ResultStore(tmp_path_factory.mktemp("serial"))
    return run_bytes(store, "serial", workers=1)


class TestByteIdentityAcrossBackends:
    def test_pool_four_workers_matches_serial(self, tmp_path, serial_rows):
        assert run_bytes(ResultStore(tmp_path), "serial", workers=4) == serial_rows

    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_dist_matches_serial(self, tmp_path, serial_rows, transport, workers):
        rows = run_bytes(
            ResultStore(tmp_path),
            "serial",
            workers=workers,
            backend="dist",
            dist=DistConfig(transport=transport),
        )
        assert rows == serial_rows

    def test_dist_meta_records_backend_and_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        run_bytes(store, "serial", workers=2, backend="dist")
        meta = store.load_meta("serial")
        assert meta["backend"] == "dist"
        assert meta["dist"]["dist_completed"] == 4.0
        assert meta["dist"]["dist_failed"] == 0.0


class TestChaosAtTheExecutionTier:
    @pytest.mark.parametrize("transport", ["ipc", "tcp"])
    def test_killed_worker_reruns_units_with_identical_rows(
        self, tmp_path, serial_rows, transport
    ):
        """Worker 0 dies abruptly after its first lease (``os._exit``, no
        goodbye).  Lease release + retry must rerun its unit elsewhere and
        the final rows must be byte-identical to the serial run --
        exactly-once, not at-least-once."""
        store = ResultStore(tmp_path)
        spec = make_spec("chaos")
        result = CampaignRunner(spec, store=store).run(
            workers=2,
            backend="dist",
            dist=DistConfig(transport=transport, lease_ttl=5.0,
                            kill_after_leases={0: 1}),
        )
        assert store.runs_path("chaos").read_bytes() == serial_rows
        assert result.dist_stats["dist_reclaims"] >= 1.0
        assert result.dist_stats["dist_completed"] == 4.0
        # Exactly once: four rows, four distinct unit keys.
        records = store.load_records("chaos")
        assert len({r["unit"] for r in records}) == 4

    def test_in_thread_chaos_reclaims_via_channel_close(self, tmp_path, serial_rows):
        # The thread transport cannot os._exit; the chaos seam closes the
        # channel instead, which must surface as the same disconnect path.
        store = ResultStore(tmp_path)
        CampaignRunner(make_spec("chaos"), store=store).run(
            workers=2,
            backend="dist",
            dist=DistConfig(transport="thread", lease_ttl=5.0,
                            kill_after_leases={0: 1}),
        )
        assert store.runs_path("chaos").read_bytes() == serial_rows

    def test_all_workers_killable_campaign_still_completes(self, tmp_path,
                                                           serial_rows):
        # Both initial workers die; retries must still finish the campaign
        # before max_attempts runs out (fresh leases go to... nobody, so
        # this relies on lease reclaim making units available again when a
        # replacement connects -- here the second worker's own next lease).
        store = ResultStore(tmp_path)
        CampaignRunner(make_spec("chaos"), store=store).run(
            workers=3,
            backend="dist",
            dist=DistConfig(transport="ipc", lease_ttl=5.0,
                            kill_after_leases={0: 1, 1: 1}),
        )
        assert store.runs_path("chaos").read_bytes() == serial_rows


class TestDistResume:
    def test_resume_skips_completed_units(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec("resume")
        CampaignRunner(spec, store=store).run(workers=1)
        result = CampaignRunner(spec, store=store).run(
            workers=2, backend="dist", resume=True
        )
        assert result.skipped == 4
        assert result.records == []
        assert result.dist_stats["dist_leases"] == 0.0

    def test_resume_completes_a_partial_store(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec("resume")
        # Persist only the first half of the grid, as an interrupt would.
        runner = CampaignRunner(spec, store=store)
        tasks = runner.tasks()
        full = CampaignRunner(spec).run(workers=1).records
        store.save_campaign(spec, full[:2])
        result = CampaignRunner(spec, store=store).run(
            workers=2, backend="dist", resume=True
        )
        assert result.skipped == 2
        assert len(result.records) == len(tasks) - 2
        rows = store.load_records("resume")
        assert sorted(json.dumps(r, sort_keys=True) for r in rows) == sorted(
            json.dumps(r, sort_keys=True) for r in full
        )


class TestCoordinatorDirectly:
    def test_failing_units_fail_terminally(self):
        # Break a unit at the execution level -- its scenario names a
        # runner no worker process has registered -- and assert it retries
        # up to max_attempts, then fails terminally instead of hanging.
        spec = make_spec("fails", scenarios=("baseline-dynamic",), seeds=1)
        tasks = CampaignRunner(spec).tasks()
        coordinator = Coordinator(
            tasks, DistConfig(transport="thread", max_attempts=2,
                              backoff_base=0.0)
        )
        for unit in coordinator.queue._units.values():
            unit.task["scenario"]["runner"] = "no-such-runner"
        outcome = coordinator.run(workers=2)
        assert outcome.records == []
        assert len(outcome.failed) == 1
        assert outcome.stats["dist_failed"] == 1.0
        assert outcome.stats["dist_retries"] == 1.0

    def test_queue_journal_is_written(self, tmp_path):
        journal = tmp_path / "queue.journal"
        tasks = CampaignRunner(make_spec("j", seeds=1)).tasks()
        coordinator = Coordinator(
            tasks, DistConfig(transport="thread", journal=str(journal))
        )
        outcome = coordinator.run(workers=1)
        assert len(outcome.records) == 2
        ops = [json.loads(line)["op"] for line in journal.read_text().splitlines()]
        assert ops.count("done") == 2


class TestDistCli:
    def test_campaign_run_backend_dist_round_trip(self, tmp_path, capsys):
        results = str(tmp_path)
        base = [
            "campaign", "run", "--scenarios", "baseline-dynamic", "--seeds", "2",
            "--results-dir", results, "--quiet",
        ]
        assert cli_main(base + ["--name", "pool"]) == 0
        assert cli_main(
            base + ["--name", "dist", "--backend", "dist",
                    "--transport", "tcp", "--dist-workers", "2"]
        ) == 0
        store = ResultStore(results)
        assert (
            store.runs_path("pool").read_bytes()
            == store.runs_path("dist").read_bytes()
        )
        capsys.readouterr()
        assert cli_main(["campaign", "report", "dist",
                         "--results-dir", results]) == 0
        out = capsys.readouterr().out
        assert "distributed execution" in out
        assert "dist_completed" in out

    def test_bad_kill_spec_is_an_error(self, tmp_path, capsys):
        code = cli_main(
            ["campaign", "run", "--scenarios", "baseline-dynamic",
             "--results-dir", str(tmp_path), "--backend", "dist",
             "--dist-kill-after", "bogus", "--quiet"]
        )
        assert code == 2
        assert "IDX:N" in capsys.readouterr().err
