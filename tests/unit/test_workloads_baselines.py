"""Unit tests of workload generation, trace I/O and the baselines."""
from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BatchSchedulerBaseline,
    make_filling_rms,
    make_static_amr,
    make_strict_equipartition_rms,
    peak_static_job,
    predict_static_run,
)
from repro.cluster import Platform
from repro.core import WorkloadError
from repro.models import WorkingSetEvolution
from repro.sim import Simulator
from repro.workloads import (
    RigidJobSpec,
    WorkloadParameters,
    dumps_trace,
    generate_rigid_workload,
    loads_trace,
)


class TestWorkloadGenerator:
    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            WorkloadParameters(job_count=0)
        with pytest.raises(ValueError):
            WorkloadParameters(min_nodes=8, max_nodes=4)
        with pytest.raises(ValueError):
            WorkloadParameters(mean_interarrival=0.0)

    def test_generation_respects_bounds(self):
        params = WorkloadParameters(job_count=50, min_nodes=2, max_nodes=64)
        jobs = generate_rigid_workload(params, seed=1)
        assert len(jobs) == 50
        assert all(2 <= j.node_count <= 64 for j in jobs)
        assert all(params.min_runtime <= j.duration <= params.max_runtime for j in jobs)
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)

    def test_power_of_two_rounding(self):
        jobs = generate_rigid_workload(WorkloadParameters(job_count=30), seed=2)
        assert all(j.node_count & (j.node_count - 1) == 0 for j in jobs)

    def test_reproducibility(self):
        a = generate_rigid_workload(seed=3)
        b = generate_rigid_workload(seed=3)
        assert [(j.node_count, j.duration) for j in a] == [(j.node_count, j.duration) for j in b]

    def test_job_area(self):
        job = RigidJobSpec("j", 0.0, 4, 100.0)
        assert job.area == pytest.approx(400.0)


class TestTraceIO:
    def test_roundtrip(self):
        jobs = generate_rigid_workload(WorkloadParameters(job_count=10), seed=4)
        text = dumps_trace(jobs)
        parsed = loads_trace(text)
        assert len(parsed) == 10
        assert parsed[0].node_count == jobs[0].node_count
        assert parsed[0].submit_time == pytest.approx(jobs[0].submit_time, abs=1e-3)

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\n\njob1 0.0 4 100.0\n"
        jobs = loads_trace(text)
        assert len(jobs) == 1 and jobs[0].job_id == "job1"

    def test_malformed_lines_rejected(self):
        with pytest.raises(WorkloadError):
            loads_trace("job1 0.0 4\n")
        with pytest.raises(WorkloadError):
            loads_trace("job1 0.0 four 100.0\n")
        with pytest.raises(WorkloadError):
            loads_trace("job1 -5.0 4 100.0\n")

    def test_dump_and_load_file(self, tmp_path):
        from repro.workloads import dump_trace, load_trace

        jobs = generate_rigid_workload(WorkloadParameters(job_count=5), seed=0)
        path = tmp_path / "trace.txt"
        dump_trace(jobs, path)
        assert len(load_trace(path)) == 5


class TestBatchBaseline:
    def test_fcfs_with_backfilling(self):
        baseline = BatchSchedulerBaseline(16)
        outcomes = baseline.run(
            [
                RigidJobSpec("wide", 0.0, 12, 100.0),
                RigidJobSpec("blocked", 0.0, 16, 50.0),
                RigidJobSpec("small", 0.0, 4, 50.0),
            ]
        )
        by_id = baseline.outcome_by_id()
        assert by_id["small"].start_time == pytest.approx(0.0)
        assert by_id["blocked"].start_time == pytest.approx(100.0)
        assert baseline.makespan() >= 150.0
        assert 0.0 < baseline.utilisation() <= 1.0
        assert baseline.mean_wait_time() >= 0.0
        assert len(outcomes) == 3

    def test_peak_static_job_reserves_the_peak(self):
        job = peak_static_job("evolving", peak_nodes=128, total_runtime=3600.0)
        assert job.node_count == 128
        assert job.area == pytest.approx(128 * 3600.0)


class TestStaticPrediction:
    def test_matches_simulated_static_run(self):
        evolution = WorkingSetEvolution(np.linspace(5_000.0, 100_000.0, 12))
        prediction = predict_static_run(evolution, node_count=30)

        sim = Simulator()
        from repro.core import CooRMv2

        rms = CooRMv2(Platform.single_cluster(64), sim, rescheduling_interval=1.0)
        app = make_static_amr("amr", evolution, preallocation_nodes=30)
        app.connect(rms)
        sim.run()
        assert app.finished()
        assert app.computation_time() == pytest.approx(prediction.end_time, rel=1e-6)
        assert app.used_node_seconds == pytest.approx(prediction.used_node_seconds, rel=1e-6)

    def test_invalid_node_count(self):
        evolution = WorkingSetEvolution([1.0])
        with pytest.raises(ValueError):
            predict_static_run(evolution, node_count=0)


class TestRmsFactories:
    def test_strict_and_filling_factories(self):
        sim = Simulator()
        platform = Platform.single_cluster(8)
        strict = make_strict_equipartition_rms(platform, sim)
        assert strict.scheduler.strict_equipartition is True
        filling = make_filling_rms(Platform.single_cluster(8), Simulator())
        assert filling.scheduler.strict_equipartition is False
