"""The malleable Parameter-Sweep Application (paper Sections 4 and 5.1.2).

The PSA has an infinite supply of independent single-node tasks of fixed
duration ``d_task``.  It monitors its preemptive view:

* when more resources are available than it currently holds, it grows its
  preemptible request and spawns tasks on the new nodes;
* when the RMS asks it to release resources *immediately* (the view at the
  current time drops below what it holds), it kills tasks -- the work done so
  far on them is lost and counted as **waste**;
* when the view announces that resources will disappear in the *future*
  (announced updates), it stops recycling nodes whose next task could not
  finish in time and releases them when their current task completes -- no
  waste occurs.

The PSA never finishes by itself; experiments call :meth:`shutdown` when the
evolving application completes.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from ..core.request import Request
from ..core.types import ClusterId, NodeId, RelatedHow, RequestType, Time
from .base import BaseApplication

__all__ = ["ParameterSweepApplication", "PsaStatistics"]


@dataclass
class PsaStatistics:
    """Aggregate outcome of a PSA run."""

    completed_tasks: int = 0
    killed_tasks: int = 0
    completed_node_seconds: float = 0.0
    waste_node_seconds: float = 0.0

    @property
    def total_busy_node_seconds(self) -> float:
        return self.completed_node_seconds + self.waste_node_seconds


class ParameterSweepApplication(BaseApplication):
    """A malleable application made of infinite single-node tasks."""

    def __init__(
        self,
        name: str,
        task_duration: Time,
        cluster_id: ClusterId = "cluster0",
    ):
        super().__init__(name, cluster_id)
        if task_duration <= 0:
            raise ValueError("task_duration must be positive")
        self.task_duration = float(task_duration)
        self.stats = PsaStatistics()

        #: Node id -> start time of the task currently running on it.
        self._running_tasks: Dict[NodeId, Time] = {}
        #: Node id -> completion event handle (to cancel on kill).
        self._task_events: Dict[NodeId, object] = {}
        #: Nodes held but currently idle (no task running).
        self._idle_nodes: Set[NodeId] = set()
        self.current_request: Optional[Request] = None
        self._flush_pending = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def held_nodes(self) -> Set[NodeId]:
        """Every node currently held (busy or idle)."""
        return set(self._running_tasks) | set(self._idle_nodes)

    def busy_count(self) -> int:
        return len(self._running_tasks)

    @property
    def waste_node_seconds(self) -> float:
        return self.stats.waste_node_seconds

    # ------------------------------------------------------------------ #
    # Protocol callbacks
    # ------------------------------------------------------------------ #
    def on_views(self, non_preemptive, preemptive) -> None:
        super().on_views(non_preemptive, preemptive)
        self._schedule_flush()

    def on_start(self, request: Request, node_ids: FrozenSet[NodeId]) -> None:
        if request.rtype is not RequestType.PREEMPTIBLE:
            return
        self.current_request = request
        for nid in node_ids:
            if nid not in self._running_tasks:
                self._idle_nodes.add(nid)
        self._schedule_flush()

    def on_killed(self, reason: str) -> None:
        super().on_killed(reason)
        for nid, start in list(self._running_tasks.items()):
            self._abort_task(nid, count_waste=True)

    # ------------------------------------------------------------------ #
    # Reconciliation: one pass that applies all pending decisions
    # ------------------------------------------------------------------ #
    def _schedule_flush(self) -> None:
        """Coalesce reactions within one simulated instant."""
        if self._flush_pending or self.rms is None or self.killed or self.finished():
            return
        self._flush_pending = True
        self.rms.simulator.schedule(0.0, self._reconcile)

    def _reconcile(self) -> None:
        self._flush_pending = False
        if self.killed or self.finished() or self.rms is None:
            return

        allowed_now = self.preemptive_available_now()
        allowed_window = self.preemptive_available_min(self.task_duration)
        held = self.held_nodes()

        # 1. Mandatory release: the view at the current time is below what we
        #    hold, so nodes must be given back immediately (killing tasks).
        if len(held) > allowed_now:
            overshoot = len(held) - allowed_now
            victims = self._pick_release_victims(overshoot)
            for nid in victims:
                if nid in self._running_tasks:
                    self._abort_task(nid, count_waste=True)
                self._idle_nodes.discard(nid)
            self._resize_request(len(self.held_nodes()), released=victims)
            held = self.held_nodes()

        if self._stopped:
            # Shutting down: release idle nodes, let running tasks finish.
            idle = sorted(self._idle_nodes)
            if idle:
                self._idle_nodes.clear()
                self._resize_request(len(self.held_nodes()), released=idle)
            if not self._running_tasks:
                self._terminate()
            return

        # 2. Start tasks on idle nodes, but only on as many nodes as the view
        #    sustains for a whole task duration; release the rest gracefully.
        busy = self.busy_count()
        sustainable = max(0, allowed_window)
        can_start = max(0, min(len(self._idle_nodes), sustainable - busy))
        idle_sorted = sorted(self._idle_nodes)
        for nid in idle_sorted[:can_start]:
            self._start_task(nid)
        to_release = idle_sorted[can_start:]
        if to_release:
            for nid in to_release:
                self._idle_nodes.discard(nid)
            self._resize_request(len(self.held_nodes()), released=to_release)

        # 3. Growth: ask for more nodes when the view offers more than we
        #    hold *and* they would be usable for at least one task.
        held_count = len(self.held_nodes())
        desired = min(allowed_now, max(allowed_window, held_count))
        if desired > held_count:
            self._resize_request(desired)

    # ------------------------------------------------------------------ #
    # Task lifecycle
    # ------------------------------------------------------------------ #
    def _start_task(self, node_id: NodeId) -> None:
        self._idle_nodes.discard(node_id)
        self._running_tasks[node_id] = self.now
        handle = self.rms.simulator.schedule(self.task_duration, self._task_finished, node_id)
        self._task_events[node_id] = handle

    def _task_finished(self, node_id: NodeId) -> None:
        if node_id not in self._running_tasks or self.killed or self.finished():
            return
        del self._running_tasks[node_id]
        self._task_events.pop(node_id, None)
        self.stats.completed_tasks += 1
        self.stats.completed_node_seconds += self.task_duration
        self._idle_nodes.add(node_id)
        self._schedule_flush()

    def _abort_task(self, node_id: NodeId, count_waste: bool) -> None:
        start = self._running_tasks.pop(node_id, None)
        handle = self._task_events.pop(node_id, None)
        if handle is not None:
            handle.cancel()
        if start is not None and count_waste:
            self.stats.killed_tasks += 1
            self.stats.waste_node_seconds += max(0.0, self.now - start)

    def _pick_release_victims(self, count: int) -> List[NodeId]:
        """Choose which nodes to give back: idle ones first, then the tasks
        with the least elapsed work (minimising the waste)."""
        victims: List[NodeId] = sorted(self._idle_nodes)[:count]
        remaining = count - len(victims)
        if remaining > 0:
            by_elapsed = sorted(
                self._running_tasks.items(), key=lambda item: self.now - item[1]
            )
            victims.extend(nid for nid, _ in by_elapsed[:remaining])
        return victims

    # ------------------------------------------------------------------ #
    # Request management
    # ------------------------------------------------------------------ #
    def _resize_request(self, node_count: int, released: Optional[List[NodeId]] = None) -> None:
        """Grow or shrink the preemptible request to *node_count* nodes."""
        node_count = max(0, int(node_count))
        if self.current_request is None or self.current_request.finished():
            if node_count > 0:
                self.current_request = self.submit(
                    node_count=node_count,
                    duration=math.inf,
                    rtype=RequestType.PREEMPTIBLE,
                )
            return
        if not self.current_request.started():
            # The previous resize has not been served yet; replace it while
            # keeping the NEXT chain intact so nodes retained by finished
            # predecessors are carried over (or explicitly released).
            if self.current_request.node_count == node_count and not released:
                return
            old = self.current_request
            self.current_request = self.submit(
                node_count=node_count,
                duration=math.inf,
                rtype=RequestType.PREEMPTIBLE,
                related_how=RelatedHow.NEXT,
                related_to=old,
            )
            self.done(old, released)
            return
        if node_count == len(self.current_request.node_ids) and not released:
            return
        self.current_request = self.spontaneous_update(
            self.current_request, node_count, released_node_ids=released
        )

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Stop taking new work; finish running tasks, then disconnect."""
        if self._stopped or self.finished() or self.killed:
            return
        self._stopped = True
        self._schedule_flush()

    def shutdown_now(self) -> None:
        """Stop immediately: abort running tasks (not counted as waste)."""
        self._stopped = True
        for nid in list(self._running_tasks):
            self._abort_task(nid, count_waste=False)
        self._terminate()

    def _terminate(self) -> None:
        if self.finished():
            return
        if self.current_request is not None and not self.current_request.finished():
            self.done(self.current_request)
        self.current_request = None
        self.finish()
