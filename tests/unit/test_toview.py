"""Unit tests of toView() (paper Algorithm 1)."""
from __future__ import annotations


import pytest

from repro.core import (
    RelatedHow,
    Request,
    RequestSet,
    RequestType,
    View,
    to_view,
)


def np_request(n, duration, related_how=RelatedHow.FREE, related_to=None, cluster="c"):
    return Request(cluster, n, duration, RequestType.NON_PREEMPTIBLE, related_how, related_to)


class TestToView:
    def test_empty_set_gives_empty_view(self):
        assert to_view(RequestSet()).is_zero()

    def test_pending_requests_are_not_fixed(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        r = np_request(4, 100)
        rs.add(r)
        view = to_view(rs)
        assert view.is_zero()
        assert not r.fixed

    def test_started_request_occupies_from_its_start_time(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        r = np_request(4, 100)
        rs.add(r)
        r.mark_started(10.0)
        view = to_view(rs)
        assert r.fixed
        assert r.scheduled_at == 10.0
        assert r.n_alloc == 4
        assert view["c"].value_at(10) == 4
        assert view["c"].value_at(109.9) == 4
        assert view["c"].value_at(110) == 0
        assert view["c"].value_at(9.9) == 0

    def test_next_child_of_started_parent_is_fixed(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        parent = np_request(4, 100)
        child = np_request(6, 50, RelatedHow.NEXT, parent)
        rs.add(parent)
        rs.add(child)
        parent.mark_started(20.0)
        view = to_view(rs)
        assert child.fixed
        assert child.scheduled_at == pytest.approx(120.0)
        assert view["c"].value_at(130) == 6
        assert view["c"].value_at(171) == 0

    def test_coalloc_child_of_started_parent(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        parent = np_request(4, 100)
        child = np_request(2, 100, RelatedHow.COALLOC, parent)
        rs.add(parent)
        rs.add(child)
        parent.mark_started(5.0)
        view = to_view(rs)
        assert child.fixed
        assert child.scheduled_at == pytest.approx(5.0)
        assert view["c"].value_at(50) == 6

    def test_next_child_of_finished_parent_uses_actual_end(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        parent = np_request(4, 1000)
        child = np_request(6, 50, RelatedHow.NEXT, parent)
        rs.add(parent)
        rs.add(child)
        parent.mark_started(0.0)
        parent.mark_finished(30.0)  # done() long before the requested duration
        child.mark_started(30.0)
        view = to_view(rs)
        assert child.scheduled_at == pytest.approx(30.0)
        assert view["c"].value_at(40) == 6

    def test_available_view_limits_n_alloc(self):
        rs = RequestSet(RequestType.PREEMPTIBLE)
        r = Request("c", 10, 100, RequestType.PREEMPTIBLE)
        rs.add(r)
        r.mark_started(0.0)
        available = View.constant({"c": 6})
        view = to_view(rs, available)
        assert r.n_alloc == 6
        assert view["c"].value_at(50) == 6

    def test_finished_requests_are_ignored(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        r = np_request(4, 100)
        rs.add(r)
        r.mark_started(0.0)
        r.mark_finished(10.0)
        assert to_view(rs).is_zero()

    def test_fixed_flag_is_reset_on_each_call(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        r = np_request(4, 100)
        rs.add(r)
        r.mark_started(0.0)
        to_view(rs)
        assert r.fixed
        r.mark_finished(10.0)
        to_view(rs)
        assert not r.fixed

    def test_works_on_plain_lists(self):
        parent = np_request(4, 100)
        child = np_request(2, 10, RelatedHow.NEXT, parent)
        parent.mark_started(0.0)
        view = to_view([parent, child])
        assert view["c"].value_at(50) == 4
        assert view["c"].value_at(105) == 2
