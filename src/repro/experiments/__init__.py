"""Experiment drivers, one module per figure of the paper's evaluation."""
from .runner import EvaluationScale, ScenarioResult, build_evolution, run_scenario
from . import (
    fig1_amr_profiles,
    fig2_speedup_fit,
    fig3_static_endtime,
    fig4_static_choices,
    fig9_spontaneous,
    fig10_announced,
    fig11_two_psas,
)

__all__ = [
    "EvaluationScale",
    "ScenarioResult",
    "build_evolution",
    "run_scenario",
    "fig1_amr_profiles",
    "fig2_speedup_fit",
    "fig3_static_endtime",
    "fig4_static_choices",
    "fig9_spontaneous",
    "fig10_announced",
    "fig11_two_psas",
]
