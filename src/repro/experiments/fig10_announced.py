"""Figure 10 -- scheduling with announced updates.

Same scenario as Figure 9 at overcommit factor 1, but the AMR announces its
updates some time in advance instead of requesting resources spontaneously.
Three series are reported against the announce interval:

* the AMR end-time increase (relative to spontaneous updates) -- announced
  growth means the AMR receives nodes later than it would like;
* the PSA waste, as a percentage of the platform's capacity -- it shrinks as
  the announce interval grows and vanishes once the interval reaches the task
  duration;
* the percent of used resources.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..metrics.report import format_table
from .runner import EvaluationScale, build_evolution, run_scenario

__all__ = ["PAPER_ANNOUNCE_INTERVALS", "Fig10Point", "run", "main"]

#: The x-axis of Figure 10 (seconds).
PAPER_ANNOUNCE_INTERVALS: Tuple[float, ...] = (0.0, 100.0, 200.0, 300.0, 400.0, 500.0, 550.0, 600.0, 700.0)


@dataclass(frozen=True)
class Fig10Point:
    """One x-position of Figure 10."""

    announce_interval: float
    amr_end_time: float
    amr_end_time_increase_percent: float
    psa_waste_percent: float
    used_resources_percent: float


def run(
    announce_intervals: Sequence[float] = PAPER_ANNOUNCE_INTERVALS,
    scale: Optional[EvaluationScale] = None,
    seed: int = 0,
    overcommit: float = 1.0,
) -> List[Fig10Point]:
    """Run the Figure 10 sweep (one scenario per announce interval)."""
    if scale is None:
        scale = EvaluationScale.reduced()
    # Use one evolution for the whole sweep so only the announce interval varies.
    evolution = build_evolution(scale, seed=seed)

    baseline = run_scenario(
        scale,
        seed=seed,
        overcommit=overcommit,
        announce_interval=0.0,
        psa_task_durations=(scale.psa1_task_duration,),
        evolution=evolution,
    )
    baseline_end = baseline.metrics.amr_end_time

    points: List[Fig10Point] = []
    for interval in announce_intervals:
        if interval == 0.0:
            result = baseline
        else:
            result = run_scenario(
                scale,
                seed=seed,
                overcommit=overcommit,
                announce_interval=interval,
                psa_task_durations=(scale.psa1_task_duration,),
                evolution=evolution,
            )
        end_time = result.metrics.amr_end_time
        increase = 100.0 * (end_time / baseline_end - 1.0) if baseline_end > 0 else 0.0
        points.append(
            Fig10Point(
                announce_interval=interval,
                amr_end_time=end_time,
                amr_end_time_increase_percent=increase,
                psa_waste_percent=result.metrics.psa_waste_percent,
                used_resources_percent=result.metrics.used_resources_percent,
            )
        )
    return points


def main(
    announce_intervals: Sequence[float] = PAPER_ANNOUNCE_INTERVALS,
    scale: Optional[EvaluationScale] = None,
    seed: int = 0,
) -> str:
    """Render the Figure 10 reproduction as a text table."""
    points = run(announce_intervals, scale=scale, seed=seed)
    rows = [
        (
            p.announce_interval,
            f"{p.amr_end_time_increase_percent:.1f}%",
            f"{p.psa_waste_percent:.1f}%",
            f"{p.used_resources_percent:.1f}%",
        )
        for p in points
    ]
    table = format_table(
        ["announce interval (s)", "AMR end-time increase", "PSA waste", "used resources"],
        rows,
    )
    return "Figure 10 -- announced updates\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
