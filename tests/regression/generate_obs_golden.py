"""Regenerate the golden trace digest under ``tests/data/golden_obs/``.

The digest pins the **byte-exact** JSONL trace export of the fig9 scenario
at its canonical campaign seed: event count, per-(category, name) counts,
the first few JSONL lines verbatim, and the SHA-256 of the full export.
``tests/regression/test_obs_golden.py`` re-runs the scenario under the
tracer and compares -- the trace stream is required to be deterministic, so
any drift is a real behaviour change in the engine, the scheduler or the
instrumentation, and must come with a regenerated fixture and an
explanation in the commit that carries it.

Run ONLY after verifying a change is intentional::

    PYTHONPATH=src python tests/regression/generate_obs_golden.py
"""
from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.campaign import builtin  # noqa: F401  (registers the scenarios)
from repro.campaign.registry import builtin_scenarios, consume_provenance, get_runner
from repro.obs import EventTracer, observe
from repro.sim.randomness import derive_seed

#: The traced scenario and the number of verbatim head lines pinned.
TRACED_SCENARIO = "fig9"
HEAD_LINES = 5

GOLDEN_OBS_DIR = Path(__file__).resolve().parent.parent / "data" / "golden_obs"


def golden_trace_digest(name: str = TRACED_SCENARIO) -> dict:
    """Run one scenario under the tracer and digest its JSONL export."""
    spec = builtin_scenarios()[name]
    seed = derive_seed(0, name, 0)
    tracer = EventTracer()
    consume_provenance()
    with observe(tracer=tracer):
        get_runner(spec.runner)(spec, seed)
    consume_provenance()
    text = tracer.to_jsonl()
    return {
        "scenario": name,
        "seed": seed,
        "event_count": len(tracer),
        "count_by": {
            f"{cat}/{event}": count
            for (cat, event), count in sorted(tracer.count_by().items())
        },
        "head": text.splitlines()[:HEAD_LINES],
        "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
    }


def main() -> None:
    GOLDEN_OBS_DIR.mkdir(parents=True, exist_ok=True)
    digest = golden_trace_digest()
    path = GOLDEN_OBS_DIR / f"{TRACED_SCENARIO}_trace.json"
    path.write_text(
        json.dumps(digest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {path} ({digest['event_count']} events, sha {digest['sha256'][:12]})")


if __name__ == "__main__":
    main()
