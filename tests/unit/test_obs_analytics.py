"""Unit tests of the obs analytics layer: timeline, lifecycle, SLO, trajectory."""
from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_SLO,
    EventTracer,
    SLOSpec,
    Timeline,
    TimelineBuilder,
    build_audits,
    evaluate_slo,
    summarize_audits,
)
from repro.obs.lifecycle import audits_to_json, percentile
from repro.obs.timeline import sparkline
from repro.obs.trajectory import (
    BenchSnapshot,
    diff_latest,
    load_trajectory,
    self_test,
    trajectory_report,
)


def lifecycle_tracer() -> EventTracer:
    """A hand-built two-job trace exercising every lifecycle transition.

    job ``a``: submit at 0, scheduler defers it once, starts 4 nodes at 10,
    grows to 6 at 20, shrinks to 2 at 30, disconnects at 50.
    job ``b``: submit at 5, never starts, killed at 25.
    """
    t = EventTracer()
    t.emit(0.0, "rms", "connect", {"app": "a"})
    t.emit(0.0, "rms", "submit", {"app": "a", "req": 1, "nodes": 4})
    t.emit(2.0, "scheduler", "fit", {"app": "a", "deferred": 1})
    t.emit(5.0, "rms", "connect", {"app": "b"})
    t.emit(5.0, "rms", "submit", {"app": "b", "req": 1, "nodes": 8})
    t.emit(6.0, "scheduler", "fit", {"app": "a", "reserved": 1})
    t.emit(10.0, "rms", "start", {"app": "a", "req": 1, "nodes": 4})
    t.counter(10.0, "rms", "allocated", {"c0": 4.0})
    t.emit(20.0, "rms", "submit", {"app": "a", "req": 2, "nodes": 2})
    t.emit(20.0, "rms", "start", {"app": "a", "req": 2, "nodes": 2})
    t.counter(20.0, "rms", "allocated", {"c0": 6.0})
    t.emit(25.0, "rms", "kill", {"app": "b", "reason": "test"})
    t.emit(30.0, "rms", "finish", {"app": "a", "req": 1, "nodes": 4})
    t.counter(30.0, "rms", "allocated", {"c0": 2.0})
    t.emit(50.0, "rms", "finish", {"app": "a", "req": 2, "nodes": 2})
    t.counter(50.0, "rms", "allocated", {"c0": 0.0})
    t.emit(50.0, "rms", "disconnect", {"app": "a"})
    return t


class TestTimeline:
    def test_step_series_sampling(self):
        tracer = EventTracer()
        tracer.emit(0.0, "rms", "platform", {"clusters": {"c0": 10}})
        tracer.counter(0.0, "rms", "allocated", {"c0": 0.0})
        tracer.counter(4.0, "rms", "allocated", {"c0": 5.0})
        tracer.counter(8.0, "rms", "allocated", {"c0": 10.0})
        timeline = TimelineBuilder(samples=8).build(tracer.events)
        assert timeline.capacity == {"c0": 10}
        assert timeline.t0 == 0.0 and timeline.t1 == 8.0
        # Step function: value holds between breakpoints.
        assert timeline.series["alloc[c0]"] == [0, 0, 0, 0, 5, 5, 5, 5, 10]
        assert timeline.series["util.pct"] == [0, 0, 0, 0, 50, 50, 50, 50, 100]

    def test_job_count_series(self):
        timeline = TimelineBuilder(samples=10).build(lifecycle_tracer().events)
        times = timeline.times()
        running = dict(zip(times, timeline.series["jobs.running"]))
        completed = dict(zip(times, timeline.series["jobs.completed"]))
        assert running[5.0] == 0.0  # both still waiting
        assert running[15.0] == 1.0  # a started at 10
        assert completed[30.0] == 1.0  # b killed at 25
        assert completed[50.0] == 2.0  # a disconnected at 50

    def test_json_round_trip_is_byte_exact(self):
        timeline = TimelineBuilder().build(lifecycle_tracer().events)
        text = timeline.to_json()
        assert Timeline.from_json(text).to_json() == text

    def test_empty_trace(self):
        timeline = TimelineBuilder().build([])
        assert timeline.series == {} and timeline.event_count == 0
        assert timeline.times()[0] == 0.0

    def test_builder_rejects_bad_samples(self):
        with pytest.raises(ValueError, match="samples must be positive"):
            TimelineBuilder(samples=0)

    def test_stats(self):
        timeline = TimelineBuilder(samples=4).build(lifecycle_tracer().events)
        stats = timeline.stats("jobs.running")
        assert stats["min"] == 0.0 and stats["max"] == 1.0
        with pytest.raises(KeyError):
            timeline.stats("nope")


class TestSparkline:
    def test_renders_ramp(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series_uses_lowest_glyph(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_downsamples_deterministically(self):
        values = [float(i) for i in range(100)]
        assert sparkline(values, width=10) == sparkline(values, width=10)
        assert len(sparkline(values, width=10)) == 10

    def test_empty(self):
        assert sparkline([]) == ""


class TestLifecycle:
    def test_two_job_audit(self):
        audits = build_audits(lifecycle_tracer().events)
        assert [a.app for a in audits] == ["a", "b"]
        a, b = audits

        assert a.queue_wait == 10.0
        assert a.runtime == 40.0
        assert a.turnaround == 50.0
        assert a.slowdown == pytest.approx(1.25)
        assert a.submitted_requests == 2
        assert a.started_requests == 2
        assert a.finished_requests == 2
        assert a.grows == 1  # second start while running
        assert a.node_seconds == pytest.approx(4 * 10 + 6 * 10 + 2 * 20)
        # Wait breakdown: submit->first fit (2s pre_sched), fit said
        # deferred until the next fit (4s), then reserved until start (4s).
        assert a.wait_breakdown == {
            "pre_sched": 2.0, "deferred": 4.0, "reserved": 4.0, "held": 0.0,
        }

        assert b.killed and b.first_start_ts is None
        assert b.queue_wait is None and b.slowdown is None
        assert b.end_ts == 25.0

    def test_open_ended_jobs_clamp_to_last_event(self):
        tracer = EventTracer()
        tracer.emit(0.0, "rms", "connect", {"app": "x"})
        tracer.emit(1.0, "rms", "start", {"app": "x", "nodes": 2})
        tracer.emit(11.0, "engine", "dispatch", {"callback": "f"})
        (audit,) = build_audits(tracer.events)
        assert audit.end_ts == 11.0
        assert audit.node_seconds == pytest.approx(20.0)

    def test_bounded_slowdown_floors_tiny_jobs(self):
        tracer = EventTracer()
        tracer.emit(0.0, "rms", "connect", {"app": "x"})
        tracer.emit(100.0, "rms", "start", {"app": "x", "nodes": 1})
        tracer.emit(101.0, "rms", "disconnect", {"app": "x"})
        (audit,) = build_audits(tracer.events)
        assert audit.slowdown == pytest.approx(101.0)
        # tau = 10 s floors the runtime: max(1, 101 / 10).
        assert audit.bounded_slowdown == pytest.approx(10.1)

    def test_summary_and_json(self):
        audits = build_audits(lifecycle_tracer().events)
        summary = summarize_audits(audits)
        assert summary["jobs"] == 2.0
        assert summary["started"] == 1.0
        assert summary["killed"] == 1.0
        assert summary["wait_p95"] == 10.0
        assert summary["wait_pre_sched_seconds"] == pytest.approx(22.0)  # a: 2, b: 20
        text = audits_to_json(audits)
        parsed = json.loads(text)
        assert parsed[1]["queue_wait"] is None  # JSON-safe missing values
        assert audits_to_json(build_audits(lifecycle_tracer().events)) == text

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 50.0) == 2.0
        assert percentile(values, 95.0) == 4.0
        assert percentile([], 95.0) == 0.0


class TestSLO:
    def test_default_spec_round_trips(self):
        text = DEFAULT_SLO.to_json()
        assert SLOSpec.from_json(text).to_json() == text

    def test_rejects_malformed_specs(self):
        with pytest.raises(ValueError, match="no objectives"):
            SLOSpec(name="empty", objectives=())
        with pytest.raises(ValueError, match="unknown objective kind"):
            SLOSpec(name="bad", objectives=({"kind": "nope"},))
        with pytest.raises(ValueError, match="missing"):
            SLOSpec(name="bad", objectives=({"kind": "p95_wait"},))
        with pytest.raises(ValueError, match="invalid SLO spec JSON"):
            SLOSpec.from_json("{nope")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(DEFAULT_SLO.to_json(), encoding="utf-8")
        assert SLOSpec.load(str(path)).name == "default"

    def test_violations_detected(self):
        audits = build_audits(lifecycle_tracer().events)  # job a waits 10 s
        strict = SLOSpec(
            name="strict",
            objectives=(
                {"kind": "p95_wait", "max_seconds": 5.0},
                {"kind": "attainment", "wait_seconds": 5.0, "min_percent": 50.0},
            ),
        )
        report = evaluate_slo(strict, audits)
        assert not report.passed and report.violations == 2
        flat = report.to_flat()
        assert flat["slo.passed"] == 0.0
        assert flat["slo.p95_wait"] == 10.0
        assert flat["slo.attainment"] == 0.0

    def test_utilization_needs_a_timeline(self):
        audits = build_audits(lifecycle_tracer().events)
        spec = SLOSpec(
            name="util", objectives=({"kind": "utilization", "min_percent": 1.0},)
        )
        skipped = evaluate_slo(spec, audits, timeline=None)
        assert skipped.passed and skipped.results[0]["skipped"]
        assert "slo.utilization" not in skipped.to_flat()

        tracer = EventTracer()
        tracer.emit(0.0, "rms", "platform", {"clusters": {"c0": 10}})
        tracer.counter(0.0, "rms", "allocated", {"c0": 5.0})
        tracer.counter(10.0, "rms", "allocated", {"c0": 5.0})
        timeline = TimelineBuilder(samples=2).build(tracer.events)
        measured = evaluate_slo(spec, audits, timeline)
        assert measured.results[0]["measured"] == 50.0
        assert measured.passed


class TestTrajectory:
    def make_dir(self, tmp_path, rates_by_issue):
        for issue, rates in rates_by_issue.items():
            (tmp_path / f"BENCH_{issue}.json").write_text(
                json.dumps({"issue": issue, "results": rates}), encoding="utf-8"
            )
        return str(tmp_path)

    def test_load_sorts_by_issue(self, tmp_path):
        directory = self.make_dir(
            tmp_path,
            {10: {"a_per_second": 1.0}, 2: {"a_per_second": 2.0}},
        )
        snapshots = load_trajectory(directory)
        assert [s.issue for s in snapshots] == [2, 10]

    def test_non_rate_and_non_finite_results_ignored(self, tmp_path):
        directory = self.make_dir(
            tmp_path,
            {1: {"a_per_second": 5.0, "overhead_pct": 3.0, "b_per_second": "nan"}},
        )
        (snapshot,) = load_trajectory(directory)
        assert snapshot.rates == {"a_per_second": 5.0}

    def test_corrupt_snapshot_raises(self, tmp_path):
        (tmp_path / "BENCH_1.json").write_text("{broken", encoding="utf-8")
        with pytest.raises(ValueError, match="BENCH_1.json"):
            load_trajectory(str(tmp_path))

    def test_regression_detected(self, tmp_path):
        directory = self.make_dir(
            tmp_path,
            {
                1: {"a_per_second": 1000.0, "b_per_second": 100.0},
                2: {"a_per_second": 900.0, "b_per_second": 10.0},
            },
        )
        report = trajectory_report(load_trajectory(directory), tolerance=0.5)
        assert report["passed"] is False
        (regression,) = report["regressions"]
        assert regression["metric"] == "b_per_second"
        assert regression["ratio"] == pytest.approx(0.1)

    def test_single_snapshot_passes_with_note(self, tmp_path):
        directory = self.make_dir(tmp_path, {1: {"a_per_second": 1.0}})
        report = trajectory_report(load_trajectory(directory))
        assert report["passed"] is True and "note" in report

    def test_added_and_removed_metrics_have_no_verdict(self):
        a = BenchSnapshot(1, "BENCH_1.json", {"old_per_second": 1.0})
        b = BenchSnapshot(2, "BENCH_2.json", {"new_per_second": 1.0})
        statuses = {e["metric"]: e["status"] for e in diff_latest([a, b])}
        assert statuses == {"old_per_second": "removed", "new_per_second": "added"}

    def test_tolerance_validation(self):
        with pytest.raises(ValueError, match="tolerance"):
            diff_latest([], tolerance=1.5)

    def test_self_test_trips_on_synthetic_regression(self):
        report = self_test()
        assert report["self_test_ok"] is True


class TestDegeneratePaths:
    def test_summarize_zero_audits_is_flat_and_finite(self):
        summary = summarize_audits([])
        assert summary["jobs"] == 0.0
        assert summary["wait_mean"] == 0.0
        assert summary["bounded_slowdown_max"] == 0.0
        json.dumps(summary, allow_nan=False)  # no inf/nan sneaks in

    def test_timeline_on_a_zero_job_event_stream(self):
        tracer = EventTracer()
        tracer.emit(0.0, "engine", "dispatch", {"callback": "tick"})
        tracer.emit(10.0, "engine", "dispatch", {"callback": "tick"})
        timeline = TimelineBuilder(samples=4).build(tracer.events)
        assert "jobs.running" not in timeline.series
        assert timeline.series["engine.dispatched"][-1] == 2.0
        assert build_audits(tracer.events) == []

    def test_new_baseline_rate_has_no_verdict_and_no_inf(self):
        a = BenchSnapshot(1, "BENCH_1.json", {"a_per_second": 0.0})
        b = BenchSnapshot(2, "BENCH_2.json", {"a_per_second": 5.0})
        (entry,) = diff_latest([a, b])
        assert entry["status"] == "new-baseline"
        assert "ratio" not in entry
        json.dumps(entry, allow_nan=False)  # would raise on inf/nan
        report = trajectory_report([a, b])
        assert report["passed"] is True  # a new baseline is not a regression
        json.dumps(report, allow_nan=False)


def faulted_tracer() -> EventTracer:
    """A hand-built fault trace: crash at 20, outage 40-70, recovery at 90."""
    t = EventTracer()
    t.emit(0.0, "rms", "platform", {"clusters": {"c0": 8, "c1": 8}})
    t.counter(0.0, "rms", "allocated", {"c0": 4.0})
    t.emit(0.0, "fault", "plan", {"plan": "p", "events": 3})
    t.emit(20.0, "rms", "capacity", {"cluster": "c0", "nodes": 4, "killed": ["j"]})
    t.emit(20.0, "fault", "crash", {"member": "c0", "nodes": 4, "killed": ["j"]})
    t.emit(40.0, "rms", "capacity", {"cluster": "c1", "nodes": 0, "killed": []})
    t.emit(40.0, "fault", "outage", {"member": "c1", "killed": []})
    t.counter(40.0, "fault", "down", {"members": 1.0})
    t.emit(70.0, "rms", "capacity", {"cluster": "c1", "nodes": 8, "killed": []})
    t.emit(70.0, "fault", "recover", {"member": "c1", "nodes": 8})
    t.counter(70.0, "fault", "down", {"members": 0.0})
    t.emit(90.0, "rms", "capacity", {"cluster": "c0", "nodes": 8, "killed": []})
    t.emit(90.0, "fault", "restart", {"member": "c0", "nodes": 4})
    return t


class TestFaultTimeline:
    def test_capacity_and_fault_series(self):
        timeline = TimelineBuilder(samples=9).build(faulted_tracer().events)
        times = timeline.times()
        total = dict(zip(times, timeline.series["capacity.total"]))
        assert total[30.0] == 12.0  # after the c0 crash
        assert total[50.0] == 4.0  # c1 blacked out
        assert total[90.0] == 16.0  # everything restored
        down = dict(zip(times, timeline.series["fault.down"]))
        assert down[50.0] == 1.0 and down[80.0] == 0.0
        # Cumulative fault events exclude the informational plan record.
        assert timeline.series["fault.events"][-1] == 4.0

    def test_resized_capacity_keeps_util_truthful(self):
        t = EventTracer()
        t.emit(0.0, "rms", "platform", {"clusters": {"c0": 8}})
        t.counter(0.0, "rms", "allocated", {"c0": 4.0})
        t.emit(5.0, "rms", "capacity", {"cluster": "c0", "nodes": 4, "killed": []})
        t.counter(5.0, "rms", "allocated", {"c0": 4.0})
        t.counter(10.0, "rms", "allocated", {"c0": 4.0})
        timeline = TimelineBuilder(samples=2).build(t.events)
        # 4/8 before the shrink, 4/4 afterwards.
        assert timeline.series["util.pct"] == [50.0, 100.0, 100.0]

    def test_time_to_recover_objective(self):
        timeline = TimelineBuilder(samples=9).build(faulted_tracer().events)
        audits = build_audits(faulted_tracer().events)
        spec = SLOSpec(
            name="recovery",
            objectives=({"kind": "time_to_recover", "max_seconds": 40.0},),
        )
        report = evaluate_slo(spec, audits, timeline)
        (result,) = report.results
        # The down span covers the 40-70 outage, to within one grid step.
        assert result["ok"] is True
        assert 20.0 <= result["measured"] <= 40.0
        strict = SLOSpec(
            name="strict",
            objectives=({"kind": "time_to_recover", "max_seconds": 10.0},),
        )
        assert not evaluate_slo(strict, audits, timeline).passed

    def test_time_to_recover_skipped_without_fault_series(self):
        spec = SLOSpec(
            name="recovery",
            objectives=({"kind": "time_to_recover", "max_seconds": 10.0},),
        )
        audits = build_audits(lifecycle_tracer().events)
        for timeline in (None, TimelineBuilder().build(lifecycle_tracer().events)):
            report = evaluate_slo(spec, audits, timeline)
            assert report.passed and report.results[0]["skipped"]
