"""Shared fixtures of the test suite.

The request/application/RMS factories live in :mod:`repro.testing` (one
home instead of per-module copies); this file re-exports them as fixtures
so test classes can request them by name, while modules that prefer plain
helpers import from ``repro.testing`` directly.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro import testing
from repro.cluster import Platform
from repro.core import CooRMv2
from repro.models import SpeedupModel, WorkingSetEvolution
from repro.sim import Simulator


@pytest.fixture
def simulator() -> Simulator:
    return Simulator()


@pytest.fixture
def platform() -> Platform:
    return Platform.single_cluster(64)


@pytest.fixture
def rms(platform, simulator) -> CooRMv2:
    return CooRMv2(platform, simulator, rescheduling_interval=1.0)


@pytest.fixture
def speedup_model() -> SpeedupModel:
    return SpeedupModel()


@pytest.fixture
def small_evolution() -> WorkingSetEvolution:
    """A deterministic, linearly growing working set (20 steps, up to ~100 GiB)."""
    return WorkingSetEvolution(np.linspace(5_000.0, 100_000.0, 20))


def make_rms(node_count: int = 64, strict: bool = False, interval: float = 1.0):
    """Build a (simulator, platform, rms) triple for ad-hoc scenarios."""
    return testing.make_env(
        nodes=node_count, interval=interval, strict_equipartition=strict
    )


# --------------------------------------------------------------------- #
# Shared builder fixtures (delegating to repro.testing)
# --------------------------------------------------------------------- #
@pytest.fixture
def request_builders():
    """The (pa, np_, p_) request factories as one namespace."""
    return testing


@pytest.fixture
def app_factory():
    """Factory building an application's request sets from requests."""
    return testing.app_with


@pytest.fixture
def pset_factory():
    """Factory building a preemptible request set from requests."""
    return testing.p_set


@pytest.fixture
def rms_env_factory():
    """Factory building a wired (simulator, platform, RMS) triple."""
    return testing.make_env


@pytest.fixture
def recording_app_cls():
    """Application class that records every RMS callback."""
    return testing.RecordingApp
