"""Setuptools shim so the package installs in environments without `wheel`.

Normal installs should use ``pip install -e .`` (pyproject.toml is the source
of truth); this file only exists so that ``python setup.py develop`` works on
minimal/offline toolchains.
"""
from setuptools import setup

setup()
