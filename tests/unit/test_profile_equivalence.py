"""Property tests: indexed StepFunction vs a pure-python reference.

The kernel overhaul replaced the linear-scan ``StepFunction`` internals with
bisect-indexed lookups, single-pass merges, in-place rectangle updates and a
delta-sweep builder.  These tests pin the new implementation against
``ReferenceStepFunction`` -- a deliberately naive reimplementation of the
original semantics (linear scans, point-evaluation merges) -- over random
breakpoint sets, including duplicate-time rectangles and infinite durations.
"""
from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import StepBuilder, StepFunction

_EPS = 1e-9
_APPROX = 1e-6


class ReferenceStepFunction:
    """Naive step function on ``[0, inf)``: linear scans everywhere.

    Mirrors the documented semantics of :class:`StepFunction` (right
    continuity, value 0 before t=0, eps-compaction keeping the first value of
    every run) without any of the indexing tricks.
    """

    def __init__(self, times, values):
        assert times[0] == 0.0
        self.times = []
        self.values = []
        for t, v in zip(times, values):
            if self.values and abs(v - self.values[-1]) < _EPS:
                continue
            self.times.append(float(t))
            self.values.append(float(v))

    def value_at(self, t):
        if t < 0:
            return 0.0
        value = self.values[0]
        for bt, bv in zip(self.times, self.values):
            if bt <= t:
                value = bv
            else:
                break
        return value

    def min_over(self, start, end):
        if end <= start:
            return self.value_at(start)
        best = self.value_at(start)
        for bt, bv in zip(self.times, self.values):
            if start < bt < end and bv < best:
                best = bv
        if start < 0:
            best = min(best, 0.0)
        return best

    def integrate(self, start, end):
        if end <= start:
            return 0.0
        total = 0.0
        for i, (bt, bv) in enumerate(zip(self.times, self.values)):
            seg_end = self.times[i + 1] if i + 1 < len(self.times) else math.inf
            lo = max(bt, start)
            hi = min(seg_end, end)
            if hi <= lo:
                continue
            if math.isinf(hi):
                if abs(bv) < _EPS:
                    continue
                raise ValueError("non-zero to infinity")
            total += bv * (hi - lo)
        return total

    def combine(self, other, op):
        times = sorted(set(self.times) | set(other.times))
        values = [op(self.value_at(t), other.value_at(t)) for t in times]
        return ReferenceStepFunction(times, values)

    def add_rectangle(self, start, duration, height):
        if duration <= 0 or height == 0:
            return ReferenceStepFunction(self.times, self.values)
        end = start + duration
        new_edges = {float(start)} if math.isinf(end) else {float(start), float(end)}
        times = sorted(set(self.times) | new_edges)
        values = [
            self.value_at(t) + (height if start <= t and (math.isinf(end) or t < end) else 0.0)
            for t in times
        ]
        return ReferenceStepFunction(times, values)


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
_heights = st.integers(min_value=-8, max_value=8)
_starts = st.one_of(
    st.integers(min_value=0, max_value=40).map(float),
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False, width=32),
)
_durations = st.one_of(
    st.integers(min_value=1, max_value=30).map(float),
    st.floats(min_value=0.25, max_value=30.0, allow_nan=False, width=32),
    st.just(math.inf),
)
_rect = st.tuples(_starts, _durations, _heights)
_rects = st.lists(_rect, min_size=0, max_size=12)


def _build_pair(rects, base=0):
    """The same rectangle chain as an indexed profile and as a reference."""
    fast = StepFunction.constant(base)
    ref = ReferenceStepFunction([0.0], [float(base)])
    for start, duration, height in rects:
        fast = fast.add_rectangle(start, duration, height)
        ref = ref.add_rectangle(start, duration, height)
    return fast, ref


def _assert_profiles_match(fast: StepFunction, ref: ReferenceStepFunction):
    assert len(fast.times) == len(ref.times), (fast.times, ref.times)
    for a, b in zip(fast.times, ref.times):
        assert abs(a - b) < _APPROX
    for a, b in zip(fast.values, ref.values):
        assert abs(a - b) < _APPROX


# --------------------------------------------------------------------- #
# Point / window queries
# --------------------------------------------------------------------- #
@settings(max_examples=200, deadline=None)
@given(rects=_rects, probes=st.lists(st.floats(-5.0, 90.0, allow_nan=False), max_size=8))
def test_value_at_matches_reference(rects, probes):
    fast, ref = _build_pair(rects, base=4)
    _assert_profiles_match(fast, ref)
    for t in probes + list(fast.times):
        assert fast.value_at(t) == pytest.approx(ref.value_at(t), abs=_APPROX)


@settings(max_examples=200, deadline=None)
@given(
    rects=_rects,
    start=st.floats(-5.0, 80.0, allow_nan=False),
    width=st.floats(0.0, 50.0, allow_nan=False),
)
def test_min_over_matches_reference(rects, start, width):
    fast, ref = _build_pair(rects, base=4)
    assert fast.min_over(start, start + width) == pytest.approx(
        ref.min_over(start, start + width), abs=_APPROX
    )


@settings(max_examples=200, deadline=None)
@given(
    rects=_rects,
    start=st.floats(0.0, 80.0, allow_nan=False),
    width=st.floats(0.0, 50.0, allow_nan=False),
)
def test_integrate_matches_reference(rects, start, width):
    fast, ref = _build_pair(rects)  # base 0: eventually-zero tails are common
    assert fast.integrate(start, start + width) == pytest.approx(
        ref.integrate(start, start + width), abs=1e-4
    )


@settings(max_examples=100, deadline=None)
@given(rects=_rects)
def test_integrate_to_infinity_matches_reference(rects):
    fast, ref = _build_pair(rects)
    try:
        expected = ref.integrate(0.0, math.inf)
    except ValueError:
        from repro.core.errors import ProfileError

        with pytest.raises(ProfileError):
            fast.integrate(0.0, math.inf)
        return
    assert fast.integrate(0.0, math.inf) == pytest.approx(expected, abs=1e-4)


# --------------------------------------------------------------------- #
# Merge algebra
# --------------------------------------------------------------------- #
@settings(max_examples=200, deadline=None)
@given(rects_a=_rects, rects_b=_rects)
def test_combine_ops_match_reference(rects_a, rects_b):
    fa, ra = _build_pair(rects_a, base=3)
    fb, rb = _build_pair(rects_b, base=2)
    import operator

    for fast_op, op in (
        (fa + fb, operator.add),
        (fa - fb, operator.sub),
        (fa.maximum(fb), max),
        (fa.minimum(fb), min),
    ):
        _assert_profiles_match(fast_op, ra.combine(rb, op))


@settings(max_examples=150, deadline=None)
@given(rects=_rects, start=_starts, duration=_durations, height=_heights)
def test_rectangle_ops_match_reference(rects, start, duration, height):
    fast, ref = _build_pair(rects, base=5)
    _assert_profiles_match(fast.add_rectangle(start, duration, height),
                           ref.add_rectangle(start, duration, height))
    _assert_profiles_match(fast.subtract_rectangle(start, duration, height),
                           ref.add_rectangle(start, duration, -height))


# --------------------------------------------------------------------- #
# Duplicate-time and infinity edge cases, pinned explicitly
# --------------------------------------------------------------------- #
def test_duplicate_time_rectangles_collapse():
    fast, ref = _build_pair([(10.0, 5.0, 3), (10.0, 5.0, -3), (10.0, 5.0, 2)], base=4)
    _assert_profiles_match(fast, ref)
    assert fast.value_at(10.0) == pytest.approx(6.0)
    assert fast.value_at(15.0) == pytest.approx(4.0)


def test_infinite_rectangle_tail():
    fast, ref = _build_pair([(7.0, math.inf, 2), (3.0, 4.0, 1)], base=1)
    _assert_profiles_match(fast, ref)
    assert fast.value_at(1e12) == pytest.approx(3.0)


def test_min_over_negative_start_sees_zero():
    profile = StepFunction.constant(5)
    assert profile.min_over(-2.0, 1.0) == 0.0
    assert profile.value_at(-0.5) == 0.0


# --------------------------------------------------------------------- #
# In-place ops and the builder against the functional chain
# --------------------------------------------------------------------- #
@settings(max_examples=200, deadline=None)
@given(rects=_rects)
def test_in_place_matches_functional_chain(rects):
    functional = StepFunction.constant(6)
    in_place = StepFunction.constant(6)
    for start, duration, height in rects:
        functional = functional.add_rectangle(start, duration, height)
        in_place.add_rectangle_in_place(start, duration, height)
    assert in_place.times == functional.times
    assert in_place.values == functional.values


@settings(max_examples=200, deadline=None)
@given(rects=_rects)
def test_builder_matches_sequential_chain(rects):
    chained = StepFunction.zero()
    builder = StepBuilder()
    for start, duration, height in rects:
        chained = chained.add_rectangle(start, duration, height)
        builder.add_rectangle(start, duration, height)
    built = builder.build()
    assert len(built.times) == len(chained.times)
    for a, b in zip(built.times, chained.times):
        assert abs(a - b) < _APPROX
    for a, b in zip(built.values, chained.values):
        assert abs(a - b) < _APPROX


@settings(max_examples=150, deadline=None)
@given(rects=_rects, probe=st.floats(0.0, 90.0, allow_nan=False))
def test_copy_is_independent(rects, probe):
    original = StepFunction.constant(4)
    for start, duration, height in rects:
        original.add_rectangle_in_place(start, duration, height)
    snapshot = original.copy()
    original.subtract_rectangle_in_place(0.0, math.inf, 1)
    assert snapshot.value_at(probe) == pytest.approx(original.value_at(probe) + 1, abs=_APPROX)
