"""The strict equi-partitioning baseline of Figure 11.

Under strict equi-partitioning the RMS always shows each malleable
application an equal slice of the preemptible capacity, regardless of what
the other applications actually use -- so resources one application leaves
idle cannot be filled by another.  CooRMv2's policy (equi-partitioning *with
filling*) relaxes exactly that.

The mechanism already lives in :func:`repro.core.eqschedule.eq_schedule`
(``strict=True``) and in the ``strict_equipartition`` flag of
:class:`~repro.core.scheduler.Scheduler` / :class:`~repro.core.rms.CooRMv2`;
this module provides a small factory so experiments and examples can build
both RMS variants symmetrically.
"""
from __future__ import annotations

from typing import Optional

from ..cluster.platform import Platform
from ..core.accounting import Accountant
from ..core.rms import CooRMv2
from ..sim.engine import Simulator

__all__ = ["make_rms", "make_strict_equipartition_rms", "make_filling_rms"]


def make_rms(
    platform: Platform,
    simulator: Simulator,
    strict_equipartition: bool,
    rescheduling_interval: float = 1.0,
    accountant: Optional[Accountant] = None,
) -> CooRMv2:
    """Build an RMS with either preemptible-sharing policy."""
    return CooRMv2(
        platform=platform,
        simulator=simulator,
        rescheduling_interval=rescheduling_interval,
        strict_equipartition=strict_equipartition,
        accountant=accountant,
    )


def make_strict_equipartition_rms(
    platform: Platform,
    simulator: Simulator,
    rescheduling_interval: float = 1.0,
) -> CooRMv2:
    """The Figure 11 baseline: equal slices, no filling."""
    return make_rms(platform, simulator, True, rescheduling_interval)


def make_filling_rms(
    platform: Platform,
    simulator: Simulator,
    rescheduling_interval: float = 1.0,
) -> CooRMv2:
    """CooRMv2's default policy: equi-partitioning with filling."""
    return make_rms(platform, simulator, False, rescheduling_interval)
