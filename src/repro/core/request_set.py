"""Request sets and request trees (paper Appendix A.2).

Each application holds three separate request sets -- pre-allocations
``R_PA``, non-preemptible requests ``R_¬P`` and preemptible requests ``R_P``.
Inside a set, the ``COALLOC`` / ``NEXT`` constraints induce a forest:
unconstrained requests (or requests whose parent lives outside the set) are
tree roots, and each constraint creates a parent/child edge.

:class:`RequestSet` stores one such set and provides the paper's ``roots``
and ``children`` helpers plus ordering and filtering utilities used by the
scheduler.  :class:`ApplicationRequests` groups the three sets of one
application.
"""
from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .errors import ConstraintError, RequestError
from .request import Request
from .types import RelatedHow, RequestType

__all__ = ["RequestSet", "ApplicationRequests"]


class RequestSet:
    """An ordered collection of requests of a single type.

    Insertion order is preserved (it matters for deterministic scheduling);
    membership tests and removal are O(1) via an id index.
    """

    def __init__(self, rtype: Optional[RequestType] = None, requests: Iterable[Request] = ()):
        self.rtype = rtype
        self._requests: List[Request] = []
        self._by_id: Dict[int, Request] = {}
        for r in requests:
            self.add(r)

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    def add(self, request: Request) -> None:
        """Add *request*, enforcing the set's request type if one is declared."""
        if self.rtype is not None and request.rtype is not self.rtype:
            raise RequestError(
                f"request #{request.request_id} has type {request.rtype.value}, "
                f"set only accepts {self.rtype.value}"
            )
        if request.request_id in self._by_id:
            raise RequestError(f"request #{request.request_id} already in set")
        self._requests.append(request)
        self._by_id[request.request_id] = request

    def remove(self, request: Request) -> None:
        """Remove *request*; children constrained to it become roots."""
        if request.request_id not in self._by_id:
            raise RequestError(f"request #{request.request_id} not in set")
        del self._by_id[request.request_id]
        self._requests.remove(request)

    def discard(self, request: Request) -> None:
        """Remove *request* if present; no error otherwise."""
        if request.request_id in self._by_id:
            self.remove(request)

    def __contains__(self, request: Request) -> bool:
        return isinstance(request, Request) and request.request_id in self._by_id

    def __iter__(self) -> Iterator[Request]:
        return iter(list(self._requests))

    def __len__(self) -> int:
        return len(self._requests)

    def __bool__(self) -> bool:
        return bool(self._requests)

    def get(self, request_id: int) -> Optional[Request]:
        """Request with the given id, or None."""
        return self._by_id.get(request_id)

    # ------------------------------------------------------------------ #
    # Tree navigation (Appendix A.2)
    # ------------------------------------------------------------------ #
    def roots(self) -> List[Request]:
        """Requests that are tree roots within this set.

        A request is a root if it is unconstrained (``FREE``) or if its parent
        request does not belong to this set.
        """
        out = []
        for r in self._requests:
            if r.related_how is RelatedHow.FREE or r.related_to is None:
                out.append(r)
            elif r.related_to.request_id not in self._by_id:
                out.append(r)
        return out

    def children(self, request: Request) -> List[Request]:
        """Requests of this set directly constrained to *request*."""
        return [
            r
            for r in self._requests
            if r.related_to is not None
            and r.related_to.request_id == request.request_id
            and r.related_how is not RelatedHow.FREE
        ]

    def descendants(self, request: Request) -> List[Request]:
        """All requests transitively constrained to *request* (pre-order)."""
        out: List[Request] = []
        stack = self.children(request)
        while stack:
            r = stack.pop(0)
            out.append(r)
            stack = self.children(r) + stack
        return out

    def validate_constraints(self) -> None:
        """Raise :class:`ConstraintError` if the constraint graph has a cycle."""
        for start in self._requests:
            seen = set()
            r: Optional[Request] = start
            while r is not None and r.related_how is not RelatedHow.FREE:
                if r.request_id in seen:
                    raise ConstraintError(
                        f"constraint cycle detected involving request #{start.request_id}"
                    )
                seen.add(r.request_id)
                r = r.related_to

    # ------------------------------------------------------------------ #
    # Filters used by the scheduler
    # ------------------------------------------------------------------ #
    def started(self) -> List[Request]:
        """Requests that have started and not yet finished."""
        return [r for r in self._requests if r.started() and not r.finished()]

    def pending(self) -> List[Request]:
        """Requests that have not started yet."""
        return [r for r in self._requests if r.pending()]

    def active_or_pending(self) -> List[Request]:
        """Requests that still matter for scheduling (not finished)."""
        return [r for r in self._requests if not r.finished()]

    def prune_finished(self) -> List[Request]:
        """Drop finished requests whose descendants are also all finished.

        Returns the removed requests.  Finished requests that still have
        unfinished children are kept because ``NEXT`` children need the
        parent's schedule to compute their own start time.
        """
        removed = []
        for r in list(self._requests):
            if r.finished() and all(c.finished() for c in self.descendants(r)):
                # Only safe to drop if nothing unfinished points at it.
                dependants = [c for c in self._requests if c.related_to is r and not c.finished()]
                if not dependants:
                    self.remove(r)
                    removed.append(r)
        return removed

    def total_requested_nodes(self) -> int:
        """Sum of node counts of unfinished requests (diagnostic metric)."""
        return sum(r.node_count for r in self._requests if not r.finished())

    def __repr__(self) -> str:
        kind = self.rtype.value if self.rtype else "mixed"
        return f"RequestSet({kind}, {len(self._requests)} requests)"


class ApplicationRequests:
    """The three per-application request sets of Appendix A.2."""

    def __init__(self, app_id: str):
        self.app_id = app_id
        self.preallocations = RequestSet(RequestType.PREALLOCATION)
        self.non_preemptible = RequestSet(RequestType.NON_PREEMPTIBLE)
        self.preemptible = RequestSet(RequestType.PREEMPTIBLE)

    def set_for(self, rtype: RequestType) -> RequestSet:
        """The request set that stores requests of type *rtype*."""
        if rtype is RequestType.PREALLOCATION:
            return self.preallocations
        if rtype is RequestType.NON_PREEMPTIBLE:
            return self.non_preemptible
        return self.preemptible

    def add(self, request: Request) -> None:
        """Route *request* into the set matching its type."""
        request.app_id = self.app_id
        self.set_for(request.rtype).add(request)

    def remove(self, request: Request) -> None:
        self.set_for(request.rtype).remove(request)

    def all_requests(self) -> List[Request]:
        """Every request of the application, over all three sets."""
        return list(self.preallocations) + list(self.non_preemptible) + list(self.preemptible)

    def find(self, request_id: int) -> Optional[Request]:
        """Look up a request by id across the three sets."""
        for rs in (self.preallocations, self.non_preemptible, self.preemptible):
            r = rs.get(request_id)
            if r is not None:
                return r
        return None

    def prune_finished(self) -> List[Request]:
        """Prune finished requests from all three sets."""
        removed = []
        for rs in (self.preallocations, self.non_preemptible, self.preemptible):
            removed.extend(rs.prune_finished())
        return removed

    def __repr__(self) -> str:
        return (
            f"ApplicationRequests({self.app_id!r}, PA={len(self.preallocations)}, "
            f"nonP={len(self.non_preemptible)}, P={len(self.preemptible)})"
        )
