"""Property-based tests of the main scheduler's safety invariants.

Whatever mix of pre-allocations, non-preemptible and preemptible requests the
applications submit, a scheduling pass must never plan to use more nodes than
the cluster has, must start every request it reports as startable, and must
always serve non-preemptible requests inside somebody's (pre-)allocation
budget.
"""
from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core import (
    ApplicationRequests,
    Request,
    RequestType,
    Scheduler,
    to_view,
)

CLUSTER_NODES = 32


@st.composite
def application_specs(draw):
    """A few applications, each with a random mix of requests."""
    n_apps = draw(st.integers(min_value=1, max_value=4))
    specs = []
    for i in range(n_apps):
        has_pa = draw(st.booleans())
        pa_nodes = draw(st.integers(min_value=1, max_value=CLUSTER_NODES)) if has_pa else 0
        np_nodes = draw(st.integers(min_value=0, max_value=CLUSTER_NODES))
        p_nodes = draw(st.integers(min_value=0, max_value=CLUSTER_NODES))
        np_duration = draw(st.floats(min_value=10.0, max_value=1000.0, allow_nan=False))
        specs.append((pa_nodes, np_nodes, p_nodes, np_duration))
    return specs


def build_applications(specs):
    applications = {}
    for i, (pa_nodes, np_nodes, p_nodes, np_duration) in enumerate(specs):
        app = ApplicationRequests(f"app{i}")
        if pa_nodes:
            app.add(Request("c0", pa_nodes, math.inf, RequestType.PREALLOCATION))
        if np_nodes:
            app.add(Request("c0", np_nodes, np_duration, RequestType.NON_PREEMPTIBLE))
        if p_nodes:
            app.add(Request("c0", p_nodes, math.inf, RequestType.PREEMPTIBLE))
        applications[f"app{i}"] = app
    return applications


class TestSchedulerInvariants:
    @given(specs=application_specs())
    @settings(max_examples=60, deadline=None)
    def test_planned_non_preemptible_usage_fits_the_cluster(self, specs):
        applications = build_applications(specs)
        scheduler = Scheduler({"c0": CLUSTER_NODES})
        scheduler.schedule(applications, now=0.0)

        # Rebuild the combined occupation of every scheduled pre-allocation
        # and non-preemptible request.  Inside one application, non-preemptible
        # requests live inside the pre-allocation, so the application's
        # footprint is the pointwise maximum of the two; the footprints of
        # different applications add up and must never exceed the cluster.
        total = None
        for app in applications.values():
            footprint = None
            for request_set in (app.preallocations, app.non_preemptible):
                occ = None
                for r in request_set:
                    if math.isinf(r.scheduled_at) or r.n_alloc <= 0:
                        continue
                    rect = to_view([make_started_copy(r)])
                    occ = rect if occ is None else occ + rect
                if occ is not None:
                    footprint = occ if footprint is None else footprint.union(occ)
            if footprint is not None:
                total = footprint if total is None else total + footprint
        if total is not None:
            assert total["c0"].max_value() <= CLUSTER_NODES + 1e-9

    @given(specs=application_specs())
    @settings(max_examples=60, deadline=None)
    def test_to_start_requests_are_scheduled_now(self, specs):
        applications = build_applications(specs)
        scheduler = Scheduler({"c0": CLUSTER_NODES})
        result = scheduler.schedule(applications, now=5.0)
        for r in result.to_start:
            assert r.scheduled_at <= 5.0 + 1e-6
            assert not r.started()

    @given(specs=application_specs())
    @settings(max_examples=60, deadline=None)
    def test_preemptive_views_never_exceed_free_capacity(self, specs):
        applications = build_applications(specs)
        scheduler = Scheduler({"c0": CLUSTER_NODES})
        result = scheduler.schedule(applications, now=0.0)
        for view in result.preemptive_views.values():
            assert view["c0"].max_value() <= CLUSTER_NODES + 1e-9
            assert view["c0"].min_value() >= -1e-9

    @given(specs=application_specs())
    @settings(max_examples=60, deadline=None)
    def test_scheduling_is_deterministic(self, specs):
        sched_a = Scheduler({"c0": CLUSTER_NODES}).schedule(build_applications(specs), now=0.0)
        sched_b = Scheduler({"c0": CLUSTER_NODES}).schedule(build_applications(specs), now=0.0)
        starts_a = sorted(r.node_count for r in sched_a.to_start)
        starts_b = sorted(r.node_count for r in sched_b.to_start)
        assert starts_a == starts_b


def make_started_copy(request: Request) -> Request:
    """A started clone used to turn a planned request into an occupation view."""
    clone = request.clone_spec()
    clone.n_alloc = request.n_alloc
    clone.mark_started(request.scheduled_at)
    return clone
