"""Fully-predictably evolving applications (paper Section 4).

Such an application knows its evolution at submission time (e.g. a static
workflow): it "sends several non-preemptible requests linked using the NEXT
constraint.  During its execution, if from one request to another the
node-count decreases, it has to call done with the node IDs it chooses to
free.  Otherwise, if the node-count increases, the RMS sends it the new node
IDs."
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..core.request import Request
from ..core.types import ClusterId, NodeId, RelatedHow, RequestType, Time
from .base import BaseApplication

__all__ = ["EvolutionPhase", "FullyPredictableEvolvingApplication"]


@dataclass(frozen=True)
class EvolutionPhase:
    """One phase of a known evolution: a node count held for a duration."""

    node_count: int
    duration: Time

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise ValueError("node_count must be positive")
        if self.duration <= 0 or math.isinf(self.duration):
            raise ValueError("duration must be positive and finite")


class FullyPredictableEvolvingApplication(BaseApplication):
    """An application whose resource evolution is fully known in advance."""

    def __init__(
        self,
        name: str,
        phases: Sequence[EvolutionPhase],
        cluster_id: ClusterId = "cluster0",
    ):
        super().__init__(name, cluster_id)
        if not phases:
            raise ValueError("at least one phase is required")
        self.phases: Tuple[EvolutionPhase, ...] = tuple(phases)
        self.requests: List[Request] = []
        self.phase_starts: List[Time] = []
        self.current_phase = -1
        self._submitted = False

    # ------------------------------------------------------------------ #
    def on_views(self, non_preemptive, preemptive) -> None:
        super().on_views(non_preemptive, preemptive)
        if self._submitted:
            return
        self._submitted = True
        previous: Optional[Request] = None
        for phase in self.phases:
            request = self.submit(
                node_count=phase.node_count,
                duration=phase.duration,
                rtype=RequestType.NON_PREEMPTIBLE,
                related_how=RelatedHow.FREE if previous is None else RelatedHow.NEXT,
                related_to=previous,
            )
            self.requests.append(request)
            previous = request

    def on_start(self, request: Request, node_ids: FrozenSet[NodeId]) -> None:
        if request not in self.requests:
            return
        index = self.requests.index(request)
        self.current_phase = index
        self.phase_starts.append(self.now)

        previous = self.requests[index - 1] if index > 0 else None
        if previous is not None and not previous.finished():
            # Shrinking transition: the predecessor is still holding nodes;
            # give back the ones this phase does not need.
            keep = self.phases[index].node_count
            surplus = sorted(previous.node_ids)[keep:]
            self.done(previous, released_node_ids=surplus)

        if index == len(self.requests) - 1:
            # Completion is the last request expiring.
            self.rms.simulator.schedule(request.duration, self._complete)
        else:
            # Shrinking transitions must be initiated by the application: end
            # the current request exactly when its phase is over so the NEXT
            # successor can take over (the RMS handles growing transitions by
            # sending extra node IDs).
            next_phase = self.phases[index + 1]
            if next_phase.node_count < self.phases[index].node_count:
                self.rms.simulator.schedule(
                    request.duration, self._end_phase_early, index
                )

    def _end_phase_early(self, index: int) -> None:
        request = self.requests[index]
        if request.finished() or self.killed or self.finished():
            return
        keep = self.phases[index + 1].node_count
        surplus = sorted(request.node_ids)[keep:]
        self.done(request, released_node_ids=surplus)

    def _complete(self) -> None:
        if self.finished() or self.killed:
            return
        for request in self.requests:
            if not request.finished():
                self.done(request)
        self.finish()

    # ------------------------------------------------------------------ #
    def planned_node_seconds(self) -> float:
        """Node-seconds the declared evolution will consume."""
        return sum(p.node_count * p.duration for p in self.phases)

    def planned_makespan(self) -> float:
        """Total duration of the declared evolution."""
        return sum(p.duration for p in self.phases)
