"""repro -- a reproduction of CooRMv2, the RMS for non-predictably evolving
applications of Klein & Pérez (INRIA RR-7644 / CLUSTER 2011).

The package is organised bottom-up:

* :mod:`repro.sim` -- discrete-event simulation engine;
* :mod:`repro.cluster` -- nodes, clusters and the platform substrate;
* :mod:`repro.core` -- requests, views, the scheduling algorithms
  (``toView`` / ``fit`` / ``eqSchedule`` / Conservative Back-Filling) and the
  CooRMv2 RMS server;
* :mod:`repro.models` -- AMR working-set evolution, speed-up model and the
  dynamic-vs-static analysis of Section 2;
* :mod:`repro.apps` -- application behaviours (rigid, moldable, malleable,
  evolving, the AMR application and the Parameter-Sweep Application);
* :mod:`repro.baselines` -- static allocation, strict equi-partitioning and a
  rigid-only FCFS+CBF batch scheduler;
* :mod:`repro.metrics`, :mod:`repro.workloads` -- measurement and workload
  generation utilities;
* :mod:`repro.experiments` -- one driver per figure of the evaluation;
* :mod:`repro.campaign` -- declarative scenario specs, parallel multi-seed
  campaign execution and a persistent result store (also the
  ``python -m repro`` command-line interface).

Quick start::

    from repro import Simulator, Platform, CooRMv2
    from repro.apps import AmrApplication, ParameterSweepApplication
    from repro.models import WorkingSetEvolution

    sim = Simulator()
    rms = CooRMv2(Platform.single_cluster(64), sim)
    amr = AmrApplication("amr", WorkingSetEvolution.generate(100_000, seed=1),
                         preallocation_nodes=40)
    psa = ParameterSweepApplication("psa", task_duration=60.0)
    amr.on_finished = lambda _: psa.shutdown()
    amr.connect(rms); psa.connect(rms)
    sim.run()
"""
from .core import (
    CooRMv2,
    Request,
    RequestType,
    RelatedHow,
    Scheduler,
    StepFunction,
    View,
)
from .cluster import Platform
from .sim import RandomSource, Simulator, derive_seed

__version__ = "1.1.0"

__all__ = [
    "CooRMv2",
    "Request",
    "RequestType",
    "RelatedHow",
    "Scheduler",
    "StepFunction",
    "View",
    "Platform",
    "Simulator",
    "RandomSource",
    "derive_seed",
    "campaign",
    "federation",
    "__version__",
]


def __getattr__(name: str):
    # The campaign and federation subsystems pull in the experiment drivers
    # and application behaviours, so they are imported lazily to keep
    # ``import repro`` light for library users.
    # (import_module, not ``from . import``: the latter re-enters this
    # __getattr__ through importlib's fromlist handling and recurses.)
    if name in ("campaign", "federation"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
