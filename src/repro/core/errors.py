"""Exception hierarchy of the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything coming out of the RMS with a single ``except`` clause.
"""
from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ProfileError(ReproError):
    """An invalid operation on a step-function availability profile."""


class ViewError(ReproError):
    """An invalid operation on a view (collection of per-cluster profiles)."""


class RequestError(ReproError):
    """An invalid request (bad node count, duration, constraint, ...)."""


class ConstraintError(RequestError):
    """A request constraint refers to a missing or incompatible request."""


class SchedulingError(ReproError):
    """The scheduler reached an inconsistent state."""


class CapacityError(SchedulingError):
    """A request can never be satisfied with the configured resources."""


class ProtocolError(ReproError):
    """An application violated the CooRMv2 RMS-application protocol.

    The paper mandates that such applications be killed (Section 3.1.4).
    """


class SessionError(ReproError):
    """Operation on an unknown, closed or killed application session."""


class AllocationError(ReproError):
    """Node-ID bookkeeping failed (double allocation, unknown node, ...)."""


class AdmissionError(ReproError):
    """The meta-scheduler's admission control refused a placement.

    Raised when every federation member is down, throttled or behind an
    open circuit breaker; distinct from :class:`RequestError` so callers
    can tell "rejected right now" from "can never fit".
    """


class SimulationError(ReproError):
    """The discrete-event simulation engine reached an invalid state."""


class WorkloadError(ReproError):
    """A workload description or trace file is malformed."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""
