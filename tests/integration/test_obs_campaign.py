"""Observability layer end-to-end: determinism, neutrality, CLI.

The two load-bearing properties of ``repro.obs`` (ISSUE 6 satellite c):

* identical ``(scenario, seed)`` campaigns produce **byte-identical** trace
  exports, run records (including SLO verdict rows) and derived analytics
  (timelines, job audits) at 1 vs 4 workers -- instrumentation must never
  observe anything process-dependent;
* a *disabled* tracer is invisible: every simulation metric is identical
  with and without live instruments, so the golden fig1--fig11 fixtures
  (exercised by the regression suite) cannot be perturbed by this layer.
"""
from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, ResultStore, resolve_scenarios
from repro.campaign.registry import consume_provenance, get_runner
from repro.campaign.runner import trace_filename
from repro.obs import EventTracer, MetricsRegistry, PhaseProfiler, observe
from repro.__main__ import main as repro_main

#: Cheap scenarios (single tiny simulation per run).
FAST = ("baseline-dynamic", "strict-equipartition")


def make_spec(name: str) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        scenarios=tuple(resolve_scenarios(FAST)),
        seeds=2,
        root_seed=0,
    )


def run_observed_campaign(root: Path, workers: int) -> Path:
    store = ResultStore(root / f"w{workers}")
    trace_dir = root / f"traces_w{workers}"
    spec = make_spec("obs-itest")
    CampaignRunner(
        spec, store=store, collect_obs=True, trace_dir=trace_dir, slo_spec="default"
    ).run(workers=workers)
    return store.runs_path(spec.name), trace_dir


class TestWorkerCountInvariance:
    def test_records_and_traces_byte_identical_at_1_and_4_workers(self, tmp_path):
        runs_1, traces_1 = run_observed_campaign(tmp_path, workers=1)
        runs_4, traces_4 = run_observed_campaign(tmp_path, workers=4)

        assert runs_1.read_bytes() == runs_4.read_bytes()
        # The records carry SLO verdicts (the runner above evaluates the
        # default spec), so the byte equality just proven covers them; spot
        # check they are actually there.
        slo_rows = [
            json.loads(line)["slo"]
            for line in runs_1.read_text(encoding="utf-8").splitlines()
        ]
        assert slo_rows and all("slo.passed" in row for row in slo_rows)

        files_1 = sorted(p.name for p in traces_1.iterdir())
        files_4 = sorted(p.name for p in traces_4.iterdir())
        assert files_1 == files_4 and files_1, "trace files missing or mismatched"
        for name in files_1:
            assert (traces_1 / name).read_bytes() == (traces_4 / name).read_bytes(), (
                f"trace {name} differs between 1 and 4 workers"
            )

    def test_timelines_and_audits_byte_identical_at_1_and_4_workers(self, tmp_path):
        from repro.obs import TimelineBuilder, build_audits, load_jsonl
        from repro.obs.lifecycle import audits_to_json

        _runs_1, traces_1 = run_observed_campaign(tmp_path, workers=1)
        _runs_4, traces_4 = run_observed_campaign(tmp_path, workers=4)

        compared = 0
        for path_1 in sorted(traces_1.iterdir()):
            path_4 = traces_4 / path_1.name
            events_1 = load_jsonl(path_1.read_text(encoding="utf-8"))
            events_4 = load_jsonl(path_4.read_text(encoding="utf-8"))
            timeline_1 = TimelineBuilder().build(events_1).to_json()
            timeline_4 = TimelineBuilder().build(events_4).to_json()
            assert timeline_1 == timeline_4, f"timeline of {path_1.name} differs"
            audits_1 = audits_to_json(build_audits(events_1))
            audits_4 = audits_to_json(build_audits(events_4))
            assert audits_1 == audits_4, f"audits of {path_1.name} differ"
            compared += 1
        assert compared == len(FAST) * 2

    def test_trace_files_cover_every_run(self, tmp_path):
        _runs, traces = run_observed_campaign(tmp_path, workers=2)
        expected = {
            trace_filename(scenario, replicate)
            for scenario in FAST
            for replicate in range(2)
        }
        assert {p.name for p in traces.iterdir()} == expected


class TestObsRecords:
    def test_obs_snapshot_persisted_and_phase_timings_not(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec("obs-records")
        CampaignRunner(spec, store=store, collect_obs=True).run(workers=1)
        records = store.load_records(spec.name)
        assert records
        for record in records:
            obs = record["obs"]
            assert obs["engine.events_dispatched"] > 0
            assert obs["scheduler.passes"] > 0
            # Wall-clock phase data is non-deterministic and must never
            # land in runs.jsonl; it travels to meta.json instead.
            assert "_phase_seconds" not in record
        meta = json.loads(
            (store.campaign_dir(spec.name) / "meta.json").read_text(encoding="utf-8")
        )
        phases = meta["phase_seconds"]
        assert "campaign.execute" in phases
        assert "store.write" in phases

    def test_plain_campaign_records_carry_no_obs(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec("obs-off")
        CampaignRunner(spec, store=store).run(workers=1)
        for record in store.load_records(spec.name):
            assert "obs" not in record


class TestObservationNeutrality:
    @pytest.mark.parametrize("scenario_name", ["fig9", "fig10"])
    def test_live_instruments_change_no_simulation_metric(self, scenario_name):
        (spec,) = resolve_scenarios([scenario_name])
        runner = get_runner(spec.runner)

        consume_provenance()
        plain = dict(runner(spec, 7))
        consume_provenance()
        with observe(
            tracer=EventTracer(), metrics=MetricsRegistry(), profiler=PhaseProfiler()
        ):
            observed = dict(runner(spec, 7))
        consume_provenance()

        assert plain == observed


class TestObsCli:
    def export(self, tmp_path, fmt: str, seed: int = 1, name: str = "t") -> Path:
        out = tmp_path / f"{name}.{fmt}"
        code = repro_main([
            "obs", "export",
            "--scenario", "baseline-dynamic",
            "--seed", str(seed),
            "--format", fmt,
            "--out", str(out),
        ])
        assert code == 0
        return out

    def test_export_writes_valid_chrome_trace(self, tmp_path):
        out = self.export(tmp_path, "chrome")
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["traceEvents"], "empty trace"
        assert doc["otherData"]["event_count"] > 0
        assert doc["otherData"]["dropped_events"] == 0

    def test_export_repeats_byte_identically(self, tmp_path):
        first = self.export(tmp_path, "jsonl", name="a")
        second = self.export(tmp_path, "jsonl", name="b")
        assert first.read_bytes() == second.read_bytes()

    def test_diff_exit_codes(self, tmp_path, capsys):
        same_a = self.export(tmp_path, "jsonl", seed=1, name="a")
        same_b = self.export(tmp_path, "jsonl", seed=1, name="b")
        other = self.export(tmp_path, "jsonl", seed=2, name="c")

        assert repro_main(["obs", "diff", str(same_a), str(same_b)]) == 0
        assert "identical" in capsys.readouterr().out

        assert repro_main(["obs", "diff", str(same_a), str(other)]) == 1
        assert "diverge" in capsys.readouterr().out

        assert repro_main(["obs", "diff", str(same_a), str(tmp_path / "nope")]) == 2

    def test_summarize_prints_event_breakdown(self, capsys):
        assert repro_main(
            ["obs", "summarize", "--scenario", "baseline-dynamic", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        assert "engine" in out and "dispatch" in out

    def test_export_unknown_scenario_fails_cleanly(self, capsys):
        assert repro_main(["obs", "export", "--scenario", "figZZ"]) == 2
        assert "error" in capsys.readouterr().err


class TestAnalyticsCli:
    def run_cli(self, *argv: str) -> int:
        return repro_main(list(argv))

    def test_timeline_json_is_deterministic(self, tmp_path, capsys):
        outputs = []
        for name in ("a", "b"):
            out = tmp_path / f"{name}.json"
            code = self.run_cli(
                "obs", "timeline",
                "--scenario", "baseline-dynamic", "--seed", "3",
                "--json", "--out", str(out),
            )
            assert code == 0
            outputs.append(out.read_bytes())
        capsys.readouterr()
        assert outputs[0] == outputs[1]
        parsed = json.loads(outputs[0])
        assert "util.pct" in parsed["series"]

    def test_audit_text_and_json(self, capsys):
        assert self.run_cli(
            "obs", "audit", "--scenario", "baseline-dynamic", "--seed", "1"
        ) == 0
        out = capsys.readouterr().out
        assert "wait s" in out and "slowdown" in out

        assert self.run_cli(
            "obs", "audit", "--scenario", "baseline-dynamic", "--seed", "1", "--json"
        ) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed and all("queue_wait" in audit for audit in parsed)

    def test_slo_exit_codes(self, tmp_path, capsys):
        assert self.run_cli(
            "obs", "slo", "--scenario", "baseline-dynamic", "--seed", "1"
        ) == 0
        assert "PASS" in capsys.readouterr().out

        strict = tmp_path / "strict.json"
        strict.write_text(
            json.dumps({
                "name": "impossible",
                "objectives": [
                    {"kind": "mean_bounded_slowdown", "max": 0.5},
                ],
            }),
            encoding="utf-8",
        )
        assert self.run_cli(
            "obs", "slo",
            "--scenario", "baseline-dynamic", "--seed", "1",
            "--spec", str(strict),
        ) == 1
        assert "FAIL" in capsys.readouterr().out

        assert self.run_cli(
            "obs", "slo", "--scenario", "baseline-dynamic",
            "--spec", str(tmp_path / "missing.json"),
        ) == 2

    def test_report_renders_dashboard(self, capsys):
        assert self.run_cli(
            "obs", "report", "--scenario", "baseline-dynamic", "--seed", "1"
        ) == 0
        out = capsys.readouterr().out
        assert "obs report" in out
        assert "timeline" in out and "job lifecycle" in out and "SLO spec" in out

    def test_trajectory_exit_codes(self, tmp_path, capsys):
        def snapshot(issue: int, rate: float) -> None:
            (tmp_path / f"BENCH_{issue}.json").write_text(
                json.dumps({"issue": issue, "results": {"x_per_second": rate}}),
                encoding="utf-8",
            )

        snapshot(1, 1000.0)
        snapshot(2, 950.0)
        assert self.run_cli("obs", "trajectory", "--dir", str(tmp_path)) == 0
        assert "PASS" in capsys.readouterr().out

        snapshot(3, 10.0)
        assert self.run_cli("obs", "trajectory", "--dir", str(tmp_path)) == 1
        assert "FAIL" in capsys.readouterr().out

        assert self.run_cli("obs", "trajectory", "--self-test") == 0

    def test_campaign_slo_flag_end_to_end(self, tmp_path, capsys):
        results = tmp_path / "results"
        assert self.run_cli(
            "campaign", "run",
            "--scenarios", "baseline-dynamic",
            "--seeds", "2",
            "--name", "slo-cli",
            "--results-dir", str(results),
            "--slo", "default",
            "--quiet",
        ) == 0
        capsys.readouterr()
        assert self.run_cli(
            "campaign", "report", "slo-cli", "--results-dir", str(results)
        ) == 0
        out = capsys.readouterr().out
        assert "SLO (PASS" in out and "slo.passed" in out

    def test_campaign_slo_flag_rejects_bad_spec(self, tmp_path, capsys):
        assert self.run_cli(
            "campaign", "run",
            "--scenarios", "baseline-dynamic",
            "--name", "slo-bad",
            "--results-dir", str(tmp_path),
            "--slo", str(tmp_path / "missing.json"),
            "--quiet",
        ) == 2
        assert "error" in capsys.readouterr().err


class TestBenchSmoke:
    def test_engine_overhead_bench_shape(self):
        from repro.obs.bench import bench_engine_overhead

        result = bench_engine_overhead(events=2_000, repeats=1)
        assert result["engine_events_per_second"] > 0
        assert "tracing_disabled_overhead_pct" in result

    def test_trace_ingest_bench_shape(self):
        from repro.obs.bench import bench_trace_ingest

        result = bench_trace_ingest(jobs=1_000, repeats=1)
        assert result["trace_ingest_jobs_per_second"] > 0
