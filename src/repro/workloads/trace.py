"""Reading and writing rigid-job traces in a minimal SWF-like format.

The Parallel Workloads Archive's Standard Workload Format (SWF) describes one
job per line with whitespace-separated fields.  This module supports the four
fields the simulator needs -- job id, submit time, requested node count,
requested runtime -- plus ``#`` comments, so externally produced traces can
be replayed against the RMS and generated workloads can be saved for
reproducibility.
"""
from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from ..core.errors import WorkloadError
from .generator import RigidJobSpec

__all__ = ["dump_trace", "load_trace", "dumps_trace", "loads_trace"]


def dumps_trace(jobs: Iterable[RigidJobSpec]) -> str:
    """Serialise jobs to the text format (one ``id submit nodes runtime`` line each)."""
    lines = ["# job_id submit_time node_count duration"]
    for job in jobs:
        lines.append(
            f"{job.job_id} {job.submit_time:.3f} {job.node_count} {job.duration:.3f}"
        )
    return "\n".join(lines) + "\n"


def loads_trace(text: str) -> List[RigidJobSpec]:
    """Parse the text format produced by :func:`dumps_trace`."""
    jobs: List[RigidJobSpec] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise WorkloadError(f"line {lineno}: expected 4 fields, got {len(parts)}")
        job_id, submit_s, nodes_s, duration_s = parts
        try:
            submit = float(submit_s)
            nodes = int(nodes_s)
            duration = float(duration_s)
        except ValueError as exc:
            raise WorkloadError(f"line {lineno}: {exc}") from exc
        if submit < 0 or nodes <= 0 or duration <= 0:
            raise WorkloadError(f"line {lineno}: fields out of range")
        jobs.append(
            RigidJobSpec(
                job_id=job_id, submit_time=submit, node_count=nodes, duration=duration
            )
        )
    jobs.sort(key=lambda j: j.submit_time)
    return jobs


def dump_trace(jobs: Iterable[RigidJobSpec], path: Union[str, Path]) -> None:
    """Write a trace file."""
    Path(path).write_text(dumps_trace(jobs), encoding="utf-8")


def load_trace(path: Union[str, Path]) -> List[RigidJobSpec]:
    """Read a trace file."""
    return loads_trace(Path(path).read_text(encoding="utf-8"))
