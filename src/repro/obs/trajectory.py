"""Performance trajectory across the repo's committed ``BENCH_*.json`` files.

Every performance-focused PR commits a ``BENCH_<issue>.json`` snapshot
(measured rates plus the floors they were gated against).  This module turns
that convention into an explicit regression gate: :func:`load_trajectory`
collects the snapshots in issue order, :func:`diff_latest` compares the
newest snapshot's measured rates against the previous one, and
:func:`trajectory_report` flags any rate that fell by more than a tolerance
fraction.  CI runs the gate after producing the current snapshot, so a perf
regression fails the build with the exact metric and ratio -- not a vague
"benchmarks feel slower".

Rates are every finite ``results`` entry named ``*_per_second`` (higher is
better).  The default tolerance is deliberately loose (50 %) because
snapshots committed from different machines vary; the absolute floors inside
each snapshot remain the tight per-machine gate.
"""
from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "BenchSnapshot",
    "load_trajectory",
    "diff_latest",
    "trajectory_report",
    "self_test",
    "format_report",
]

#: Snapshot filename convention; the captured group is the issue number.
BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: Default allowed fractional drop of a rate before it counts as a
#: regression (0.5 == the rate halved).
DEFAULT_TOLERANCE = 0.5


@dataclass(frozen=True)
class BenchSnapshot:
    """One parsed ``BENCH_<issue>.json``: the issue number and its rates."""

    issue: int
    filename: str
    #: Measured rates, ``metric name -> events/requests per second``.
    rates: Mapping[str, float]

    @classmethod
    def from_document(cls, filename: str, data: Mapping[str, object]) -> "BenchSnapshot":
        match = BENCH_PATTERN.match(os.path.basename(filename))
        issue = int(match.group(1)) if match else int(data.get("issue", 0))
        results = data.get("results", {})
        if not isinstance(results, Mapping):
            raise ValueError(f"{filename}: 'results' is not an object")
        rates: Dict[str, float] = {}
        for name, value in results.items():
            if not str(name).endswith("_per_second"):
                continue
            try:
                rate = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
            if rate == rate and rate not in (float("inf"), float("-inf")):
                rates[str(name)] = rate
        return cls(issue=issue, filename=os.path.basename(filename), rates=rates)


def load_trajectory(directory: str) -> List[BenchSnapshot]:
    """Parse every ``BENCH_*.json`` under *directory*, sorted by issue.

    Raises :class:`ValueError` on a snapshot that exists but cannot be
    parsed -- a corrupt committed benchmark file is a repo bug, not a
    condition to skip silently.
    """
    snapshots: List[Tuple[int, BenchSnapshot]] = []
    for entry in sorted(os.listdir(directory)):
        if not BENCH_PATTERN.match(entry):
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{entry}: unreadable benchmark snapshot: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"{entry}: benchmark snapshot is not a JSON object")
        snapshot = BenchSnapshot.from_document(entry, data)
        snapshots.append((snapshot.issue, snapshot))
    snapshots.sort(key=lambda pair: pair[0])
    return [snapshot for _issue, snapshot in snapshots]


def diff_latest(
    snapshots: List[BenchSnapshot], tolerance: float = DEFAULT_TOLERANCE
) -> List[Dict[str, object]]:
    """Compare the newest snapshot's rates against the previous snapshot.

    Returns one entry per metric present in **both** snapshots: previous and
    latest rate, their ratio, and whether the drop exceeds *tolerance*
    (``latest < previous * (1 - tolerance)``).  Metrics that only exist on
    one side are reported as ``added`` / ``removed`` with no verdict.
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be in [0, 1)")
    if len(snapshots) < 2:
        return []
    previous, latest = snapshots[-2], snapshots[-1]
    entries: List[Dict[str, object]] = []
    for name in sorted(set(previous.rates) | set(latest.rates)):
        before = previous.rates.get(name)
        after = latest.rates.get(name)
        if before is None:
            entries.append({"metric": name, "status": "added", "latest": after})
            continue
        if after is None:
            entries.append({"metric": name, "status": "removed", "previous": before})
            continue
        if before <= 0:
            # A rate that first becomes measurable is a new baseline, not an
            # infinite improvement; keep inf/nan out of the report JSON.
            entries.append(
                {
                    "metric": name,
                    "status": "new-baseline",
                    "previous": before,
                    "latest": after,
                }
            )
            continue
        ratio = after / before
        regressed = after < before * (1.0 - tolerance)
        entries.append(
            {
                "metric": name,
                "status": "regressed" if regressed else (
                    "improved" if after > before else "held"
                ),
                "previous": before,
                "latest": after,
                "ratio": round(ratio, 4),
            }
        )
    return entries


def trajectory_report(
    snapshots: List[BenchSnapshot],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, object]:
    """Full gate verdict over a loaded trajectory.

    With fewer than two snapshots there is nothing to compare; the report
    passes with an explanatory note (a fresh repo must not fail its own
    first benchmark run).
    """
    report: Dict[str, object] = {
        "snapshots": [
            {"issue": s.issue, "file": s.filename, "metrics": len(s.rates)}
            for s in snapshots
        ],
        "tolerance": tolerance,
    }
    if len(snapshots) < 2:
        report["passed"] = True
        report["comparisons"] = []
        report["regressions"] = []
        report["note"] = "fewer than two snapshots; nothing to compare"
        return report
    comparisons = diff_latest(snapshots, tolerance=tolerance)
    regressions = [c for c in comparisons if c.get("status") == "regressed"]
    report["passed"] = not regressions
    report["comparisons"] = comparisons
    report["regressions"] = regressions
    report["previous_issue"] = snapshots[-2].issue
    report["latest_issue"] = snapshots[-1].issue
    return report


def self_test(tolerance: float = DEFAULT_TOLERANCE) -> Dict[str, object]:
    """Prove the gate trips: diff a synthetic pair with an injected regression.

    Returns the report of the synthetic comparison; callers assert that
    ``passed`` is False and exactly the injected metric is flagged.  CI runs
    this before the real gate so a silently-broken comparator can never
    green-light a regression.
    """
    good = BenchSnapshot(
        issue=1,
        filename="BENCH_1.json",
        rates={"alpha_per_second": 1000.0, "beta_per_second": 500.0},
    )
    # beta collapses far past any sane tolerance; alpha holds.
    bad = BenchSnapshot(
        issue=2,
        filename="BENCH_2.json",
        rates={"alpha_per_second": 1000.0, "beta_per_second": 1.0},
    )
    report = trajectory_report([good, bad], tolerance=tolerance)
    regressed = {c["metric"] for c in report["regressions"]}  # type: ignore[index]
    report["self_test_ok"] = (
        report["passed"] is False and regressed == {"beta_per_second"}
    )
    return report


def format_report(report: Mapping[str, object]) -> str:
    """Render a trajectory report as the text CI prints."""
    lines = ["perf trajectory:"]
    for snap in report.get("snapshots", []):  # type: ignore[union-attr]
        lines.append(
            f"  BENCH issue {snap['issue']:>3}  {snap['file']}  "
            f"({snap['metrics']} rate metrics)"
        )
    note = report.get("note")
    if note:
        lines.append(f"  {note}")
        return "\n".join(lines)
    lines.append(
        f"  comparing issue {report['previous_issue']} -> "
        f"{report['latest_issue']} (tolerance {float(report['tolerance']):.0%} drop)"
    )
    for entry in report.get("comparisons", []):  # type: ignore[union-attr]
        status = entry["status"]
        if status in ("added", "removed", "new-baseline"):
            lines.append(f"    {entry['metric']}: {status}")
            continue
        lines.append(
            f"    {entry['metric']}: {entry['previous']:.1f} -> "
            f"{entry['latest']:.1f} ({entry['ratio']:.2f}x) [{status}]"
        )
    verdict = "PASS" if report.get("passed") else "FAIL"
    lines.append(f"  verdict: {verdict}")
    return "\n".join(lines)
