"""Unit tests of the non-predictably evolving AMR application (Section 5.1.1)."""
from __future__ import annotations


import numpy as np
import pytest

from repro.apps import AmrApplication
from repro.cluster import Platform
from repro.core import CooRMv2
from repro.models import SpeedupModel, WorkingSetEvolution
from repro.sim import Simulator


@pytest.fixture
def evolution() -> WorkingSetEvolution:
    return WorkingSetEvolution(np.linspace(5_000.0, 100_000.0, 15))


def make_env(nodes=64):
    sim = Simulator()
    platform = Platform.single_cluster(nodes)
    rms = CooRMv2(platform, sim, rescheduling_interval=1.0)
    return sim, platform, rms


class TestConfiguration:
    def test_parameter_validation(self, evolution):
        with pytest.raises(ValueError):
            AmrApplication("a", evolution, preallocation_nodes=0)
        with pytest.raises(ValueError):
            AmrApplication("a", evolution, preallocation_nodes=4, target_efficiency=0.0)
        with pytest.raises(ValueError):
            AmrApplication("a", evolution, preallocation_nodes=4, announce_interval=-1.0)

    def test_required_nodes_capped_by_preallocation(self, evolution):
        app = AmrApplication("a", evolution, preallocation_nodes=10)
        assert app.required_nodes(len(evolution) - 1) <= 10
        assert app.required_nodes(0) >= 1

    def test_static_variant_always_wants_the_whole_preallocation(self, evolution):
        app = AmrApplication("a", evolution, preallocation_nodes=10, static_allocation=True)
        assert all(app.required_nodes(i) == 10 for i in range(len(evolution)))


class TestDynamicExecution:
    def test_runs_all_steps_and_releases_resources(self, evolution):
        sim, platform, rms = make_env()
        app = AmrApplication("amr", evolution, preallocation_nodes=40)
        app.connect(rms)
        sim.run()
        assert app.finished()
        assert app.current_step == evolution.num_steps
        assert len(app.step_records) == evolution.num_steps
        assert platform.cluster("cluster0").free_count() == 64
        # One pre-allocation plus at least one non-preemptible request were used.
        summary = rms.accountant.summary("amr")
        assert summary.preallocated_node_seconds > 0
        assert summary.non_preemptible_node_seconds > 0

    def test_allocation_tracks_the_working_set(self, evolution):
        sim, _, rms = make_env()
        app = AmrApplication("amr", evolution, preallocation_nodes=40)
        app.connect(rms)
        sim.run()
        nodes_per_step = [rec.node_count for rec in app.step_records]
        # The working set grows, so the allocation must grow too.
        assert nodes_per_step[-1] > nodes_per_step[0]
        assert max(nodes_per_step) <= 40

    def test_never_exceeds_preallocation(self, evolution):
        sim, _, rms = make_env()
        app = AmrApplication("amr", evolution, preallocation_nodes=8)
        app.connect(rms)
        sim.run()
        assert max(rec.node_count for rec in app.step_records) <= 8

    def test_step_durations_follow_the_speedup_model(self, evolution):
        sim, _, rms = make_env()
        model = SpeedupModel()
        app = AmrApplication("amr", evolution, preallocation_nodes=40, speedup_model=model)
        app.connect(rms)
        sim.run()
        for rec in app.step_records:
            assert rec.duration == pytest.approx(
                model.step_duration(rec.node_count, rec.data_size_mib)
            )
        assert app.used_node_seconds == pytest.approx(
            sum(rec.node_seconds for rec in app.step_records)
        )
        assert app.mean_nodes() > 0

    def test_computation_time_matches_step_durations(self, evolution):
        sim, _, rms = make_env()
        app = AmrApplication("amr", evolution, preallocation_nodes=40)
        app.connect(rms)
        sim.run()
        assert app.computation_time() == pytest.approx(
            sum(rec.duration for rec in app.step_records), rel=1e-6
        )


class TestStaticAndAnnounced:
    def test_static_run_uses_constant_allocation(self, evolution):
        sim, _, rms = make_env()
        app = AmrApplication("amr", evolution, preallocation_nodes=30, static_allocation=True)
        app.connect(rms)
        sim.run()
        assert app.finished()
        assert {rec.node_count for rec in app.step_records} == {30}

    def test_static_uses_more_node_seconds_than_dynamic(self, evolution):
        results = {}
        for label, static in (("dynamic", False), ("static", True)):
            sim, _, rms = make_env()
            app = AmrApplication(
                "amr", evolution, preallocation_nodes=40, static_allocation=static
            )
            app.connect(rms)
            sim.run()
            results[label] = app.used_node_seconds
        assert results["static"] > results["dynamic"]

    def test_announced_updates_slow_the_application_down(self, evolution):
        end_times = {}
        for interval in (0.0, 60.0):
            sim, _, rms = make_env()
            app = AmrApplication(
                "amr", evolution, preallocation_nodes=40, announce_interval=interval
            )
            app.connect(rms)
            sim.run()
            assert app.finished()
            end_times[interval] = app.computation_time()
        assert end_times[60.0] > end_times[0.0]

    def test_on_finished_callback_fires(self, evolution):
        sim, _, rms = make_env()
        app = AmrApplication("amr", evolution, preallocation_nodes=40)
        seen = []
        app.on_finished = seen.append
        app.connect(rms)
        sim.run()
        assert seen == [app]
