"""Unit tests of the fault-injection layer: plans, admission, injector."""
from __future__ import annotations

import json

import pytest

from repro.apps.rigid import RigidApplication
from repro.core import AdmissionError, Request, RequestType
from repro.faults import (
    AdmissionController,
    AdmissionSpec,
    CircuitBreaker,
    ElasticRule,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    TokenBucket,
    fault_plan_names,
    get_fault_plan,
    resolve_fault_plan,
)
from repro.federation import ClusterSpec, Federation, FederationSpec
from repro.sim import Simulator
from repro.testing import make_env, RecordingApp


# --------------------------------------------------------------------- #
# Declarative plans
# --------------------------------------------------------------------- #
class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="time must be >= 0"):
            FaultEvent(time=-1.0, kind="crash", member="c0", nodes=1)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time=0.0, kind="meteor", member="c0")
        with pytest.raises(ValueError, match="member name"):
            FaultEvent(time=0.0, kind="crash", member="", nodes=1)
        with pytest.raises(ValueError, match="positive node count"):
            FaultEvent(time=0.0, kind="crash", member="c0", nodes=0)
        with pytest.raises(ValueError, match="whole member"):
            FaultEvent(time=0.0, kind="outage", member="c0", nodes=4)

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fields"):
            FaultEvent.from_dict(
                {"time": 0.0, "kind": "crash", "member": "c0", "nodes": 1, "oops": 1}
            )


class TestElasticRule:
    def test_validation(self):
        with pytest.raises(ValueError, match="interval must be positive"):
            ElasticRule(member="c0", interval=0.0, until=10.0)
        with pytest.raises(ValueError, match="start <= until"):
            ElasticRule(member="c0", interval=1.0, until=5.0, start=10.0)
        with pytest.raises(ValueError, match="low_util < high_util"):
            ElasticRule(member="c0", interval=1.0, until=5.0,
                        low_util=0.9, high_util=0.5)
        with pytest.raises(ValueError, match="max_nodes must be >= min_nodes"):
            ElasticRule(member="c0", interval=1.0, until=5.0,
                        min_nodes=8, max_nodes=4)

    def test_check_grid_is_finite_and_excludes_start(self):
        rule = ElasticRule(member="c0", interval=10.0, until=35.0, start=5.0)
        assert rule.check_times() == [15.0, 25.0, 35.0]

    def test_check_grid_tolerates_float_endpoints(self):
        rule = ElasticRule(member="c0", interval=0.1, until=0.3)
        assert len(rule.check_times()) == 3


class TestAdmissionSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            AdmissionSpec(rate=-1.0)
        with pytest.raises(ValueError, match="burst"):
            AdmissionSpec(burst=0)
        with pytest.raises(ValueError, match="failure_threshold"):
            AdmissionSpec(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            AdmissionSpec(cooldown=0.0)


class TestFaultPlan:
    def test_promotes_mappings_and_round_trips_through_json(self):
        plan = FaultPlan(
            name="p",
            events=({"time": 5.0, "kind": "crash", "member": "#0", "nodes": 2},),
            elastic=({"member": "#1", "interval": 10.0, "until": 50.0},),
            admission={"rate": 1.0, "burst": 4},
            jitter=3.0,
            max_respawns=2,
        )
        assert isinstance(plan.events[0], FaultEvent)
        assert isinstance(plan.elastic[0], ElasticRule)
        assert isinstance(plan.admission, AdmissionSpec)
        text = json.dumps(plan.to_dict(), sort_keys=True, allow_nan=False)
        assert FaultPlan.from_dict(json.loads(text)) == plan

    def test_validation(self):
        with pytest.raises(ValueError, match="needs a name"):
            FaultPlan(name="")
        with pytest.raises(ValueError, match="jitter"):
            FaultPlan(name="p", jitter=-1.0)
        with pytest.raises(ValueError, match="max_respawns"):
            FaultPlan(name="p", max_respawns=-1)

    def test_label_mentions_every_section(self):
        plan = get_fault_plan("flaky-nodes")
        assert "events" in plan.label() and "admission" in plan.label()

    def test_registry(self):
        assert {"flaky-nodes", "blackout", "elastic-tide"} <= set(fault_plan_names())
        with pytest.raises(KeyError, match="unknown fault plan"):
            get_fault_plan("nope")

    def test_resolve_accepts_name_mapping_and_plan(self):
        plan = get_fault_plan("blackout")
        assert resolve_fault_plan("blackout") == plan
        assert resolve_fault_plan(plan) is plan
        assert resolve_fault_plan(plan.to_dict()) == plan
        with pytest.raises(TypeError, match="plan name, mapping or FaultPlan"):
            resolve_fault_plan(42)

    def test_builtin_plans_round_trip(self):
        for name in fault_plan_names():
            plan = get_fault_plan(name)
            assert FaultPlan.from_dict(plan.to_dict()) == plan


# --------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------- #
class TestTokenBucket:
    def test_zero_rate_never_throttles(self):
        bucket = TokenBucket(rate=0.0, burst=1)
        assert all(bucket.try_take(0.0) for _ in range(100))

    def test_burst_exhausts_then_refills_in_sim_time(self):
        bucket = TokenBucket(rate=0.5, burst=2)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent
        assert not bucket.try_take(1.0)  # only half a token back
        assert bucket.try_take(2.0)  # one full token refilled
        assert not bucket.try_take(2.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        bucket.try_take(0.0)
        assert bucket.try_take(1000.0) and bucket.try_take(1000.0)
        assert not bucket.try_take(1000.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allows(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allows(5.0)
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allows(9.0)
        assert breaker.allows(10.0)  # cooldown elapsed: one probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_re_trips_immediately(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0)
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.allows(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # One probe failure re-trips at once -- no second streak of three.
        breaker.record_failure(10.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        assert breaker.opened_at == 10.0  # cooldown restarted
        assert not breaker.allows(15.0)


class TestAdmissionController:
    def make(self, **spec_kwargs):
        spec = AdmissionSpec(**spec_kwargs)
        return AdmissionController(spec, ["east", "west"])

    def test_admits_by_default(self):
        controller = self.make()
        assert controller.admit("east", 0.0) == (True, None)
        assert controller.rejections == 0

    def test_throttles_per_member(self):
        controller = self.make(rate=0.001, burst=1)
        assert controller.admit("east", 0.0) == (True, None)
        assert controller.admit("east", 0.0) == (False, "throttled")
        assert controller.admit("west", 0.0) == (True, None)  # separate bucket
        assert controller.rejections == 1

    def test_open_breaker_rejects_without_burning_tokens(self):
        controller = self.make(rate=0.001, burst=1, failure_threshold=1,
                               cooldown=100.0)
        controller.record_failure("east", 0.0)
        assert controller.admit("east", 0.0) == (False, "breaker-open")
        assert controller.buckets["east"].tokens == 1.0  # untouched
        assert controller.breaker_trips() == 1
        assert ("east", "open") in controller.states()

    def test_success_closes_the_half_open_probe(self):
        controller = self.make(failure_threshold=1, cooldown=10.0)
        controller.record_failure("east", 0.0)
        ok, _reason = controller.admit("east", 10.0)
        assert ok
        controller.record_success("east")
        assert ("east", "closed") in controller.states()


# --------------------------------------------------------------------- #
# RMS capacity mutation (the crash/restart primitive)
# --------------------------------------------------------------------- #
class TestCapacityMutation:
    def test_shrink_kills_victim_owners_and_reports_them(self):
        sim, platform, rms = make_env(nodes=4)
        app = RecordingApp("a")
        rms.connect(app, "a")
        rms.submit("a", Request("cluster0", 4, 100.0, RequestType.NON_PREEMPTIBLE))
        sim.run(10.0)
        killed = rms.set_capacity(2, reason="test crash")
        assert killed == ["a"]
        assert app.killed_reason == "test crash"
        assert platform.total_nodes() == 2

    def test_grow_after_shrink_restores_the_same_node_ids(self):
        _sim, platform, rms = make_env(nodes=8)
        cluster = platform.cluster("cluster0")
        before = sorted(cluster.nodes)
        rms.set_capacity(3)
        assert sorted(cluster.nodes) == before[:3]  # highest IDs shed first
        rms.set_capacity(8)
        assert sorted(cluster.nodes) == before  # lowest missing IDs re-added

    def test_noop_and_negative_capacity(self):
        _sim, _platform, rms = make_env(nodes=4)
        assert rms.set_capacity(4) == []
        with pytest.raises(ValueError, match="negative"):
            rms.set_capacity(-1)

    def test_release_capacity_never_kills_running_apps(self):
        sim, platform, rms = make_env(nodes=8)
        app = RecordingApp("a")
        rms.connect(app, "a")
        rms.submit("a", Request("cluster0", 4, 100.0, RequestType.NON_PREEMPTIBLE))
        sim.run(10.0)
        # Only 4 nodes are free; asking for 6 sheds just those 4.
        assert rms.release_capacity(6) == 4
        assert platform.total_nodes() == 4
        assert app.killed_reason is None
        assert rms.release_capacity(1) == 0  # nothing free any more
        assert rms.release_capacity(0) == 0

    def test_retired_nodes_keep_their_busy_seconds(self):
        sim, platform, rms = make_env(nodes=4)
        app = RecordingApp("a")
        rms.connect(app, "a")
        rms.submit("a", Request("cluster0", 4, 10.0, RequestType.NON_PREEMPTIBLE))
        sim.run(20.0)
        cluster = platform.cluster("cluster0")
        busy_before = cluster.busy_node_seconds(20.0)
        rms.release_capacity(4)
        assert cluster.retired_busy_seconds == pytest.approx(busy_before)
        assert cluster.busy_node_seconds(20.0) == pytest.approx(busy_before)


# --------------------------------------------------------------------- #
# The injector against a live federation
# --------------------------------------------------------------------- #
def federation(nodes=(8, 8), routing="round-robin", cluster_kwargs=None):
    cluster_kwargs = cluster_kwargs or [{} for _ in nodes]
    spec = FederationSpec(
        clusters=tuple(
            ClusterSpec(name=f"c{i}", nodes=n, **cluster_kwargs[i])
            for i, n in enumerate(nodes)
        ),
        routing=routing,
    )
    simulator = Simulator()
    return Federation(spec, simulator), simulator


def arm(fed, **plan_kwargs):
    injector = FaultInjector(FaultPlan(**plan_kwargs), fed)
    injector.arm()
    return injector


class TestFaultInjector:
    def test_arm_twice_raises(self):
        fed, _sim = federation()
        injector = arm(fed, name="p")
        with pytest.raises(ValueError, match="already armed"):
            injector.arm()

    def test_member_resolution_errors(self):
        fed, _sim = federation()
        for ref in ("#5", "#x", "nope"):
            injector = FaultInjector(
                FaultPlan(
                    name="p",
                    events=(FaultEvent(time=1.0, kind="outage", member=ref),),
                ),
                fed,
            )
            with pytest.raises(ValueError):
                injector.arm()

    def test_crash_kills_and_respawns_the_victim(self):
        fed, sim = federation()
        injector = arm(
            fed,
            name="p",
            events=(
                FaultEvent(time=10.0, kind="crash", member="#0", nodes=8),
                FaultEvent(time=20.0, kind="restart", member="#0", nodes=8),
            ),
        )
        app = RigidApplication("j", node_count=8, duration=100.0)
        fed.submit(app, node_count=8)
        assert app.cluster_id == "c0"

        def respawn(name):
            fed.submit(
                RigidApplication(name, node_count=8, duration=100.0), node_count=8
            )

        injector.note_submitted()
        injector.register_respawn("j", respawn)
        sim.run()
        assert injector.counts["crashes"] == 1
        assert injector.counts["restarts"] == 1
        assert injector.counts["jobs_rescheduled"] == 1
        assert injector.counts["jobs_lost"] == 0
        # The respawn landed on the surviving member and finished there.
        assert fed.routed_counts()["c1"] == 1
        assert injector.sla_attainment_pct() == 100.0

    def test_kill_without_registered_respawn_counts_lost(self):
        fed, sim = federation()
        injector = arm(
            fed,
            name="p",
            events=(FaultEvent(time=10.0, kind="crash", member="#0", nodes=8),),
        )
        fed.submit(RigidApplication("j", node_count=8, duration=100.0), node_count=8)
        injector.note_submitted()
        sim.run()
        assert injector.counts["jobs_lost"] == 1
        assert injector.sla_attainment_pct() == 0.0

    def test_max_respawns_bounds_the_retry_chain(self):
        fed, sim = federation()
        injector = arm(
            fed,
            name="p",
            max_respawns=1,
            events=(
                FaultEvent(time=10.0, kind="crash", member="#0", nodes=8),
                FaultEvent(time=30.0, kind="crash", member="#1", nodes=8),
            ),
        )

        def respawn(name):
            fed.submit(
                RigidApplication(name, node_count=8, duration=100.0), node_count=8
            )

        fed.submit(RigidApplication("j", node_count=8, duration=100.0), node_count=8)
        injector.note_submitted()
        injector.register_respawn("j", respawn)
        sim.run()
        # The c0 crash respawns j as j:r1 on c1; the c1 crash finds the
        # retry budget exhausted and the chain ends as lost.
        assert injector.counts["jobs_rescheduled"] == 1
        assert injector.counts["jobs_lost"] == 1

    def test_kill_all_members_outage_terminates_cleanly(self):
        fed, sim = federation()
        injector = arm(
            fed,
            name="total-blackout",
            max_respawns=0,
            events=(
                FaultEvent(time=5.0, kind="outage", member="#0"),
                FaultEvent(time=5.0, kind="outage", member="#1"),
            ),
        )
        apps = [
            RigidApplication(f"j{i}", node_count=4, duration=100.0) for i in range(2)
        ]
        for app in apps:
            fed.submit(app, node_count=4)
            injector.note_submitted()
        sim.run()  # must drain: no capacity ever comes back
        assert all(m.down for m in fed.members)
        assert fed.total_nodes() == 0
        assert injector.counts["jobs_lost"] == 2
        assert injector.sla_attainment_pct() == 0.0
        assert injector.time_to_recover() == 0.0  # nothing ever recovered

    def test_outage_and_recover_fill_the_recovery_ledger(self):
        fed, sim = federation()
        injector = arm(
            fed,
            name="p",
            events=(
                FaultEvent(time=10.0, kind="outage", member="c0"),
                FaultEvent(time=60.0, kind="recover", member="c0"),
            ),
        )
        sim.run()
        assert injector.counts["outages"] == 1
        assert injector.counts["recoveries"] == 1
        assert injector.recovery_seconds == [50.0]
        assert injector.time_to_recover() == 50.0
        assert not fed.members[0].down
        assert fed.members[0].capacity == 8

    def test_duplicate_outage_and_recover_are_idempotent(self):
        fed, sim = federation()
        injector = arm(
            fed,
            name="p",
            events=(
                FaultEvent(time=10.0, kind="outage", member="c0"),
                FaultEvent(time=11.0, kind="outage", member="c0"),
                FaultEvent(time=60.0, kind="recover", member="c0"),
                FaultEvent(time=61.0, kind="recover", member="c0"),
            ),
        )
        sim.run()
        assert injector.counts["outages"] == 1
        assert injector.counts["recoveries"] == 1
        assert fed.members[0].capacity == 8

    def test_down_member_is_rerouted_around(self):
        fed, _sim = federation()
        fed.members[0].down = True
        app = RigidApplication("j", node_count=2, duration=5.0)
        fed.submit(app, node_count=2)  # round-robin would pick c0 first
        assert app.cluster_id == "c1"

    def test_all_members_down_raises_admission_error(self):
        fed, _sim = federation()
        for member in fed.members:
            member.down = True
        with pytest.raises(AdmissionError, match="down"):
            fed.submit(RigidApplication("j", node_count=2, duration=5.0), node_count=2)

    def test_elastic_grow_respects_rule_and_spec_ceilings(self):
        fed, sim = federation(
            nodes=(8,),
            routing="any",
            cluster_kwargs=[{"max_nodes": 12}],
        )
        injector = arm(
            fed,
            name="p",
            elastic=(
                ElasticRule(
                    member="#0", interval=10.0, until=10.0,
                    high_util=0.5, low_util=0.1, grow_step=8, max_nodes=32,
                ),
            ),
        )
        fed.submit(RigidApplication("j", node_count=8, duration=50.0), node_count=8)
        sim.run()
        # util 1.0 at the check: grow 8 -> 16, clamped by the spec's 12.
        assert injector.counts["elastic_grows"] == 1
        assert fed.members[0].capacity == 12

    def test_elastic_shrink_floors_at_spec_min_nodes(self):
        fed, sim = federation(
            nodes=(8,),
            routing="any",
            cluster_kwargs=[{"min_nodes": 6}],
        )
        injector = arm(
            fed,
            name="p",
            elastic=(
                ElasticRule(
                    member="#0", interval=10.0, until=10.0,
                    high_util=0.9, low_util=0.5, shrink_step=4, min_nodes=2,
                ),
            ),
        )
        sim.run()
        # Idle member: shrink wants 4 but the spec floor keeps 6 nodes.
        assert injector.counts["elastic_shrinks"] == 1
        assert fed.members[0].capacity == 6

    def test_elastic_rules_sit_out_degraded_members(self):
        fed, sim = federation(nodes=(8,), routing="any")
        injector = arm(
            fed,
            name="p",
            events=(FaultEvent(time=5.0, kind="crash", member="#0", nodes=4),),
            elastic=(
                ElasticRule(
                    member="#0", interval=10.0, until=10.0,
                    high_util=0.9, low_util=0.5, shrink_step=4, min_nodes=1,
                ),
            ),
        )
        sim.run()
        # The member is degraded (4 < baseline 8): elasticity must not
        # shrink it further while the fault path owns it.
        assert injector.counts["elastic_shrinks"] == 0
        assert fed.members[0].capacity == 4

    def test_jittered_plans_replay_identically_per_seed(self):
        plan = FaultPlan(
            name="p",
            jitter=30.0,
            events=(
                FaultEvent(time=10.0, kind="outage", member="c0"),
                FaultEvent(time=100.0, kind="recover", member="c0"),
            ),
        )

        def run(seed):
            fed, sim = federation()
            injector = FaultInjector(plan, fed, seed=seed)
            injector.arm()
            sim.run()
            return injector.summary(), injector.recovery_seconds

        assert run(7) == run(7)
        assert run(7)[1] != run(8)[1]  # jitter actually draws from the seed

    def test_admission_plan_installs_the_controller(self):
        fed, _sim = federation()
        injector = arm(fed, name="p", admission=AdmissionSpec(rate=1.0))
        assert fed.meta.admission is injector.admission
        assert injector.summary()["fault_breaker_trips"] == 0.0

    def test_summary_is_flat_and_json_safe(self):
        fed, sim = federation()
        injector = arm(
            fed,
            name="p",
            events=(
                FaultEvent(time=10.0, kind="outage", member="c0"),
                FaultEvent(time=60.0, kind="recover", member="c0"),
            ),
        )
        sim.run()
        summary = injector.summary()
        assert summary["fault_time_to_recover"] == 50.0
        assert summary["fault_sla_attainment_pct"] == 100.0
        assert all(isinstance(v, float) for v in summary.values())
        json.dumps(summary, allow_nan=False)  # must not raise
