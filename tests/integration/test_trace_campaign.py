"""Integration tests: SWF traces flowing through the campaign layer.

Covers the subsystem's acceptance path end to end: a real-format SWF
fixture loads, converts to a mixed adaptive workload, replays through
:class:`~repro.campaign.runner.CampaignRunner` byte-identically at 1 and 4
workers, and leaves its provenance in the result store and the CLI report.
"""
from __future__ import annotations

import json
from pathlib import Path


from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    PlatformSpec,
    ResultStore,
    ScenarioSpec,
    TraceSource,
    WorkloadSpec,
    resolve_scenarios,
)
from repro.campaign.cli import main as cli_main
from repro.traces import load_swf

FIXTURE = Path(__file__).parent.parent / "data" / "tiny.swf"


def fixture_scenario(name: str = "fixture-replay", mix=None) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        runner="amr_psa",
        description="replay the checked-in SWF fixture",
        platform=PlatformSpec(cluster_nodes=64),
        workload=WorkloadSpec(
            include_amr=False,
            trace=TraceSource(
                path=str(FIXTURE),
                transforms=(
                    {"kind": "filter", "statuses": [1]},
                    {"kind": "shift_to_zero"},
                ),
                mix=mix,
            ),
        ),
    )


def record_bytes(records) -> bytes:
    return "".join(
        json.dumps(r, sort_keys=True) + "\n" for r in records
    ).encode()


class TestFixtureReplay:
    def test_fixture_converts_and_replays_to_completion(self):
        spec = CampaignSpec(
            name="fixture",
            scenarios=(
                fixture_scenario(
                    mix={"rigid": 0.4, "moldable": 0.2, "malleable": 0.2, "evolving": 0.2}
                ),
            ),
        )
        result = CampaignRunner(spec).run(workers=1)
        metrics = result.metrics_of("fixture-replay")
        assert metrics["trace_jobs"] == 10  # 12 records - cancelled - unrunnable
        assert metrics["trace_finished"] == metrics["trace_jobs"]

    def test_byte_identical_at_1_and_4_workers(self):
        mix = {"rigid": 0.4, "moldable": 0.2, "malleable": 0.2, "evolving": 0.2}
        spec = CampaignSpec(
            name="fixture",
            scenarios=(fixture_scenario(mix=mix),),
            seeds=2,
        )
        serial = CampaignRunner(spec).run(workers=1)
        parallel = CampaignRunner(spec).run(workers=4)
        assert record_bytes(serial.records) == record_bytes(parallel.records)

    def test_builtin_trace_scenarios_byte_identical_across_workers(self):
        spec = CampaignSpec(
            name="synthetic",
            scenarios=tuple(resolve_scenarios(["trace-adaptive"])),
            seeds=2,
        )
        serial = CampaignRunner(spec).run(workers=1)
        parallel = CampaignRunner(spec).run(workers=2)
        assert record_bytes(serial.records) == record_bytes(parallel.records)

    def test_adaptive_mix_improves_or_matches_rigid_utilisation(self):
        # Sanity: converting to adaptive kinds still finishes every job.
        spec = CampaignSpec(
            name="mix",
            scenarios=(
                fixture_scenario(name="rigid-only"),
                fixture_scenario(name="all-malleable", mix={"malleable": 1.0}),
            ),
        )
        result = CampaignRunner(spec).run(workers=1)
        for scenario in ("rigid-only", "all-malleable"):
            metrics = result.metrics_of(scenario)
            assert metrics["trace_finished"] == metrics["trace_jobs"] == 10


class TestProvenance:
    def test_records_carry_provenance(self, tmp_path):
        spec = CampaignSpec(name="prov", scenarios=(fixture_scenario(),))
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store=store).run(workers=1)
        provenance = store.provenance_of("prov")["fixture-replay"]
        assert provenance["source"]["path"] == str(FIXTURE)
        assert [s["kind"] for s in provenance["steps"]][:2] == ["load", "fingerprint"]
        assert provenance["kind_counts"]["rigid"] == provenance["job_count"] == 10

    def test_provenance_fingerprint_tracks_content(self, tmp_path):
        copy = tmp_path / "copy.swf"
        copy.write_text(FIXTURE.read_text())
        spec = CampaignSpec(
            name="prov2",
            scenarios=(
                ScenarioSpec(
                    name="copy-replay",
                    platform=PlatformSpec(cluster_nodes=64),
                    workload=WorkloadSpec(
                        include_amr=False, trace=TraceSource(path=str(copy))
                    ),
                ),
            ),
        )
        store = ResultStore(tmp_path / "results")
        CampaignRunner(spec, store=store).run(workers=1)
        steps = store.provenance_of("prov2")["copy-replay"]["steps"]
        fingerprint = next(s for s in steps if s["kind"] == "fingerprint")
        original = load_swf(FIXTURE)
        assert fingerprint["sha256_16"]  # content hash, not path-derived
        assert original.job_count == 12

    def test_spec_json_round_trip_preserves_trace(self):
        spec = CampaignSpec(
            name="rt",
            scenarios=(
                fixture_scenario(mix={"rigid": 0.5, "malleable": 0.5}),
            ),
        )
        reloaded = CampaignSpec.from_json(spec.to_json())
        assert reloaded == spec
        assert reloaded.scenarios[0].trace == spec.scenarios[0].trace


class TestCli:
    def test_trace_info(self, capsys):
        assert cli_main(["trace", "info", str(FIXTURE)]) == 0
        out = capsys.readouterr().out
        assert "MaxNodes" in out and "64" in out

    def test_trace_info_json(self, capsys):
        assert cli_main(["trace", "info", str(FIXTURE), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directives"]["MaxNodes"] == "64"
        assert payload["summary"]["jobs"] == 12

    def test_trace_synth_convert_info_round_trip(self, tmp_path, capsys):
        synth = tmp_path / "synth.swf.gz"
        out = tmp_path / "out.swf"
        assert cli_main(
            ["trace", "synth", str(synth), "--jobs", "25", "--seed", "3"]
        ) == 0
        assert cli_main(
            [
                "trace", "convert", str(synth), str(out),
                "--clamp-nodes", "16", "--load-factor", "2",
                "--shift-to-zero", "--mix", "rigid=0.5,malleable=0.5",
            ]
        ) == 0
        trace = load_swf(out)
        assert trace.job_count == 25
        assert trace.max_nodes <= 16

    def test_trace_error_reporting(self, tmp_path, capsys):
        bad = tmp_path / "bad.swf"
        bad.write_text("1 2 3\n")
        assert cli_main(["trace", "info", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "bad.swf:1" in err

    def test_campaign_run_and_report_show_provenance(self, tmp_path, capsys):
        spec_path = tmp_path / "campaign.json"
        CampaignSpec(
            name="cli-prov",
            scenarios=(
                fixture_scenario(mix={"rigid": 0.5, "malleable": 0.5}),
            ),
        ).save(spec_path)
        assert cli_main(
            [
                "campaign", "run", "--spec", str(spec_path),
                "--results-dir", str(tmp_path / "results"), "--quiet",
            ]
        ) == 0
        capsys.readouterr()
        assert cli_main(
            [
                "campaign", "report", "cli-prov",
                "--results-dir", str(tmp_path / "results"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "workload: trace file" in out
        assert "tiny.swf" in out
        assert "mix:" in out


class TestThroughputFloor:
    def test_ingest_and_convert_meets_floor(self):
        """The acceptance floor: >= 10k jobs/s ingested + converted."""
        import time

        from repro.traces import AdaptiveMix, TraceModel, convert_trace, dumps_swf, loads_swf

        text = dumps_swf(TraceModel().synthesize(5000, seed=1))
        mix = AdaptiveMix(rigid=0.5, malleable=0.5)
        started = time.perf_counter()
        trace = loads_swf(text)
        jobs = convert_trace(trace, mix=mix, seed=0)
        elapsed = time.perf_counter() - started
        assert len(jobs) == 5000
        assert 5000 / elapsed > 10_000, f"only {5000 / elapsed:.0f} jobs/s"
