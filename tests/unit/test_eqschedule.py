"""Unit tests of eqSchedule() and max-min fair sharing (paper Algorithm 3)."""
from __future__ import annotations

import pytest

from repro.core import (
    View,
    eq_schedule,
    max_min_fair,
)
from repro.testing import p_, p_set


def p_request(n, duration=float("inf"), cluster="c"):
    return p_(n, duration, cluster)


class TestMaxMinFair:
    def test_enough_for_everyone(self):
        assert max_min_fair([3, 5, 2], 20) == [3, 5, 2]

    def test_equal_split_when_saturated(self):
        assert max_min_fair([10, 10], 10) == [5, 5]

    def test_small_demand_is_fully_served_first(self):
        alloc = max_min_fair([2, 100], 10)
        assert alloc[0] == 2
        assert alloc[1] == 8

    def test_never_exceeds_capacity_or_demand(self):
        demands = [7, 1, 4, 9]
        alloc = max_min_fair(demands, 12)
        assert sum(alloc) <= 12
        assert all(a <= d for a, d in zip(alloc, demands))

    def test_zero_capacity(self):
        assert max_min_fair([4, 4], 0) == [0, 0]

    def test_empty_demands(self):
        assert max_min_fair([], 10) == []


class TestEqSchedule:
    def test_single_application_gets_everything(self):
        r = p_request(10)
        views = eq_schedule({"a": p_set(r)}, View.constant({"c": 16}), not_before=0.0)
        assert views["a"]["c"].value_at(0) == 16
        assert r.scheduled_at == pytest.approx(0.0)
        assert r.n_alloc == 10

    def test_congested_split_is_fair(self):
        r1, r2 = p_request(16), p_request(16)
        views = eq_schedule(
            {"a": p_set(r1), "b": p_set(r2)}, View.constant({"c": 16}), not_before=0.0
        )
        assert views["a"]["c"].value_at(0) == 8
        assert views["b"]["c"].value_at(0) == 8
        assert r1.n_alloc == 8
        assert r2.n_alloc == 8

    def test_filling_lets_one_app_use_unrequested_resources(self):
        # Application "a" only wants 2 nodes; "b" should be offered the rest.
        r1, r2 = p_request(2), p_request(16)
        views = eq_schedule(
            {"a": p_set(r1), "b": p_set(r2)}, View.constant({"c": 16}), not_before=0.0
        )
        assert views["b"]["c"].value_at(0) == 14
        # "a" is never shown less than its equal partition.
        assert views["a"]["c"].value_at(0) >= 8

    def test_strict_mode_always_shows_equal_slice(self):
        r1, r2 = p_request(2), p_request(16)
        views = eq_schedule(
            {"a": p_set(r1), "b": p_set(r2)},
            View.constant({"c": 16}),
            not_before=0.0,
            strict=True,
        )
        assert views["a"]["c"].value_at(0) == 8
        assert views["b"]["c"].value_at(0) == 8

    def test_inactive_application_sees_its_potential_partition(self):
        r1 = p_request(16)
        empty = p_set()
        views = eq_schedule(
            {"busy": p_set(r1), "idle": empty}, View.constant({"c": 16}), not_before=0.0
        )
        # The idle application is shown what it would get if it became active
        # (an equal partition), not zero.
        assert views["idle"]["c"].value_at(0) >= 8

    def test_views_track_availability_profile(self):
        # Availability drops from 16 to 4 nodes at t=100.
        available = View({"c": View.constant({"c": 16})["c"].subtract_rectangle(100, 1000, 12)})
        r = p_request(16)
        views = eq_schedule({"a": p_set(r)}, available, not_before=0.0)
        assert views["a"]["c"].value_at(50) == 16
        assert views["a"]["c"].value_at(150) == 4

    def test_no_applications(self):
        assert eq_schedule({}, View.constant({"c": 8}), not_before=0.0) == {}

    def test_started_requests_keep_their_allocation_in_views(self):
        r1 = p_request(10)
        r1.mark_started(0.0)
        r2 = p_request(10)
        views = eq_schedule(
            {"a": p_set(r1), "b": p_set(r2)}, View.constant({"c": 16}), not_before=0.0
        )
        # Congested: both should be shown a fair share.
        assert views["a"]["c"].value_at(0) == 8
        assert views["b"]["c"].value_at(0) == 8
