"""A small discrete-event simulation engine.

The paper's evaluation is driven by a discrete-event simulator ("we have
replaced remote calls with direct function calls and calls to sleep() with
simulator events", Section 5).  This module provides that substrate: a
priority-queue of timestamped events, a simulation clock, callback scheduling
and simpy-style generator processes (``yield <delay>`` suspends the process
for that many simulated seconds).

The engine is deterministic: events at equal times fire in scheduling order.

Performance notes
-----------------
Events are stored in per-timestamp *buckets* (a dict mapping time to a deque
of handles) plus a heap of the distinct bucket times.  The schedule counter
``seq`` increases monotonically, so appending to a bucket keeps it sorted by
``seq`` for free, and the deterministic ``(time, seq)`` total order is
recovered by draining buckets in heap order.  Compared with a heap of
``(time, seq, handle)`` tuples this turns the per-event ``heappush`` /
``heappop`` (the dominant cost on big simulations -- O(log n) tuple
comparisons each) into one heap operation per *distinct timestamp*;
workloads with coalesced timestamps (scheduler passes, trace replays, batch
completions) dispatch whole buckets with a plain loop.
``EventHandle.__lt__`` still implements the ``(time, seq)`` order for code
that compares handles directly.

``run()`` dispatches each bucket as a batch.  Any event scheduled *during*
the batch carries a higher ``seq`` than every batch member -- if it lands on
the same timestamp it goes into a fresh bucket that is drained next -- so
batching is observationally identical to one-at-a-time stepping
(cancellations from within a batch are honoured before each fire).
"""
from __future__ import annotations

import heapq
import itertools
import math
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from ..core.errors import SimulationError
from ..core.types import Time
from ..obs import hooks as _obs

__all__ = ["EventHandle", "Simulator", "Process", "callback_label"]

#: Label cache keyed on the callback's code object.  Labels are derived from
#: qualified names, which are a property of the function (and therefore of
#: its code object), never of object identity -- so one cache entry serves
#: every bound method and every simulator sharing that function.
_LABEL_CACHE: Dict[Any, str] = {}


def callback_label(callback: Callable) -> str:
    """Deterministic human-readable label of an event callback.

    Used by the tracer's engine instrumentation: the label must be a pure
    function of the *code*, never of object identity (no ``repr`` with
    memory addresses), so traces stay byte-identical across processes.
    Bound methods of a :class:`Process` report the process name, which is
    itself derived from the generator's qualified name.

    Results are memoized (per :class:`Process` for process steps, per code
    object otherwise) so observed-mode tracing stops re-deriving labels on
    every dispatched event.
    """
    owner = getattr(callback, "__self__", None)
    if isinstance(owner, Process):
        return owner._label
    func = getattr(callback, "__func__", callback)
    code = getattr(func, "__code__", None)
    if code is None:  # pragma: no cover - exotic callables (partial, C funcs)
        name = getattr(callback, "__qualname__", None)
        if name is None:
            name = getattr(type(callback), "__qualname__", "callable")
        return name
    label = _LABEL_CACHE.get(code)
    if label is None:
        label = getattr(func, "__qualname__", code.co_name)
        _LABEL_CACHE[code] = label
    return label


class EventHandle:
    """A scheduled callback; can be cancelled before it fires."""

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: Time,
        seq: int,
        callback: Callable,
        args: tuple,
        kwargs: dict,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._pending -= 1

    def pending(self) -> bool:
        return not self.cancelled and not self.fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(t={self.time:g}, {state}, {self.callback!r})"


class Process:
    """A generator-based simulated process.

    The generator may ``yield`` a non-negative number (sleep that many
    simulated seconds) or ``None`` (yield control, resume immediately).  The
    process ends when the generator returns.
    """

    __slots__ = ("simulator", "generator", "name", "finished", "_resume_handle", "_label")

    def __init__(self, simulator: "Simulator", generator: Generator, name: str = ""):
        self.simulator = simulator
        self.generator = generator
        # The default name is the generator's *qualified name*, not its repr:
        # a repr embeds the object address, which would make any trace or log
        # carrying process names non-deterministic across processes.
        self.name = name or getattr(generator, "__qualname__", type(generator).__qualname__)
        self.finished = False
        self._resume_handle: Optional[EventHandle] = None
        self._label = f"process:{self.name}"

    def _step(self) -> None:
        if self.finished:
            return
        try:
            delay = next(self.generator)
        except StopIteration:
            self.finished = True
            return
        if delay is None:
            delay = 0.0
        if delay < 0:
            raise SimulationError(f"process {self.name!r} yielded a negative delay")
        self._resume_handle = self.simulator.schedule(delay, self._step)

    def interrupt(self) -> None:
        """Stop the process; its pending resume event is cancelled."""
        self.finished = True
        if self._resume_handle is not None:
            self._resume_handle.cancel()

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """The discrete-event simulation core."""

    def __init__(self, start_time: Time = 0.0):
        self._now: Time = float(start_time)
        #: Heap of the distinct times that currently have a bucket.
        self._times: List[Time] = []
        #: Per-timestamp event buckets; deques stay sorted by ``seq``
        #: because ``seq`` is monotonic and events are only appended.
        self._buckets: Dict[Time, Deque[EventHandle]] = {}
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        #: Number of scheduled-but-not-yet-fired-or-cancelled events.
        #: Maintained on schedule (+1), cancel (-1) and fire (-1) so that
        #: :meth:`empty` is O(1) instead of a scan over the queue.
        self._pending = 0

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> Time:
        """The current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (diagnostic)."""
        return self._processed

    def empty(self) -> bool:
        """True when no pending event remains (O(1))."""
        return self._pending == 0

    def peek(self) -> Time:
        """Time of the next pending event, or ``inf`` if there is none."""
        head = self._next_bucket()
        return head[0] if head is not None else math.inf

    # ------------------------------------------------------------------ #
    def schedule(self, delay: Time, callback: Callable, *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule *callback* to run after *delay* simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule an event in the past")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: Time, callback: Callable, *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule *callback* to run at absolute simulated time *time*."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at t={time:g}, the clock is already at {self._now:g}"
            )
        at = time if time > self._now else self._now
        handle = EventHandle(at, next(self._seq), callback, args, kwargs, self)
        bucket = self._buckets.get(at)
        if bucket is None:
            self._buckets[at] = deque((handle,))
            heapq.heappush(self._times, at)
        else:
            bucket.append(handle)
        self._pending += 1
        return handle

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator-based :class:`Process` immediately."""
        proc = Process(self, generator, name)
        self.schedule(0.0, proc._step)
        return proc

    # ------------------------------------------------------------------ #
    def _next_bucket(self) -> Optional[Tuple[Time, Deque[EventHandle]]]:
        """The earliest bucket that still holds a live event, with its time.

        Dead (cancelled/fired) handles at the bucket head and fully dead
        buckets are swept lazily here; each dead entry is visited once, so
        the sweep cost is amortised over the events that created it.
        """
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket:
                while bucket and (bucket[0].cancelled or bucket[0].fired):
                    bucket.popleft()
                if bucket:
                    return t, bucket
            heapq.heappop(times)
            if bucket is not None:
                del buckets[t]
        return None

    def _advance_to(self, t: Time) -> None:
        if t < self._now - 1e-9:
            raise SimulationError("event queue went back in time")
        if t > self._now:
            self._now = t

    def step(self) -> bool:
        """Fire the next pending event; returns False if none remained."""
        head = self._next_bucket()
        if head is None:
            return False
        t, bucket = head
        self._advance_to(t)
        handle = bucket.popleft()
        handle.fired = True
        self._pending -= 1
        self._processed += 1
        handle.callback(*handle.args, **handle.kwargs)
        return True

    def _step_observed(self) -> bool:
        """:meth:`step` with observability instrumentation.

        A deliberate near-duplicate of :meth:`step`: keeping the plain
        variant free of any observation code is what makes tracing
        zero-cost when disabled -- :meth:`run` selects the variant **once**
        per call, so a disabled run never pays a per-event check.  Any
        semantic change to :meth:`step` must be mirrored here (the obs
        regression tests assert both variants produce identical metrics).
        """
        head = self._next_bucket()
        if head is None:
            return False
        t, bucket = head
        self._advance_to(t)
        handle = bucket.popleft()
        handle.fired = True
        self._pending -= 1
        self._processed += 1
        self._observe_dispatch(handle)
        return True

    def _observe_dispatch(self, handle: EventHandle) -> None:
        """Emit the per-event observation record and run the callback.

        Hooks are looked up per event (not per run) on purpose: an event
        callback may legally install or remove observation sinks mid-run,
        and the emitted stream must reflect that instant by instant.
        """
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                self._now,
                "engine",
                "dispatch",
                {"callback": callback_label(handle.callback), "event_seq": handle.seq},
            )
        metrics = _obs.METRICS[0]
        if metrics is not None:
            metrics.inc("engine.events_dispatched")
        profiler = _obs.PROFILER[0]
        if profiler is None:
            handle.callback(*handle.args, **handle.kwargs)
        else:
            started = time.perf_counter()
            try:
                handle.callback(*handle.args, **handle.kwargs)
            finally:
                profiler.add("engine.dispatch", time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    def run(self, until: Time = math.inf, max_events: int = 10_000_000) -> Time:
        """Run until the queue drains or the clock passes *until*.

        Returns the simulation time when the run stopped.  *max_events*
        guards against accidental infinite event loops.  Whether events are
        dispatched through the plain or the observed variant is decided
        once per call, from the observation state at entry.
        """
        if self._running:
            raise SimulationError("the simulator is already running (re-entrant run())")
        self._running = True
        try:
            if _obs.observation_enabled():
                return self._run_observed(until, max_events)
            return self._run_plain(until, max_events)
        finally:
            self._running = False

    def _run_plain(self, until: Time, max_events: int) -> Time:
        fired = 0
        bounded = math.isfinite(until)
        buckets = self._buckets
        times = self._times
        while True:
            head = self._next_bucket()
            if head is None:
                break
            t, bucket = head
            if bounded and t > until:
                self._now = until
                break
            # The whole bucket is detached and fired as one batch; events
            # scheduled meanwhile (even at this same timestamp) land in a
            # fresh bucket with higher seqs and are drained afterwards.
            del buckets[t]
            heapq.heappop(times)
            self._advance_to(t)
            for handle in bucket:
                if handle.cancelled:
                    # Cancelled by an earlier event of this same batch.
                    continue
                handle.fired = True
                self._pending -= 1
                self._processed += 1
                handle.callback(*handle.args, **handle.kwargs)
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"more than {max_events} events fired; "
                        "likely an infinite scheduling loop"
                    )
        return self._now

    def _run_observed(self, until: Time, max_events: int) -> Time:
        """:meth:`_run_plain` with per-event observation.

        The same near-duplicate discipline as :meth:`_step_observed`: the
        plain loop stays free of observation code so a disabled run pays
        nothing, and any semantic change here must be mirrored there.
        """
        fired = 0
        bounded = math.isfinite(until)
        buckets = self._buckets
        times = self._times
        while True:
            head = self._next_bucket()
            if head is None:
                break
            t, bucket = head
            if bounded and t > until:
                self._now = until
                break
            del buckets[t]
            heapq.heappop(times)
            self._advance_to(t)
            for handle in bucket:
                if handle.cancelled:
                    continue
                handle.fired = True
                self._pending -= 1
                self._processed += 1
                self._observe_dispatch(handle)
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"more than {max_events} events fired; "
                        "likely an infinite scheduling loop"
                    )
        return self._now

    def run_until_empty(self) -> Time:
        """Run until no pending events remain."""
        return self.run(math.inf)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:g}, pending={self._pending})"
