"""Pluggable scheduling policies for the CooRMv2 reproduction.

The scheduler's behaviour decomposes into three orthogonal stages -- queue
ordering, backfilling and preemptible sharing -- and a
:class:`SchedulingPolicy` composes one implementation of each.  The paper's
Algorithm 4 is the default composition (``coorm``: FCFS + conservative
back-filling + equi-partitioning with filling); registered alternatives swap
individual stages (EASY backfilling, shortest-job-first or fair-share
ordering, weighted max-min sharing, ...).

Policies are referenced by name (or by an explicit stage mapping) from
:class:`~repro.campaign.spec.ScenarioSpec`, the ``--policies`` campaign
matrix and ``python -m repro policy list|describe``.
"""
from .base import (
    BackfillStrategy,
    OrderingStrategy,
    SchedulingContext,
    SharingStrategy,
)
from .backfill import ConservativeBackfill, EasyBackfill, EasyBackfillQueue
from .ordering import (
    FairShareOrdering,
    FcfsOrdering,
    LargestAreaFirstOrdering,
    ShortestJobFirstOrdering,
)
from .policy import SchedulingPolicy
from .registry import (
    DEFAULT_POLICY,
    STRICT_POLICY,
    backfill_names,
    describe_policy,
    get_policy,
    make_backfill,
    make_ordering,
    make_sharing,
    ordering_names,
    policy_label,
    policy_names,
    register_backfill,
    register_ordering,
    register_policy,
    register_sharing,
    resolve_policy,
    sharing_names,
)
from .sharing import (
    EquipartitionSharing,
    StrictEquipartitionSharing,
    WeightedMaxMinSharing,
)

__all__ = [
    # protocols
    "SchedulingContext",
    "OrderingStrategy",
    "BackfillStrategy",
    "SharingStrategy",
    # composition
    "SchedulingPolicy",
    # stage implementations
    "FcfsOrdering",
    "ShortestJobFirstOrdering",
    "LargestAreaFirstOrdering",
    "FairShareOrdering",
    "ConservativeBackfill",
    "EasyBackfill",
    "EasyBackfillQueue",
    "EquipartitionSharing",
    "StrictEquipartitionSharing",
    "WeightedMaxMinSharing",
    # registry
    "DEFAULT_POLICY",
    "STRICT_POLICY",
    "register_ordering",
    "register_backfill",
    "register_sharing",
    "register_policy",
    "make_ordering",
    "make_backfill",
    "make_sharing",
    "get_policy",
    "resolve_policy",
    "policy_label",
    "policy_names",
    "ordering_names",
    "backfill_names",
    "sharing_names",
    "describe_policy",
]
