"""Unit tests of the dynamic vs equivalent-static analysis (paper Section 2.3)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    PAPER_SPEEDUP_MODEL,
    WorkingSetEvolution,
    dynamic_allocation,
    end_time_increase,
    equivalent_static_allocation,
    static_allocation_range,
)
from repro.models.amr_evolution import AmrEvolutionParameters


@pytest.fixture(scope="module")
def evolution() -> WorkingSetEvolution:
    params = AmrEvolutionParameters(num_steps=300)
    return WorkingSetEvolution.generate(3.16 * 1024 * 1024 / 4, seed=11, params=params)


class TestDynamicAllocation:
    def test_tracks_target_efficiency(self, evolution):
        dyn = dynamic_allocation(evolution, 0.75)
        model = PAPER_SPEEDUP_MODEL
        for step in (0, 100, 299):
            n = int(dyn.node_counts[step])
            size = evolution.size_at(step)
            assert model.efficiency(n, size) >= 0.75
        assert dyn.consumed_area > 0
        assert dyn.end_time == pytest.approx(float(np.sum(dyn.step_durations)))

    def test_allocation_grows_with_the_working_set(self, evolution):
        dyn = dynamic_allocation(evolution, 0.75)
        # The working set is mostly increasing, so the peak allocation comes
        # late in the run and exceeds the initial one.
        assert dyn.peak_nodes >= dyn.node_counts[0]
        assert dyn.peak_nodes == int(dyn.node_counts.max())

    def test_lower_target_uses_more_nodes(self, evolution):
        loose = dynamic_allocation(evolution, 0.5)
        tight = dynamic_allocation(evolution, 0.9)
        assert loose.peak_nodes > tight.peak_nodes
        assert loose.end_time < tight.end_time


class TestEquivalentStaticAllocation:
    def test_exists_for_moderate_targets(self, evolution):
        result = equivalent_static_allocation(evolution, 0.75)
        assert result is not None
        # Same consumed area by construction.
        dyn = dynamic_allocation(evolution, 0.75)
        static_area = result.n_eq * result.static_end_time
        assert static_area == pytest.approx(dyn.consumed_area, rel=1e-3)

    def test_end_time_increase_is_small(self, evolution):
        # The paper reports at most ~2.5 % for targets below 0.8; allow a
        # little slack because our profiles are random.
        for target in (0.3, 0.5, 0.75):
            increase = end_time_increase(evolution, target)
            assert increase is not None
            assert 0.0 <= increase < 0.06

    def test_very_high_target_collapses_to_few_nodes(self, evolution):
        # At a target efficiency close to 1 the dynamic allocation uses only
        # a handful of nodes, and so does its equivalent static allocation.
        result = equivalent_static_allocation(evolution, 0.999)
        dyn = dynamic_allocation(evolution, 0.999)
        assert result is not None
        assert 1.0 <= result.n_eq <= dyn.peak_nodes
        assert dyn.peak_nodes <= 5
        # With so few nodes the integer quantisation makes the end-time
        # increase larger than in the paper's 0.1-0.8 range; it must still be
        # non-negative (the dynamic allocation is never slower).
        increase = end_time_increase(evolution, 0.999)
        assert increase is not None and increase >= 0.0

    def test_n_eq_between_min_and_peak_dynamic_allocation(self, evolution):
        result = equivalent_static_allocation(evolution, 0.75)
        dyn = dynamic_allocation(evolution, 0.75)
        assert dyn.node_counts.min() <= result.n_eq <= dyn.peak_nodes


class TestStaticAllocationRange:
    def test_range_is_consistent(self, evolution):
        rng = static_allocation_range(evolution, 0.75, node_memory_mib=4096.0)
        assert rng is not None
        n_min, n_max = rng
        assert 1 <= n_min <= n_max

    def test_min_nodes_hold_the_peak_working_set(self, evolution):
        n_min, _ = static_allocation_range(evolution, 0.75, node_memory_mib=4096.0)
        assert n_min * 4096.0 >= evolution.peak_size_mib

    def test_smaller_node_memory_needs_more_nodes(self, evolution):
        small_mem = static_allocation_range(evolution, 0.75, node_memory_mib=1024.0)
        large_mem = static_allocation_range(evolution, 0.75, node_memory_mib=8192.0)
        if small_mem is not None and large_mem is not None:
            assert small_mem[0] >= large_mem[0]

    def test_range_can_be_empty_when_memory_forces_overuse(self, evolution):
        # With absurdly little memory per node, satisfying the no-OOM bound
        # forces far more nodes than the 10 % overuse budget allows.
        assert static_allocation_range(evolution, 0.75, node_memory_mib=0.5) is None

    def test_invalid_memory_rejected(self, evolution):
        with pytest.raises(ValueError):
            static_allocation_range(evolution, 0.75, node_memory_mib=0.0)
