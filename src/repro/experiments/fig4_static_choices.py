"""Figure 4 -- defensible static allocation choices at 75 % target efficiency.

Without knowing the evolution in advance, a user must pick a static node
count that (a) never runs out of memory at the peak working-set size and
(b) does not consume more than 10 % extra resources compared to the dynamic
allocation's area A(75 %).  The figure plots, for relative peak data sizes
from 1/8x to 8x, the range of node counts satisfying both constraints -- and
shows how narrow (or empty) that range is, which motivates RMS support for
evolving applications.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..metrics.report import format_table
from ..models.amr_evolution import AmrEvolutionParameters, WorkingSetEvolution
from ..models.speedup import PAPER_SPEEDUP_MODEL, SpeedupModel, TIB_IN_MIB
from ..models.static_equivalent import (
    DEFAULT_NODE_MEMORY_MIB,
    static_allocation_range,
)

__all__ = ["PAPER_RELATIVE_SIZES", "StaticChoiceRow", "run", "main"]

#: The y-axis of Figure 4: peak data size relative to the reference 3.16 TiB.
PAPER_RELATIVE_SIZES: Tuple[float, ...] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class StaticChoiceRow:
    """The node-count range for one relative data size."""

    relative_size: float
    peak_size_mib: float
    min_nodes: Optional[int]
    max_nodes: Optional[int]

    @property
    def feasible(self) -> bool:
        return self.min_nodes is not None and self.max_nodes is not None

    @property
    def range_width(self) -> int:
        if not self.feasible:
            return 0
        return max(0, self.max_nodes - self.min_nodes)


def run(
    relative_sizes: Sequence[float] = PAPER_RELATIVE_SIZES,
    reference_size_mib: float = 3.16 * TIB_IN_MIB,
    target_efficiency: float = 0.75,
    overuse_tolerance: float = 0.10,
    node_memory_mib: float = DEFAULT_NODE_MEMORY_MIB,
    seed: int = 0,
    num_steps: int = 1000,
    model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> Dict[float, StaticChoiceRow]:
    """Compute the static-choice range for each relative peak size."""
    params = AmrEvolutionParameters(num_steps=num_steps)
    rows: Dict[float, StaticChoiceRow] = {}
    for relative in relative_sizes:
        peak = relative * reference_size_mib
        evolution = WorkingSetEvolution.generate(peak, seed=seed, params=params)
        result = static_allocation_range(
            evolution,
            target_efficiency=target_efficiency,
            overuse_tolerance=overuse_tolerance,
            node_memory_mib=node_memory_mib,
            model=model,
        )
        if result is None:
            rows[relative] = StaticChoiceRow(relative, peak, None, None)
        else:
            rows[relative] = StaticChoiceRow(relative, peak, result[0], result[1])
    return rows


def main(
    relative_sizes: Sequence[float] = PAPER_RELATIVE_SIZES,
    num_steps: int = 1000,
) -> str:
    """Render the Figure 4 reproduction as a text table."""
    rows = run(relative_sizes, num_steps=num_steps)
    table_rows = []
    for relative in relative_sizes:
        row = rows[relative]
        table_rows.append(
            (
                f"{relative:g}x",
                int(row.peak_size_mib),
                row.min_nodes if row.feasible else "-",
                row.max_nodes if row.feasible else "-",
                row.range_width if row.feasible else "empty",
            )
        )
    table = format_table(
        ["relative size", "peak (MiB)", "min nodes (no OOM)", "max nodes (<=+10%)", "width"],
        table_rows,
    )
    return "Figure 4 -- static allocation choices for 75% target efficiency\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
