"""Deterministic fault injection and elasticity for federated simulations.

The package is split like the rest of the library:

- :mod:`repro.faults.plan` -- declarative, JSON round-trippable fault
  plans (node crashes, whole-cluster outages, elastic capacity rules,
  admission-control parameters) plus a registry of built-in plans.
- :mod:`repro.faults.admission` -- the meta-scheduler's admission
  control machinery (token buckets and circuit breakers).
- :mod:`repro.faults.injector` -- the :class:`FaultInjector` that arms a
  plan against a live :class:`~repro.federation.federation.Federation`
  as first-class simulation events and accounts for jobs lost,
  rescheduled, rejected and time-to-recover.

Everything is driven by ``derive_seed``: the same plan, topology and
seed replay byte-identically, so faulted scenarios can be golden-pinned
just like fault-free ones.
"""
from .admission import AdmissionController, CircuitBreaker, TokenBucket
from .injector import FaultInjector
from .plan import (
    AdmissionSpec,
    ElasticRule,
    FaultEvent,
    FaultPlan,
    fault_plan_names,
    get_fault_plan,
    register_fault_plan,
    resolve_fault_plan,
)

__all__ = [
    "AdmissionController",
    "AdmissionSpec",
    "CircuitBreaker",
    "ElasticRule",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "TokenBucket",
    "fault_plan_names",
    "get_fault_plan",
    "register_fault_plan",
    "resolve_fault_plan",
]
