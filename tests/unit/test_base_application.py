"""Unit tests of the application base class (high-level update operations)."""
from __future__ import annotations

import math

import pytest

from repro.apps import BaseApplication
from repro.cluster import Platform
from repro.core import CooRMv2, ProtocolError, RequestType
from repro.sim import Simulator


def make_env(nodes=16):
    sim = Simulator()
    platform = Platform.single_cluster(nodes)
    rms = CooRMv2(platform, sim, rescheduling_interval=1.0)
    return sim, platform, rms


class TestConnection:
    def test_operations_require_connection(self):
        app = BaseApplication("lonely")
        with pytest.raises(ProtocolError):
            _ = app.now
        with pytest.raises(ProtocolError):
            app.submit(1, 10.0, RequestType.NON_PREEMPTIBLE)

    def test_connect_and_views(self):
        sim, _, rms = make_env()
        app = BaseApplication("app")
        app.connect(rms)
        sim.run(until=5.0)
        assert app.non_preemptive_view is not None
        assert app.preemptive_available_now() == 16
        assert app.preemptive_available_min(1000.0) == 16
        assert not app.finished()

    def test_finish_fires_callback_and_disconnects(self):
        sim, _, rms = make_env()
        app = BaseApplication("app")
        seen = []
        app.on_finished = seen.append
        app.connect(rms)
        sim.run(until=5.0)
        app.finish()
        assert app.finished()
        assert seen == [app]
        assert app.makespan() >= 0.0
        # finish() is idempotent.
        app.finish()
        assert seen == [app]

    def test_on_killed_records_reason(self):
        sim, _, rms = make_env()
        app = BaseApplication("app")
        app.connect(rms)
        sim.run(until=5.0)
        rms.kill("app", "because")
        assert app.killed
        assert app.kill_reason == "because"


class TestHighLevelOperations:
    def test_spontaneous_update_grow(self):
        sim, platform, rms = make_env()
        app = BaseApplication("app")
        app.connect(rms)
        sim.run(until=2.0)
        first = app.submit(4, math.inf, RequestType.NON_PREEMPTIBLE)
        sim.run(until=5.0)
        second = app.spontaneous_update(first, 8)
        sim.run(until=10.0)
        assert first.finished()
        assert second.started()
        assert len(second.node_ids) == 8
        assert platform.cluster("cluster0").free_count() == 8

    def test_spontaneous_update_shrink_releases_surplus(self):
        sim, platform, rms = make_env()
        app = BaseApplication("app")
        app.connect(rms)
        sim.run(until=2.0)
        first = app.submit(8, math.inf, RequestType.NON_PREEMPTIBLE)
        sim.run(until=5.0)
        second = app.spontaneous_update(first, 3)
        sim.run(until=10.0)
        assert second.started()
        assert len(second.node_ids) == 3
        assert set(second.node_ids).issubset(set(first.node_ids) | set(second.node_ids))
        assert platform.cluster("cluster0").free_count() == 13

    def test_announced_update_holds_current_allocation_during_the_interval(self):
        sim, platform, rms = make_env()
        app = BaseApplication("app")
        app.connect(rms)
        sim.run(until=2.0)
        first = app.submit(4, math.inf, RequestType.NON_PREEMPTIBLE)
        sim.run(until=5.0)
        bridge, future = app.announced_update(first, 10, announce_interval=50.0)
        sim.run(until=20.0)
        # During the announce interval the application still holds 4 nodes.
        assert bridge.started()
        assert len(bridge.node_ids) == 4
        assert not future.started()
        sim.run(until=80.0)
        # After the interval the new allocation is served.
        assert future.started()
        assert len(future.node_ids) == 10
        assert platform.cluster("cluster0").free_count() == 6

    def test_announced_update_with_zero_interval_is_spontaneous(self):
        sim, _, rms = make_env()
        app = BaseApplication("app")
        app.connect(rms)
        sim.run(until=2.0)
        first = app.submit(4, math.inf, RequestType.NON_PREEMPTIBLE)
        sim.run(until=5.0)
        bridge, future = app.announced_update(first, 6, announce_interval=0.0)
        assert bridge is future
        sim.run(until=10.0)
        assert future.started()
        assert len(future.node_ids) == 6
