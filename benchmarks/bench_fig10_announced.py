"""Benchmark and reproduction of Figure 10 (announced updates)."""
from __future__ import annotations

from repro.experiments import fig10_announced, run_scenario


def test_fig10_single_announced_scenario(benchmark, bench_scale):
    """Time one announced-update scenario (announce interval = task duration)."""
    result = benchmark.pedantic(
        run_scenario,
        kwargs=dict(
            scale=bench_scale,
            seed=0,
            overcommit=1.0,
            announce_interval=bench_scale.psa1_task_duration,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.amr.finished()
    assert result.metrics.psa_waste_node_seconds == 0.0


def test_fig10_sweep_report(benchmark, report_scale):
    """Time (and print) the announce-interval sweep."""
    intervals = tuple(
        report_scale.psa1_task_duration * f for f in (0.0, 0.25, 0.5, 0.75, 0.92, 1.0, 1.2)
    )
    points = benchmark.pedantic(
        fig10_announced.run,
        kwargs=dict(announce_intervals=intervals, scale=report_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    # Waste vanishes once the announce interval reaches the task duration.
    assert points[-1].psa_waste_percent == 0.0
    assert points[0].psa_waste_percent >= points[-1].psa_waste_percent
    print()
    print(fig10_announced.main(announce_intervals=intervals, scale=report_scale))
