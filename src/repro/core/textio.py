"""Reading and writing text files with transparent gzip support.

Trace files of any format (the minimal rigid exchange format of
:mod:`repro.workloads.trace` and the full SWF of :mod:`repro.traces.swf`)
share these helpers, so the gzip handling -- including the fixed
mtime/filename that keeps compressed output byte-reproducible -- lives in
exactly one place.
"""
from __future__ import annotations

import gzip
import io
import zlib
from pathlib import Path
from typing import Union

from .errors import WorkloadError

__all__ = [
    "READ_ERRORS",
    "is_gzip_path",
    "read_text_file",
    "read_trace_text",
    "write_text_file",
]

#: Everything :func:`read_text_file` can raise on a missing, truncated,
#: corrupt or mis-encoded input -- truncated gzip streams raise EOFError and
#: corrupt ones zlib.error, neither of which is an OSError.
READ_ERRORS = (OSError, EOFError, zlib.error, UnicodeDecodeError)


def is_gzip_path(path: Path) -> bool:
    """Whether *path* names a gzip-compressed file (by suffix)."""
    return path.suffix == ".gz"


def read_text_file(path: Path) -> str:
    """Read a UTF-8 text file, transparently gunzipping ``*.gz`` paths."""
    if is_gzip_path(path):
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            return fh.read()
    return path.read_text(encoding="utf-8")


def read_trace_text(path: Union[str, Path]) -> str:
    """Like :func:`read_text_file`, wrapping every read failure.

    Trace loaders promise a :class:`WorkloadError` naming the file for any
    unreadable input, so the wrapping lives here with the reading.
    """
    path = Path(path)
    try:
        return read_text_file(path)
    except READ_ERRORS as exc:
        raise WorkloadError(f"{path}: cannot read trace: {exc}") from exc


def write_text_file(path: Path, text: str) -> None:
    """Write a UTF-8 text file, gzip-compressing ``*.gz`` paths."""
    if is_gzip_path(path):
        # Fixed mtime/filename keep compressed output byte-reproducible.
        with open(path, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb", filename="", mtime=0) as fh:
                with io.TextIOWrapper(fh, encoding="utf-8") as text_fh:
                    text_fh.write(text)
        return
    path.write_text(text, encoding="utf-8")
