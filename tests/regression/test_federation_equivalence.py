"""Single-cluster federation equivalence: the load-bearing federation contract.

A 1-cluster federation under the ``any`` routing and the ``coorm`` policy
must be **byte-identical** to the direct single-:class:`Scheduler` path --
same simulator events in the same order, hence exactly the same
:class:`SimulationMetrics`, bit for bit.  This is what lets every existing
scenario be federated without re-validating the paper's per-cluster
semantics.

Three layers pin the contract:

* :func:`test_run_scenario_equivalence` compares the raw ``run_scenario``
  metrics of the two paths (the substrate the fig3/fig9 experiments run on);
* :func:`test_fed_single_matches_baseline_dynamic` compares the campaign
  records of the built-in ``fed-single`` and ``baseline-dynamic`` scenarios
  at the same seed;
* the ``fed-single`` golden fixture (see ``generate_golden.py``) pins the
  absolute values, so the equivalence cannot silently co-drift.
"""
from __future__ import annotations

import json

import pytest

from repro.campaign import builtin  # noqa: F401  (registers the scenarios)
from repro.campaign.registry import builtin_scenarios, get_runner
from repro.experiments.runner import EvaluationScale, run_scenario
from repro.federation import ClusterSpec, FederationSpec
from repro.sim.randomness import derive_seed

SINGLE = FederationSpec(clusters=(ClusterSpec(name="cluster0"),), routing="any")


def canonical(metrics: dict) -> str:
    return json.dumps(metrics, sort_keys=True, allow_nan=False)


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_run_scenario_equivalence(seed: int) -> None:
    """run_scenario with a 1-cluster federation == the direct path, bytewise."""
    scale = EvaluationScale.tiny()
    direct = run_scenario(scale, seed=seed)
    federated = run_scenario(scale, seed=seed, federation=SINGLE)

    assert canonical(federated.metrics.to_dict()) == canonical(direct.metrics.to_dict())
    assert federated.cluster_nodes == direct.cluster_nodes
    assert federated.ideal_preallocation == direct.ideal_preallocation
    # Every application went to the single member.
    assert federated.federation.routed_counts() == {"cluster0": 2}


def test_run_scenario_equivalence_with_background_workload() -> None:
    """Rigid and converted trace jobs stay byte-identical too.

    Rigid jobs keep their exact recorded size on both paths (the federated
    path must not reshape them), and converted jobs clamp to the single
    member exactly like the direct path clamps to the cluster.
    """
    from repro.traces.convert import ConvertedJob
    from repro.workloads.generator import RigidJobSpec

    scale = EvaluationScale.tiny()
    kwargs = dict(
        seed=5,
        rigid_jobs=[
            RigidJobSpec("r1", submit_time=10.0, node_count=4, duration=30.0),
            RigidJobSpec("r2", submit_time=25.0, node_count=8, duration=60.0),
        ],
        adaptive_jobs=[
            ConvertedJob("rigid", "t1", submit_time=5.0, node_count=2, duration=20.0),
            ConvertedJob("moldable", "t2", submit_time=40.0, node_count=4, duration=40.0),
        ],
    )
    direct = run_scenario(scale, **kwargs)
    federated = run_scenario(scale, federation=SINGLE, **kwargs)
    assert canonical(federated.metrics.to_dict()) == canonical(direct.metrics.to_dict())
    assert [a.node_count for a in federated.rigid_apps] == [
        a.node_count for a in direct.rigid_apps
    ]
    assert all(a.finished() for a in federated.rigid_apps)
    assert all(a.finished() for a in federated.trace_apps)


def test_oversized_rigid_job_fails_on_both_paths() -> None:
    """A job no cluster fits errors out instead of being silently reshaped."""
    from repro.core.errors import RequestError
    from repro.workloads.generator import RigidJobSpec

    scale = EvaluationScale.tiny()
    kwargs = dict(
        seed=5,
        rigid_jobs=[
            RigidJobSpec("huge", submit_time=1.0, node_count=10_000, duration=30.0)
        ],
    )
    with pytest.raises(RequestError):
        run_scenario(scale, **kwargs)
    with pytest.raises(RequestError):
        run_scenario(scale, federation=SINGLE, **kwargs)


def test_run_scenario_equivalence_with_announce_and_overcommit() -> None:
    """The fig9/fig10 knobs (overcommit, announced updates) stay equivalent."""
    scale = EvaluationScale.tiny()
    kwargs = dict(seed=3, overcommit=1.2, announce_interval=30.0)
    direct = run_scenario(scale, **kwargs)
    federated = run_scenario(scale, federation=SINGLE, **kwargs)
    assert canonical(federated.metrics.to_dict()) == canonical(direct.metrics.to_dict())


def test_fed_single_matches_baseline_dynamic() -> None:
    """The built-in fed-single scenario reproduces baseline-dynamic exactly.

    fed-single's record additionally carries the ``fed_*`` federation
    columns; every metric the two scenarios share must match byte for byte.
    """
    scenarios = builtin_scenarios()
    seed = derive_seed(0, "fed-single", 0)
    fed_metrics = dict(get_runner("amr_psa")(scenarios["fed-single"], seed))
    direct_metrics = dict(get_runner("amr_psa")(scenarios["baseline-dynamic"], seed))

    shared = set(fed_metrics) & set(direct_metrics)
    assert shared == set(direct_metrics)  # fed-single only *adds* columns
    assert canonical({k: fed_metrics[k] for k in shared}) == canonical(direct_metrics)
    extra = set(fed_metrics) - shared
    assert extra and all(key.startswith("fed_") for key in extra)
