"""Unit tests of ClusterSpec / FederationSpec and the topology registry."""
from __future__ import annotations

import json

import pytest

from repro.federation import (
    ClusterSpec,
    FederationSpec,
    get_topology,
    routing_names,
    topology_names,
)


class TestClusterSpec:
    def test_roundtrip(self):
        spec = ClusterSpec(name="east", nodes=32, policy="easy")
        assert ClusterSpec.from_dict(spec.to_dict()) == spec

    def test_defaults_derive_size_and_inherit_policy(self):
        spec = ClusterSpec(name="c")
        assert spec.nodes == 0
        assert spec.policy is None

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            ClusterSpec(name="")

    def test_rejects_negative_nodes(self):
        with pytest.raises(ValueError, match="nodes"):
            ClusterSpec(name="c", nodes=-1)

    def test_rejects_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown scheduling policy"):
            ClusterSpec(name="c", policy="not-a-policy")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="does not understand"):
            ClusterSpec.from_dict({"name": "c", "cores": 8})


class TestFederationSpec:
    def test_roundtrip_through_json(self):
        spec = FederationSpec(
            clusters=(
                ClusterSpec(name="a", nodes=16),
                ClusterSpec(name="b", nodes=64, policy="sjf"),
            ),
            routing="least-loaded",
        )
        again = FederationSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_promotes_cluster_dicts(self):
        spec = FederationSpec(clusters=({"name": "a", "nodes": 8},))
        assert spec.clusters[0] == ClusterSpec(name="a", nodes=8)

    def test_rejects_empty_federation(self):
        with pytest.raises(ValueError, match="at least one cluster"):
            FederationSpec(clusters=())

    def test_rejects_duplicate_cluster_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            FederationSpec(
                clusters=(ClusterSpec(name="a", nodes=8), ClusterSpec(name="a", nodes=8))
            )

    def test_rejects_unknown_routing(self):
        with pytest.raises(KeyError, match="unknown routing policy"):
            FederationSpec(clusters=(ClusterSpec(name="a"),), routing="teleport")

    def test_resolved_fills_derived_sizes_only(self):
        spec = FederationSpec(
            clusters=(ClusterSpec(name="a"), ClusterSpec(name="b", nodes=48))
        )
        resolved = spec.resolved(16)
        assert [c.nodes for c in resolved.clusters] == [16, 48]
        assert resolved.total_nodes() == 64
        # Fully concrete specs come back unchanged (same object).
        assert resolved.resolved(99) is resolved

    def test_with_routing_validates(self):
        spec = FederationSpec(clusters=(ClusterSpec(name="a"),))
        assert spec.with_routing("round-robin").routing == "round-robin"
        with pytest.raises(KeyError):
            spec.with_routing("nope")

    def test_label(self):
        spec = FederationSpec(
            clusters=(ClusterSpec(name="a", nodes=16), ClusterSpec(name="b"))
        )
        assert spec.label() == "2x[a:16+b:*]"


class TestTopologyRegistry:
    def test_builtin_topologies_exist(self):
        assert {"single", "dual", "hetero3"} <= set(topology_names())

    def test_get_topology(self):
        assert get_topology("single").cluster_names == ("cluster0",)
        assert get_topology("hetero3").routing == "least-loaded"

    def test_unknown_topology(self):
        with pytest.raises(KeyError, match="unknown federation topology"):
            get_topology("ring")

    def test_every_builtin_routing_is_registered(self):
        for name in topology_names():
            assert get_topology(name).routing in routing_names()
