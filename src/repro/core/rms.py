"""The CooRMv2 Resource Management System.

This is the server side of the protocol described in Sections 3.2 and 3.3 of
the paper.  It owns the platform, keeps one :class:`~repro.core.session.Session`
per connected application (in connection order), coalesces incoming
``request()`` / ``done()`` messages through the administrator-chosen
*re-scheduling interval*, runs the scheduling algorithm
(:class:`~repro.core.scheduler.Scheduler`), starts requests by binding node
IDs, pushes fresh views to the applications, and -- if so configured -- kills
applications that violate the protocol by not releasing preemptible resources
when asked to.

The RMS is driven by a :class:`~repro.sim.Simulator`; in the paper's words,
remote calls are replaced by direct function calls and ``sleep()`` by
simulator events.
"""
from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set

from ..cluster.node import NodeState
from ..cluster.platform import Platform
from ..obs import hooks as _obs
from .accounting import Accountant
from .errors import RequestError, SessionError
from .events import (
    Connected,
    Disconnected,
    EventLog,
    RequestDone,
    RequestExpired,
    RequestStarted,
    RequestSubmitted,
    SessionKilled,
    ViewsPushed,
)
from .request import Request
from .scheduler import Scheduler
from .session import ApplicationProtocol, Session
from .types import NodeId, RelatedHow, Time
from .view import View

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from ..sim.engine import EventHandle, Simulator

__all__ = ["CooRMv2"]


class CooRMv2:
    """The CooRMv2 RMS server.

    Parameters
    ----------
    platform:
        The clusters managed by this RMS.
    simulator:
        Discrete-event engine that drives time.
    rescheduling_interval:
        Minimum delay between two scheduling passes; messages arriving in
        between are coalesced (Section 3.2).  The evaluation uses 1 second.
    strict_equipartition:
        Use the strict equi-partitioning baseline for preemptible resources
        instead of equi-partitioning with filling (Figure 11 comparison).
    kill_protocol_violators:
        Kill applications that keep preemptible resources beyond what their
        preemptive view allows for longer than *violation_grace* seconds.
    violation_grace:
        Grace period before a protocol violation leads to a kill.
    accountant:
        Optional :class:`~repro.core.accounting.Accountant`; a fresh one is
        created when omitted.
    policy:
        Scheduling policy driving the passes: a registered policy name, a
        stage mapping, or a :class:`~repro.policies.SchedulingPolicy`
        object.  Defaults to the paper's Algorithm 4 composition
        (``"coorm"``; ``strict_equipartition=True`` without an explicit
        policy selects ``"coorm-strict"``).
    """

    def __init__(
        self,
        platform: Platform,
        simulator: Simulator,
        rescheduling_interval: float = 1.0,
        strict_equipartition: bool = False,
        kill_protocol_violators: bool = False,
        violation_grace: float = 30.0,
        accountant: Optional[Accountant] = None,
        policy=None,
    ):
        if rescheduling_interval < 0:
            raise ValueError("rescheduling_interval must be non-negative")
        self.platform = platform
        self.simulator = simulator
        self.rescheduling_interval = float(rescheduling_interval)
        self.kill_protocol_violators = kill_protocol_violators
        self.violation_grace = float(violation_grace)
        self.scheduler = Scheduler(
            platform.capacity(), strict_equipartition, policy=policy
        )
        self.accountant = accountant if accountant is not None else Accountant()
        self.event_log = EventLog()

        self.sessions: Dict[str, Session] = {}
        self._app_counter = 0
        self._schedule_handle: Optional[EventHandle] = None
        self._last_schedule_time: Time = -math.inf
        self._expiry_handles: Dict[int, EventHandle] = {}
        # Deterministic per-app request ordinals for lifecycle trace events:
        # ``Request.request_id`` comes from a process-global counter and would
        # differ between worker processes, so it must never reach a trace.
        self._obs_req_ordinals: Dict[int, int] = {}
        self._obs_app_counts: Dict[str, int] = {}
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                self.now,
                "rms",
                "platform",
                {
                    "clusters": {
                        cid: int(n) for cid, n in sorted(platform.capacity().items())
                    },
                    "policy": self.scheduler.policy.name,
                    "interval": self.rescheduling_interval,
                },
            )

    # ------------------------------------------------------------------ #
    # Lifecycle observability helpers (only called with a live tracer)
    # ------------------------------------------------------------------ #
    def _obs_req(self, request: Request) -> int:
        """Per-app submission ordinal of *request* (deterministic)."""
        ordinal = self._obs_req_ordinals.get(request.request_id)
        if ordinal is None:
            app_id = request.app_id or ""
            ordinal = self._obs_app_counts.get(app_id, 0) + 1
            self._obs_app_counts[app_id] = ordinal
            self._obs_req_ordinals[request.request_id] = ordinal
        return ordinal

    def _obs_allocation(self, tracer) -> None:
        """Sample the per-cluster allocated node counts as a counter event."""
        tracer.counter(
            self.now,
            "rms",
            "allocated",
            {
                cid: float(self.platform.cluster(cid).allocated_count())
                for cid in sorted(self.platform.clusters)
            },
        )

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> Time:
        """Current simulated time."""
        return self.simulator.now

    @property
    def policy(self):
        """The scheduling policy driving this RMS's passes."""
        return self.scheduler.policy

    # ------------------------------------------------------------------ #
    # Session management
    # ------------------------------------------------------------------ #
    def connect(self, application: ApplicationProtocol, app_id: Optional[str] = None) -> Session:
        """Open a session for *application* and schedule a view push."""
        if app_id is None:
            self._app_counter += 1
            app_id = f"app{self._app_counter}"
        if app_id in self.sessions and self.sessions[app_id].alive:
            raise SessionError(f"application {app_id!r} is already connected")
        session = Session(app_id, application, self.now)
        self.sessions[app_id] = session
        self.event_log.record(Connected(self.now, app_id))
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(self.now, "rms", "connect", {"app": app_id})
        self._trigger_schedule()
        return session

    def disconnect(self, app_id: str) -> None:
        """Close a session; every request is terminated and nodes released."""
        session = self._session(app_id)
        for request in session.requests.all_requests():
            if not request.finished():
                self._finish_request(session, request, released_node_ids=None, expired=False)
        session.alive = False
        self.event_log.record(Disconnected(self.now, app_id))
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(self.now, "rms", "disconnect", {"app": app_id})
        self._trigger_schedule()

    def kill(self, app_id: str, reason: str) -> None:
        """Terminate a session after a protocol violation (Section 3.1.4)."""
        session = self._session(app_id)
        for request in session.requests.all_requests():
            if not request.finished():
                request.mark_finished(self.now)
                self._cancel_expiry(request)
        released = self.platform.release_all_of(app_id, self.now)
        for cid, nodes in released.items():
            session.remove_nodes(cid, nodes)
        session.kill(reason)
        self.event_log.record(SessionKilled(self.now, app_id, reason=reason))
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(self.now, "rms", "kill", {"app": app_id, "reason": reason})
            self._obs_allocation(tracer)
        session.application.on_killed(reason)
        self._trigger_schedule()

    def _session(self, app_id: str) -> Session:
        session = self.sessions.get(app_id)
        if session is None:
            raise SessionError(f"unknown application {app_id!r}")
        if not session.alive:
            raise SessionError(f"application {app_id!r} is no longer connected")
        return session

    def connected_sessions(self) -> List[Session]:
        """Alive sessions in connection order."""
        return [s for s in self.sessions.values() if s.alive]

    # ------------------------------------------------------------------ #
    # Protocol operations: request() and done()
    # ------------------------------------------------------------------ #
    def submit(self, app_id: str, request: Request) -> Request:
        """The application's ``request()`` operation."""
        session = self._session(app_id)
        if request.cluster_id not in self.platform.clusters:
            raise RequestError(f"unknown cluster {request.cluster_id!r}")
        if request.node_count > self.platform.cluster(request.cluster_id).node_count:
            raise RequestError(
                f"request asks for {request.node_count} nodes but cluster "
                f"{request.cluster_id!r} only has "
                f"{self.platform.cluster(request.cluster_id).node_count}"
            )
        request.submitted_at = self.now
        session.requests.add(request)
        self.event_log.record(
            RequestSubmitted(
                self.now,
                app_id,
                request_id=request.request_id,
                rtype=request.rtype.value,
                node_count=request.node_count,
                duration=request.duration,
            )
        )
        metrics = _obs.METRICS[0]
        if metrics is not None:
            metrics.inc("rms.requests_submitted")
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                self.now,
                "rms",
                "submit",
                {
                    "app": app_id,
                    "req": self._obs_req(request),
                    "rtype": request.rtype.value,
                    "nodes": request.node_count,
                    # Open-ended requests carry an infinite duration, which
                    # strict JSON cannot represent; null marks "unbounded".
                    "duration": (
                        request.duration if math.isfinite(request.duration) else None
                    ),
                },
            )
        self._trigger_schedule()
        return request

    def done(
        self,
        app_id: str,
        request: Request,
        released_node_ids: Optional[Iterable[NodeId]] = None,
    ) -> None:
        """The application's ``done()`` operation.

        Terminates *request* immediately.  For ``NEXT``-constrained successors
        the application may specify which node IDs it releases; the remaining
        ones are carried over to the successor when it starts.
        """
        session = self._session(app_id)
        if session.requests.find(request.request_id) is None:
            raise RequestError(
                f"request #{request.request_id} does not belong to {app_id!r}"
            )
        if request.finished():
            return
        self._finish_request(session, request, released_node_ids, expired=False)
        self.event_log.record(
            RequestDone(
                self.now,
                app_id,
                request_id=request.request_id,
                released_node_ids=tuple(sorted(released_node_ids)) if released_node_ids else (),
            )
        )
        self._trigger_schedule()

    # ------------------------------------------------------------------ #
    # Request lifecycle internals
    # ------------------------------------------------------------------ #
    def _finish_request(
        self,
        session: Session,
        request: Request,
        released_node_ids: Optional[Iterable[NodeId]],
        expired: bool,
    ) -> None:
        was_started = request.started()
        nodes_used = request.node_count if request.is_preallocation() else len(request.node_ids)
        request.mark_finished(self.now)
        self._cancel_expiry(request)

        if was_started and not request.is_preallocation():
            held = set(request.node_ids)
            successor = self._pending_next_child(session, request)
            if released_node_ids is not None:
                to_release = set(released_node_ids) & held
            elif successor is not None:
                # Keep everything for the successor unless told otherwise.
                to_release = set()
            else:
                to_release = held
            if to_release:
                self.platform.release(request.cluster_id, to_release, self.now)
                session.remove_nodes(request.cluster_id, frozenset(to_release))
            request.node_ids = frozenset(held - to_release)
        elif not was_started and released_node_ids is not None:
            # The application releases nodes carried by the (finished)
            # predecessors of a not-yet-started successor in an update chain.
            to_release = set(released_node_ids)
            for ancestor in self._next_chain_ancestors(request):
                retained = set(ancestor.node_ids) & to_release
                if retained:
                    self.platform.release(request.cluster_id, retained, self.now)
                    session.remove_nodes(request.cluster_id, frozenset(retained))
                    ancestor.node_ids = frozenset(set(ancestor.node_ids) - retained)
                    to_release -= retained
                if not to_release:
                    break

        # If nothing will ever take over the nodes still retained by this
        # request's finished NEXT ancestors, give them back now.
        if self._pending_next_child(session, request) is None:
            for ancestor in self._next_chain_ancestors(request, include_self=True):
                if ancestor.node_ids and self._pending_next_child(session, ancestor) is None:
                    self.platform.release(request.cluster_id, ancestor.node_ids, self.now)
                    session.remove_nodes(request.cluster_id, ancestor.node_ids)
                    ancestor.node_ids = frozenset()

        if was_started:
            self.accountant.record_interval(
                app_id=session.app_id,
                request_id=request.request_id,
                rtype=request.rtype,
                cluster_id=request.cluster_id,
                node_count=nodes_used,
                start=request.started_at,
                end=self.now,
            )
        if expired:
            self.event_log.record(
                RequestExpired(self.now, session.app_id, request_id=request.request_id)
            )
        metrics = _obs.METRICS[0]
        if metrics is not None:
            metrics.inc("rms.requests_finished")
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                self.now,
                "rms",
                "finish",
                {
                    "app": session.app_id,
                    "req": self._obs_req(request),
                    "rtype": request.rtype.value,
                    "nodes": nodes_used if was_started else 0,
                    "started": was_started,
                    "expired": expired,
                },
            )
            self._obs_allocation(tracer)

    def _pending_next_child(self, session: Session, request: Request) -> Optional[Request]:
        """The not-yet-started NEXT successor of *request*, if any."""
        for candidate_set in (
            session.requests.non_preemptible,
            session.requests.preemptible,
            session.requests.preallocations,
        ):
            for r in candidate_set:
                if (
                    r.related_how is RelatedHow.NEXT
                    and r.related_to is request
                    and not r.started()
                    and not r.finished()
                ):
                    return r
        return None

    @staticmethod
    def _next_chain_ancestors(request: Request, include_self: bool = False, max_hops: int = 64):
        """Finished ``NEXT`` ancestors of *request* that still retain node IDs.

        Update operations chain requests with ``NEXT``; nodes stay bound to a
        finished predecessor until its successor starts.  Several helpers need
        to walk that chain (to carry nodes over, to release them early, or to
        clean up orphans), so the traversal lives here.
        """
        if include_self and request.finished() and request.node_ids:
            yield request
        current = request
        hops = 0
        while (
            current.related_how is RelatedHow.NEXT
            and current.related_to is not None
            and hops < max_hops
        ):
            parent = current.related_to
            if parent.finished() and parent.node_ids:
                yield parent
            if not parent.finished():
                break
            current = parent
            hops += 1

    def _start_request(self, session: Session, request: Request) -> bool:
        """Try to start *request* now; returns False if it must wait for nodes."""
        if request.started() or request.finished():
            return True
        now = self.now

        if request.is_preallocation():
            request.mark_started(now, frozenset())
            session.application.on_start(request, frozenset())
            self._schedule_expiry(session, request)
            self.event_log.record(
                RequestStarted(now, session.app_id, request_id=request.request_id)
            )
            tracer = _obs.TRACER[0]
            if tracer is not None:
                tracer.emit(
                    now,
                    "rms",
                    "start",
                    {
                        "app": session.app_id,
                        "req": self._obs_req(request),
                        "rtype": request.rtype.value,
                        "nodes": 0,
                        "cluster": request.cluster_id,
                    },
                )
            return True

        cluster = self.platform.cluster(request.cluster_id)
        needed = request.node_count
        if request.is_preemptible():
            needed = min(request.node_count, max(request.n_alloc, 0))

        # Nodes retained by finished NEXT predecessors stay allocated to the
        # application; re-label them for this request.  The chain may be more
        # than one hop long when updates were issued faster than they could
        # be served.
        carried: Set[NodeId] = set()
        carried_from: Dict[int, Set[NodeId]] = {}
        session_holds = set(session.holds(request.cluster_id))
        for ancestor in self._next_chain_ancestors(request):
            if len(carried) >= needed:
                break
            take = (set(ancestor.node_ids) & session_holds) - carried
            take = set(sorted(take)[: needed - len(carried)])
            if take:
                carried |= take
                carried_from[ancestor.request_id] = take

        free = cluster.free_count()
        extra_needed = max(0, needed - len(carried))
        if request.is_non_preemptible():
            if free < extra_needed:
                # Not enough nodes free yet: wait for an application to
                # release resources (paper Appendix A.5, situation 2).
                return False
        else:
            extra_needed = min(extra_needed, free)

        new_nodes: FrozenSet[NodeId] = frozenset()
        if extra_needed > 0:
            new_nodes = cluster.allocate(
                extra_needed, session.app_id, request.request_id, now
            )
            session.add_nodes(request.cluster_id, new_nodes)
        if carried:
            cluster.transfer(carried, session.app_id, request.request_id, now)
            for ancestor in self._next_chain_ancestors(request):
                taken = carried_from.get(ancestor.request_id)
                if taken:
                    ancestor.node_ids = frozenset(set(ancestor.node_ids) - taken)
        # Retained nodes of the chain that this request did not take are no
        # longer needed by anyone: give them back.
        for ancestor in self._next_chain_ancestors(request):
            if ancestor.node_ids:
                leftover = set(ancestor.node_ids) & session_holds
                leftover -= carried
                if leftover:
                    cluster.release(leftover, now)
                    session.remove_nodes(request.cluster_id, frozenset(leftover))
                ancestor.node_ids = frozenset()

        all_nodes = frozenset(carried) | new_nodes
        request.mark_started(now, all_nodes)
        self._schedule_expiry(session, request)
        session.application.on_start(request, all_nodes)
        self.event_log.record(
            RequestStarted(
                now,
                session.app_id,
                request_id=request.request_id,
                node_ids=tuple(sorted(all_nodes)),
            )
        )
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                now,
                "rms",
                "start",
                {
                    "app": session.app_id,
                    "req": self._obs_req(request),
                    "rtype": request.rtype.value,
                    "nodes": len(all_nodes),
                    "cluster": request.cluster_id,
                },
            )
            self._obs_allocation(tracer)
        return True

    def _schedule_expiry(self, session: Session, request: Request) -> None:
        if math.isinf(request.duration):
            return
        handle = self.simulator.schedule(
            request.duration, self._expire_request, session.app_id, request
        )
        self._expiry_handles[request.request_id] = handle

    def _cancel_expiry(self, request: Request) -> None:
        handle = self._expiry_handles.pop(request.request_id, None)
        if handle is not None:
            handle.cancel()

    def _expire_request(self, app_id: str, request: Request) -> None:
        session = self.sessions.get(app_id)
        if session is None or not session.alive or request.finished():
            return
        self._finish_request(session, request, released_node_ids=None, expired=True)
        self._trigger_schedule()

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def _trigger_schedule(self) -> None:
        """Run the scheduler soon, coalescing bursts of messages."""
        if self._schedule_handle is not None and self._schedule_handle.pending():
            return
        earliest = self._last_schedule_time + self.rescheduling_interval
        delay = max(0.0, earliest - self.now)
        self._schedule_handle = self.simulator.schedule(delay, self._run_schedule)

    def _run_schedule(self) -> None:
        self._schedule_handle = None
        self._last_schedule_time = self.now

        # Drop finished requests that no unfinished request depends on, so
        # long-running applications (which update thousands of times) keep
        # the scheduling cost proportional to their *live* requests.  The
        # session list is computed once here; the view-push loop below takes
        # a fresh one because start callbacks may disconnect sessions.
        sessions = self.connected_sessions()
        for session in sessions:
            session.requests.prune_finished()

        applications = {session.app_id: session.requests for session in sessions}
        if not applications:
            return
        # Usage-aware queue orderings (fair-share) consult the accountant;
        # the aggregation walk is skipped for every other policy.
        usage = None
        if self.scheduler.policy.ordering.needs_usage:
            usage = self.accountant.used_node_seconds_by_app()
        metrics = _obs.METRICS[0]
        profiler = _obs.PROFILER[0]
        if metrics is not None:
            metrics.inc("rms.passes")
        if profiler is None:
            result = self.scheduler.schedule(applications, self.now, usage=usage)
        else:
            started = time.perf_counter()
            try:
                result = self.scheduler.schedule(applications, self.now, usage=usage)
            finally:
                profiler.add("scheduler.pass", time.perf_counter() - started)

        # Start requests whose time has come.  Non-preemptible requests that
        # cannot get node IDs yet (resources not released) stay pending and
        # will be retried at the next pass.
        deferred = False
        for request in result.to_start:
            session = self.sessions.get(request.app_id)
            if session is None or not session.alive:
                continue
            if not self._start_request(session, request):
                deferred = True
        if deferred:
            if metrics is not None:
                metrics.inc("rms.deferred_starts")
            # Make sure a retry happens even if no further message arrives
            # (the releasing application may already have gone quiet).
            self.simulator.schedule(self.rescheduling_interval, self._trigger_schedule)

        # Push views that changed.
        default_cid = self.platform.default_cluster_id()
        empty_view = View.empty()
        for session in self.connected_sessions():
            non_preemptive = result.non_preemptive_views.get(session.app_id, empty_view)
            preemptive = result.preemptive_views.get(session.app_id, empty_view)
            if session.views_changed(non_preemptive, preemptive):
                session.remember_views(non_preemptive, preemptive)
                if metrics is not None:
                    metrics.inc("rms.views_pushed")
                self.event_log.record(
                    ViewsPushed(
                        self.now,
                        session.app_id,
                        non_preemptive_total=non_preemptive[default_cid].value_at(self.now),
                        preemptive_total=preemptive[default_cid].value_at(self.now),
                    )
                )
                session.application.on_views(non_preemptive, preemptive)

        if self.kill_protocol_violators:
            self.simulator.schedule(self.violation_grace, self._check_protocol_violations)

    def _check_protocol_violations(self) -> None:
        """Kill applications that hold more preemptible nodes than allowed."""
        for session in self.connected_sessions():
            view = session.last_preemptive_view
            if view is None:
                continue
            for cid in self.platform.clusters:
                held = session.preemptible_held_count(cid)
                allowed = int(view[cid].value_at(self.now))
                if held > allowed:
                    self.kill(
                        session.app_id,
                        reason=(
                            f"holds {held} preemptible nodes on {cid!r} but the "
                            f"preemptive view only allows {allowed}"
                        ),
                    )
                    break

    # ------------------------------------------------------------------ #
    # Capacity revocation (fault injection / elastic members)
    # ------------------------------------------------------------------ #
    def set_capacity(self, node_count: int, reason: str = "capacity change") -> List[str]:
        """Grow or shrink the default cluster to *node_count* nodes.

        Shrinking picks the highest node IDs as victims; applications
        holding a victim are killed first (the forced kill *is* the
        simulated crash), which releases every node they held.  Growing
        adds fresh nodes that re-use the lowest missing IDs.  Either way
        the scheduler's capacity view is rebuilt and a pass is triggered.
        Returns the app ids killed, in connection order.
        """
        if node_count < 0:
            raise ValueError("node_count cannot be negative")
        cluster = self.platform.cluster(self.platform.default_cluster_id())
        current = cluster.node_count
        killed: List[str] = []
        if node_count == current:
            return killed
        if node_count < current:
            victims = cluster.shrink_victims(current - node_count)
            owners: List[str] = []
            for nid in victims:
                node = cluster.nodes[nid]
                if node.state is NodeState.ALLOCATED and node.owner_app not in owners:
                    owners.append(node.owner_app)
            for app_id in owners:
                session = self.sessions.get(app_id)
                if session is not None and session.alive:
                    self.kill(app_id, reason=reason)
                    killed.append(app_id)
            cluster.remove_nodes(victims, self.now)
        else:
            cluster.add_nodes(node_count - current, self.now)
        self.scheduler.set_capacity(self.platform.capacity())
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                self.now,
                "rms",
                "capacity",
                {
                    "cluster": cluster.cluster_id,
                    "nodes": cluster.node_count,
                    "reason": reason,
                    "killed": killed,
                },
            )
            self._obs_allocation(tracer)
        self._trigger_schedule()
        return killed

    def release_capacity(self, count: int, reason: str = "elastic shrink") -> int:
        """Gently shed up to *count* currently-free nodes (highest IDs).

        The elastic-shrink counterpart of :meth:`set_capacity`: running
        applications are never killed, so the member only gives back what
        it is not using.  Returns the number of nodes actually removed.
        """
        if count <= 0:
            return 0
        cluster = self.platform.cluster(self.platform.default_cluster_id())
        free = [
            nid for nid in sorted(cluster.nodes, reverse=True)
            if cluster.nodes[nid].state is not NodeState.ALLOCATED
        ][:count]
        if not free:
            return 0
        cluster.remove_nodes(free, self.now)
        self.scheduler.set_capacity(self.platform.capacity())
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                self.now,
                "rms",
                "capacity",
                {
                    "cluster": cluster.cluster_id,
                    "nodes": cluster.node_count,
                    "reason": reason,
                    "killed": [],
                },
            )
            self._obs_allocation(tracer)
        self._trigger_schedule()
        return len(free)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by experiments and tests
    # ------------------------------------------------------------------ #
    def force_schedule(self) -> None:
        """Run a scheduling pass immediately (tests and experiments only)."""
        self._run_schedule()

    def total_nodes(self) -> int:
        return self.platform.total_nodes()

    def __repr__(self) -> str:
        return (
            f"CooRMv2({self.platform!r}, {len(self.connected_sessions())} sessions, "
            f"t={self.now:g})"
        )
