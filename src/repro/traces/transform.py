"""Composable trace transformations with recorded provenance.

Each transformation is a small frozen dataclass mapping a
:class:`~repro.traces.swf.Trace` to a new trace; applying one appends a
``{"kind": ..., **params}`` step to the trace's provenance, so any trace can
tell exactly how it was derived from its source.  A :class:`Pipeline` chains
transformations and round-trips through a list of dictionaries, which is how
campaign scenario specs describe trace preprocessing declaratively.

The transformations cover the standard preprocessing steps of trace-driven
evaluation: dropping non-runnable records (:class:`FilterJobs`), cutting a
time window (:class:`TimeWindow`), rescaling the offered load
(:class:`LoadRescale`), clamping jobs into a smaller cluster
(:class:`ClampNodes`) and re-basing submit times (:class:`ShiftToZero`).
"""
from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type

from ..core.errors import WorkloadError
from .serde import from_strict_dict
from .swf import SwfJob, Trace

__all__ = [
    "FilterJobs",
    "TimeWindow",
    "LoadRescale",
    "ClampNodes",
    "ShiftToZero",
    "Pipeline",
    "transform_from_dict",
]


def _step_dict(transform) -> Dict:
    data = asdict(transform)
    data["kind"] = transform.kind
    return data


@dataclass(frozen=True)
class _Transform:
    """Base class: `apply` plus dict round-tripping shared by all steps."""

    def apply(self, trace: Trace) -> Trace:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_dict(self) -> Dict:
        return _step_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping):
        return from_strict_dict(cls, data)


@dataclass(frozen=True)
class FilterJobs(_Transform):
    """Keep only jobs inside the given node/duration/status bounds.

    ``None`` bounds are inactive; ``require_valid`` additionally drops
    records that cannot run at all (unknown size or duration), which real
    archive traces are full of.
    """

    kind = "filter"
    min_nodes: Optional[int] = None
    max_nodes: Optional[int] = None
    min_duration: Optional[float] = None
    max_duration: Optional[float] = None
    statuses: Optional[Tuple[int, ...]] = None
    require_valid: bool = True

    def __post_init__(self) -> None:
        # A NaN bound compares False against everything, silently turning
        # the filter into a no-op (or dropping nothing) -- reject it.
        for name in ("min_nodes", "max_nodes", "min_duration", "max_duration"):
            value = getattr(self, name)
            if value is not None and math.isnan(value):
                raise ValueError(f"{name} must not be NaN")
        if self.statuses is not None:
            object.__setattr__(
                self, "statuses", tuple(int(s) for s in self.statuses)
            )

    def _keep(self, job: SwfJob) -> bool:
        if self.require_valid and not job.is_valid_job():
            return False
        if self.min_nodes is not None and job.node_count < self.min_nodes:
            return False
        if self.max_nodes is not None and job.node_count > self.max_nodes:
            return False
        if self.min_duration is not None and job.duration < self.min_duration:
            return False
        if self.max_duration is not None and job.duration > self.max_duration:
            return False
        if self.statuses is not None and job.status not in self.statuses:
            return False
        return True

    def apply(self, trace: Trace) -> Trace:
        kept = [job for job in trace.jobs if self._keep(job)]
        step = self.to_dict()
        step["dropped"] = trace.job_count - len(kept)
        return trace.with_jobs(kept, step=step)


@dataclass(frozen=True)
class TimeWindow(_Transform):
    """Keep jobs submitted inside ``[start, end)`` (seconds from trace start)."""

    kind = "time_window"
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        # `not start < end` (instead of `end <= start`) also rejects NaN
        # bounds, which would otherwise silently drop every job.
        if not math.isfinite(self.start) or not self.start < self.end:
            raise ValueError("time window must satisfy finite start < end")

    def apply(self, trace: Trace) -> Trace:
        kept = [
            job for job in trace.jobs if self.start <= job.submit_time < self.end
        ]
        step = self.to_dict()
        step["dropped"] = trace.job_count - len(kept)
        return trace.with_jobs(kept, step=step)

    def to_dict(self) -> Dict:
        data = _step_dict(self)
        if math.isinf(self.end):
            data["end"] = None  # an open window stays strict-JSON
        return data

    @classmethod
    def from_dict(cls, data: Mapping):
        data = dict(data)
        if data.get("end") is None:
            data.pop("end", None)
        return super().from_dict(data)


@dataclass(frozen=True)
class LoadRescale(_Transform):
    """Rescale the offered load by compressing or stretching arrivals.

    A factor of 2 doubles the load: inter-arrival gaps halve while job sizes
    and durations stay untouched.  The job count is always preserved -- the
    transformation changes *when* work arrives, never *how much*.
    """

    kind = "load_rescale"
    factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.factor < math.inf:  # also rejects NaN
            raise ValueError("load factor must be positive and finite")

    def apply(self, trace: Trace) -> Trace:
        if not trace.jobs:
            return trace.with_jobs((), step=self.to_dict())
        origin = min(job.submit_time for job in trace.jobs)
        rescaled = [
            replace(
                job,
                submit_time=origin + (job.submit_time - origin) / self.factor,
            )
            for job in trace.jobs
        ]
        return trace.with_jobs(rescaled, step=self.to_dict())


@dataclass(frozen=True)
class ClampNodes(_Transform):
    """Clamp per-job node counts to *max_nodes* (e.g. the simulated cluster).

    Both the requested and the used processor counts are clamped, and the
    header's ``MaxNodes``/``MaxProcs`` directives are updated to match, so a
    clamped trace never asks for more than the cluster it targets.
    """

    kind = "clamp_nodes"
    max_nodes: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.max_nodes < math.inf:  # also rejects NaN
            raise ValueError("max_nodes must be positive and finite")

    def apply(self, trace: Trace) -> Trace:
        clamped = [
            replace(
                job,
                req_procs=min(job.req_procs, self.max_nodes),
                used_procs=min(job.used_procs, self.max_nodes),
            )
            for job in trace.jobs
        ]
        header = trace.header.with_directive("MaxNodes", self.max_nodes)
        header = header.with_directive("MaxProcs", self.max_nodes)
        return trace.with_header(header).with_jobs(clamped, step=self.to_dict())


@dataclass(frozen=True)
class ShiftToZero(_Transform):
    """Re-base submit times so the first submission happens at t=0."""

    kind = "shift_to_zero"

    def apply(self, trace: Trace) -> Trace:
        if not trace.jobs:
            return trace.with_jobs((), step=self.to_dict())
        origin = min(job.submit_time for job in trace.jobs)
        shifted = [
            replace(job, submit_time=job.submit_time - origin) for job in trace.jobs
        ]
        step = self.to_dict()
        step["shifted_by"] = origin
        return trace.with_jobs(shifted, step=step)


#: kind tag -> transformation class, for deserialisation.
_TRANSFORM_KINDS: Dict[str, Type[_Transform]] = {
    cls.kind: cls
    for cls in (FilterJobs, TimeWindow, LoadRescale, ClampNodes, ShiftToZero)
}


def transform_from_dict(data: Mapping) -> _Transform:
    """Rebuild a transformation from its ``{"kind": ...}`` dictionary.

    Bookkeeping keys that :meth:`apply` adds to provenance steps (job drop
    counts, shift offsets) are ignored, so a recorded provenance step is
    itself a valid transformation description.
    """
    kind = data.get("kind")
    try:
        cls = _TRANSFORM_KINDS[kind]
    except KeyError:
        raise WorkloadError(
            f"unknown trace transform kind {kind!r}; "
            f"known kinds: {sorted(_TRANSFORM_KINDS)}"
        ) from None
    cleaned = {
        k: v for k, v in data.items() if k not in ("dropped", "shifted_by")
    }
    if cls is FilterJobs and cleaned.get("statuses") is not None:
        cleaned["statuses"] = tuple(cleaned["statuses"])
    return cls.from_dict(cleaned)


@dataclass(frozen=True)
class Pipeline:
    """An ordered chain of transformations applied left to right."""

    steps: Tuple[_Transform, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    def apply(self, trace: Trace) -> Trace:
        for step in self.steps:
            trace = step.apply(trace)
        return trace

    def to_dicts(self) -> List[Dict]:
        return [step.to_dict() for step in self.steps]

    @classmethod
    def from_dicts(cls, data: Sequence[Mapping]) -> "Pipeline":
        return cls(steps=tuple(transform_from_dict(d) for d in data))
