"""Federation: multi-cluster simulation behind a routing meta-scheduler.

This subsystem multiplies every existing scenario across heterogeneous
multi-cluster topologies without touching the paper's per-cluster
semantics:

* :mod:`repro.federation.spec` -- :class:`ClusterSpec` /
  :class:`FederationSpec` dataclasses that round-trip through JSON, plus
  named built-in topologies;
* :mod:`repro.federation.routing` -- the pluggable request-routing registry
  (``any``, ``round-robin``, ``least-loaded``, ``best-fit``, ``random``,
  ``affinity``), mirroring the stage-registry design of
  :mod:`repro.policies`;
* :mod:`repro.federation.federation` -- the :class:`Federation` (one
  :class:`~repro.core.rms.CooRMv2` per member cluster, one shared event
  engine) and the :class:`MetaScheduler` that places applications;
* :mod:`repro.federation.metrics` -- aggregated metrics and per-cluster
  utilisation breakdowns;
* :mod:`repro.federation.cli` -- the ``python -m repro federation``
  command group.

The load-bearing correctness contract: a 1-cluster federation under the
``any`` routing and the ``coorm`` policy is **byte-identical** to the
direct single-:class:`~repro.core.scheduler.Scheduler` path (pinned by the
golden regression suite).

Quick start::

    from repro.federation import ClusterSpec, Federation, FederationSpec
    from repro.sim import Simulator

    sim = Simulator()
    fed = Federation(
        FederationSpec(
            clusters=(ClusterSpec("east", 32), ClusterSpec("west", 64)),
            routing="least-loaded",
        ),
        sim,
    )
    fed.submit(my_application, node_count=16)  # routed, then connected
    sim.run()
"""
from .federation import (
    Federation,
    FederationMember,
    MetaScheduler,
    RoutingDecision,
    locality_group,
)
from .metrics import collect_federated, federation_breakdown
from .routing import (
    DEFAULT_ROUTING,
    ClusterState,
    RoutingPolicy,
    RoutingRequest,
    describe_routing,
    make_routing,
    register_routing,
    routing_names,
)
from .spec import (
    ClusterSpec,
    FederationSpec,
    get_topology,
    register_topology,
    topology_names,
)

__all__ = [
    "DEFAULT_ROUTING",
    "ClusterSpec",
    "ClusterState",
    "Federation",
    "FederationMember",
    "FederationSpec",
    "MetaScheduler",
    "RoutingDecision",
    "RoutingPolicy",
    "RoutingRequest",
    "collect_federated",
    "describe_routing",
    "federation_breakdown",
    "get_topology",
    "locality_group",
    "make_routing",
    "register_routing",
    "register_topology",
    "routing_names",
    "topology_names",
]
