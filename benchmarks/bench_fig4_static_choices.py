"""Benchmark and reproduction of Figure 4 (static allocation choices)."""
from __future__ import annotations

from repro.experiments import fig4_static_choices


def test_fig4_static_choices(benchmark):
    """Time the Figure 4 sweep over relative peak data sizes."""
    rows = benchmark(
        fig4_static_choices.run,
        relative_sizes=fig4_static_choices.PAPER_RELATIVE_SIZES,
        num_steps=300,
    )
    assert len(rows) == len(fig4_static_choices.PAPER_RELATIVE_SIZES)
    print()
    print(fig4_static_choices.main(num_steps=300))
