"""Micro-benchmarks of the simulation kernel, one floor per optimization.

The kernel speed overhaul (issue 7) touched four hot paths; each gets its
own throughput floor here so a regression in any single optimization fails
CI even when the others hide it in an end-to-end number:

* **Indexed ``StepFunction`` lookups** -- ``value_at``/``min_over`` are
  bisect-indexed instead of linear scans.
* **Single-pass merges** -- ``_combine`` walks both breakpoint lists once.
* **Incremental CBF availability** -- ``ConservativeBackfillQueue.submit``
  updates its profile in place instead of rebuilding it per job.
* **Batched engine dispatch** -- same-timestamp events fire as one calendar
  bucket, one heap operation per distinct time.

Every measurement uses plain ``time.perf_counter`` so the suite runs under
the bare pytest of the CI benchmarks job (no pytest-benchmark plugin) and
standalone via ``PYTHONPATH=src python benchmarks/bench_kernel_micro.py``.

Floors are set 3-8x below the throughput of a 2024-era dev container, so
they only trip on genuine algorithmic regressions, not machine jitter.
When ``BENCH_10.json`` already exists in the working directory (CI writes it
via ``python -m repro obs bench`` first), the measured rates are merged
into its ``kernel_micro`` section.
"""
from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Callable, Dict

from repro.core.cbf import CbfJob, ConservativeBackfillQueue
from repro.core.fit import fit
from repro.core.profile import StepFunction
from repro.core.request import Request
from repro.core.types import RequestType
from repro.core.view import View
from repro.sim.engine import Simulator

#: Floors, one per optimization (events per second unless noted).
STEPFN_LOOKUP_FLOOR = 500_000  # value_at calls/s on a ~1.6k-breakpoint profile
STEPFN_MIN_OVER_FLOOR = 150_000  # min_over windows/s on the same profile
STEPFN_COMBINE_FLOOR = 300  # full profile merges/s (~3k breakpoints total)
CBF_SUBMIT_FLOOR = 25_000  # jobs/s through the incremental CBF queue
FIT_FLOOR = 50_000  # requests/s through one fit() pass
DISPATCH_FLOOR = 1_000_000  # events/s through Simulator.run (issue 7 target)

#: Merged-report file; sections are only written when it already exists.
BENCH_REPORT = "BENCH_10.json"


def _median_rate(units: int, body: Callable[[], None], repeats: int = 3) -> float:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        samples.append(time.perf_counter() - started)
    return units / statistics.median(samples)


def _report(name: str, rate: float, floor: float, unit: str) -> None:
    print(f"\n{name}: {rate:,.0f} {unit} (floor {floor:,})")
    _merge_into_bench_report(name, {"rate": rate, "floor": floor, "unit": unit})


def _merge_into_bench_report(name: str, payload: Dict[str, object]) -> None:
    path = Path(BENCH_REPORT)
    if not path.is_file():
        return
    report = json.loads(path.read_text(encoding="utf-8"))
    report.setdefault("kernel_micro", {})[name] = payload
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")


# --------------------------------------------------------------------- #
# Workloads (deterministic, no RNG: modular patterns are enough here)
# --------------------------------------------------------------------- #
def busy_profile(rectangles: int = 1000, capacity: int = 4096) -> StepFunction:
    """An availability-like profile with O(1000) surviving breakpoints."""
    profile = StepFunction.constant(capacity)
    for i in range(rectangles):
        profile.subtract_rectangle_in_place(
            float(i * 7 % 5000), 13.0 + (i % 9), 1 + i % 32
        )
    return profile


def occupation_profile(rectangles: int = 1000) -> StepFunction:
    profile = StepFunction.constant(0)
    for i in range(rectangles):
        profile.add_rectangle_in_place(float(i * 11 % 5000), 17.0, 1 + i % 16)
    return profile


def cbf_workload(jobs: int):
    """A balanced rigid-job stream: the queue stays busy but never drowns."""
    return [
        CbfJob(f"j{i}", 1 + (i * 7) % 64, 60.0 + (i % 13) * 30.0, submit_time=i * 16.0)
        for i in range(jobs)
    ]


def fit_requests(count: int):
    return [
        Request("c0", 4 + (j % 8), 600.0 + 60.0 * (j % 16), RequestType.NON_PREEMPTIBLE)
        for j in range(count)
    ]


# --------------------------------------------------------------------- #
# 1. Indexed StepFunction lookups
# --------------------------------------------------------------------- #
def test_stepfn_lookup_floor():
    profile = busy_profile()
    probes = [float((i * 37) % 6000) + 0.5 for i in range(1000)]
    value_at = profile.value_at

    def lookups():
        for _ in range(100):
            for t in probes:
                value_at(t)

    rate = _median_rate(100 * len(probes), lookups)
    _report("stepfn_value_at_per_second", rate, STEPFN_LOOKUP_FLOOR, "lookups/s")
    assert rate >= STEPFN_LOOKUP_FLOOR

    min_over = profile.min_over

    def windows():
        for _ in range(20):
            for t in probes:
                min_over(t, t + 50.0)

    rate = _median_rate(20 * len(probes), windows)
    _report("stepfn_min_over_per_second", rate, STEPFN_MIN_OVER_FLOOR, "windows/s")
    assert rate >= STEPFN_MIN_OVER_FLOOR


# --------------------------------------------------------------------- #
# 2. Single-pass profile merges
# --------------------------------------------------------------------- #
def test_stepfn_combine_floor():
    available = busy_profile()
    occupied = occupation_profile()
    repeats = 200

    def merges():
        for _ in range(repeats):
            available - occupied

    rate = _median_rate(repeats, merges)
    _report("stepfn_combines_per_second", rate, STEPFN_COMBINE_FLOOR, "merges/s")
    assert rate >= STEPFN_COMBINE_FLOOR


# --------------------------------------------------------------------- #
# 3. Incremental CBF availability
# --------------------------------------------------------------------- #
def test_cbf_submit_floor():
    jobs = 20_000
    samples = []
    for _ in range(3):
        workload = cbf_workload(jobs)
        queue = ConservativeBackfillQueue(512)
        started = time.perf_counter()
        for job in workload:
            queue.submit(job)
        samples.append(time.perf_counter() - started)
        assert len(queue.jobs) == jobs
    rate = jobs / statistics.median(samples)
    _report("cbf_submit_jobs_per_second", rate, CBF_SUBMIT_FLOOR, "jobs/s")
    assert rate >= CBF_SUBMIT_FLOOR


# --------------------------------------------------------------------- #
# 4. fit() pass throughput
# --------------------------------------------------------------------- #
def test_fit_pass_floor():
    count = 2000
    available = View.constant({"c0": 4096})
    samples = []
    for _ in range(3):
        requests = fit_requests(count)  # fit() mutates: fresh set per run
        started = time.perf_counter()
        occupied = fit(requests, available, 0.0)
        samples.append(time.perf_counter() - started)
        assert occupied["c0"].value_at(0.0) > 0
    rate = count / statistics.median(samples)
    _report("fit_requests_per_second", rate, FIT_FLOOR, "requests/s")
    assert rate >= FIT_FLOOR


# --------------------------------------------------------------------- #
# 5. Batched engine dispatch
# --------------------------------------------------------------------- #
def test_engine_dispatch_floor():
    events = 300_000
    per_timestamp = 100  # realistic traces coalesce on integer seconds

    def _noop() -> None:
        pass

    samples = []
    for _ in range(3):
        sim = Simulator()
        for i in range(events):
            sim.schedule_at(float(i // per_timestamp), _noop)
        started = time.perf_counter()
        sim.run()
        samples.append(time.perf_counter() - started)
        assert sim.processed_events == events
    rate = events / statistics.median(samples)
    _report("engine_dispatch_events_per_second", rate, DISPATCH_FLOOR, "events/s")
    assert rate >= DISPATCH_FLOOR


if __name__ == "__main__":
    for case in (
        test_stepfn_lookup_floor,
        test_stepfn_combine_floor,
        test_cbf_submit_floor,
        test_fit_pass_floor,
        test_engine_dispatch_floor,
    ):
        case()
    print("\nall kernel micro floors hold")
