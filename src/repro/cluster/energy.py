"""Energy accounting for idle resources.

Section 5.3 of the paper notes that resources released early thanks to
announced updates can be "put in an energy saving mode".  This module turns
that remark into a measurable quantity: given the platform capacity and the
allocation records of a simulation, it reports how many node-seconds were
idle (candidates for power-down) and translates them into energy figures
under a simple two-level power model.
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel", "EnergyReport"]


@dataclass
class EnergyModel:
    """Two-level node power model (Watts)."""

    #: Power drawn by a node while allocated to an application.
    busy_watts: float = 250.0
    #: Power drawn by an idle node that is kept powered on.
    idle_watts: float = 120.0
    #: Power drawn by a node in the energy-saving state.
    sleep_watts: float = 15.0

    def __post_init__(self) -> None:
        if min(self.busy_watts, self.idle_watts, self.sleep_watts) < 0:
            raise ValueError("power figures must be non-negative")


@dataclass
class EnergyReport:
    """Energy consumed over a simulation horizon, in Joules."""

    busy_joules: float
    idle_joules: float
    saved_joules: float

    @property
    def total_joules(self) -> float:
        return self.busy_joules + self.idle_joules

    @property
    def total_kwh(self) -> float:
        return self.total_joules / 3.6e6


def energy_report(
    total_nodes: int,
    horizon_seconds: float,
    busy_node_seconds: float,
    sleepable_node_seconds: float = 0.0,
    model: EnergyModel = EnergyModel(),
) -> EnergyReport:
    """Compute an :class:`EnergyReport` for a finished simulation.

    Parameters
    ----------
    total_nodes:
        Platform size.
    horizon_seconds:
        Length of the simulated interval.
    busy_node_seconds:
        Node-seconds during which nodes were allocated to applications.
    sleepable_node_seconds:
        Idle node-seconds that the RMS knew about far enough in advance to
        power the nodes down (e.g. holes exposed by announced updates).
    model:
        Power model to apply.
    """
    if horizon_seconds < 0 or busy_node_seconds < 0 or sleepable_node_seconds < 0:
        raise ValueError("durations must be non-negative")
    capacity_node_seconds = total_nodes * horizon_seconds
    busy_node_seconds = min(busy_node_seconds, capacity_node_seconds)
    idle_node_seconds = max(0.0, capacity_node_seconds - busy_node_seconds)
    sleepable_node_seconds = min(sleepable_node_seconds, idle_node_seconds)
    awake_idle = idle_node_seconds - sleepable_node_seconds

    busy_j = busy_node_seconds * model.busy_watts
    idle_j = awake_idle * model.idle_watts + sleepable_node_seconds * model.sleep_watts
    saved_j = sleepable_node_seconds * (model.idle_watts - model.sleep_watts)
    return EnergyReport(busy_joules=busy_j, idle_joules=idle_j, saved_joules=saved_j)
