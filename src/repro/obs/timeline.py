"""Sim-time timelines reconstructed from deterministic event traces.

A :class:`TimelineBuilder` replays an :class:`~repro.obs.tracer.EventTracer`
stream (live events or a parsed JSONL export) into step-function series --
cluster allocation and utilization, scheduler queue depth, running/waiting/
completed job counts, per-cluster federation load, cumulative engine events
-- and samples every series on one **fixed sim-time grid**.  Everything is a
pure function of the event stream, so a timeline built from a byte-identical
trace is itself byte-identical regardless of worker count, and the fig9
timeline is golden-digest-pinned next to the trace itself.

Series are named with the same bracket convention the federation metrics
use (``alloc[cluster0]``), so flat JSON consumers need no nesting rules.
"""
from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from .tracer import TraceEvent

__all__ = ["Timeline", "TimelineBuilder", "sparkline"]

#: Default number of grid intervals (the grid has ``samples + 1`` points).
DEFAULT_SAMPLES = 60

#: Glyph ramp of :func:`sparkline`, lowest to highest.
_SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


@dataclass
class Timeline:
    """Sampled sim-time series of one run, JSON round-trippable."""

    #: First and last grid time (simulated seconds).
    t0: float
    t1: float
    #: Number of grid intervals; the grid has ``samples + 1`` points.
    samples: int
    #: Per-cluster node capacity seen in the trace (empty when untraced).
    capacity: Dict[str, int] = field(default_factory=dict)
    #: Series name -> one value per grid point.
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: Number of trace events the timeline was built from.
    event_count: int = 0

    # ------------------------------------------------------------------ #
    def times(self) -> List[float]:
        """The sampling grid itself."""
        if self.samples <= 0:
            return [self.t0]
        step = (self.t1 - self.t0) / self.samples
        return [self.t0 + i * step for i in range(self.samples + 1)]

    def stats(self, name: str) -> Dict[str, float]:
        """min/mean/max of one series (KeyError on unknown names)."""
        values = self.series[name]
        if not values:
            return {"min": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
        }

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "t0": self.t0,
            "t1": self.t1,
            "samples": self.samples,
            "capacity": dict(sorted(self.capacity.items())),
            "series": {name: list(values) for name, values in sorted(self.series.items())},
            "event_count": self.event_count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Timeline":
        return cls(
            t0=float(data["t0"]),
            t1=float(data["t1"]),
            samples=int(data["samples"]),
            capacity={str(k): int(v) for k, v in dict(data.get("capacity", {})).items()},
            series={
                str(name): [float(v) for v in values]
                for name, values in dict(data.get("series", {})).items()
            },
            event_count=int(data.get("event_count", 0)),
        )

    def to_json(self) -> str:
        """Canonical (sorted-keys, no-NaN) JSON; the golden-digest format."""
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "Timeline":
        return cls.from_dict(json.loads(text))


class _StepSeries:
    """Breakpoints of one piecewise-constant series, sampled by bisection."""

    __slots__ = ("times", "values")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, ts: float, value: float) -> None:
        if self.times and self.times[-1] == ts:
            self.values[-1] = value  # last write at one instant wins
        else:
            self.times.append(ts)
            self.values.append(value)

    def sample(self, grid: Iterable[float], initial: float = 0.0) -> List[float]:
        out: List[float] = []
        for t in grid:
            i = bisect_right(self.times, t)
            out.append(self.values[i - 1] if i else initial)
        return out


class TimelineBuilder:
    """Builds a :class:`Timeline` from a deterministic event stream.

    Parameters
    ----------
    samples:
        Number of grid intervals the series are sampled over.  The grid is
        ``t0 + k * (t1 - t0) / samples`` -- a pure function of the trace, so
        identical traces yield identical timelines.
    """

    def __init__(self, samples: int = DEFAULT_SAMPLES):
        if samples <= 0:
            raise ValueError("samples must be positive")
        self.samples = int(samples)

    # ------------------------------------------------------------------ #
    def build(self, events: Iterable[TraceEvent]) -> Timeline:
        """Replay *events* (in seq order) into a sampled timeline."""
        events = list(events)
        capacity: Dict[str, int] = {}
        series: Dict[str, _StepSeries] = {}
        # Job state machine: connect -> waiting, first start -> running,
        # disconnect/kill -> completed.
        job_state: Dict[str, str] = {}
        counts = {"waiting": 0, "running": 0, "completed": 0}
        alloc_now: Dict[str, float] = {}
        dispatched = 0
        fault_events = 0

        def step(name: str, ts: float, value: float) -> None:
            bucket = series.get(name)
            if bucket is None:
                bucket = series[name] = _StepSeries()
            bucket.record(ts, value)

        def job_transition(ts: float, app: str, state: str) -> None:
            previous = job_state.get(app)
            if previous == state or previous == "completed":
                return
            if previous is not None:
                counts[previous] -= 1
            job_state[app] = state
            counts[state] += 1
            step("jobs.waiting", ts, float(counts["waiting"]))
            step("jobs.running", ts, float(counts["running"]))
            step("jobs.completed", ts, float(counts["completed"]))

        for e in events:
            if e.cat == "engine" and e.name == "dispatch":
                dispatched += 1
                step("engine.dispatched", e.ts, float(dispatched))
            elif e.cat == "scheduler" and e.name == "queue_depth":
                step("queue.apps", e.ts, float(e.args.get("apps", 0)))
                step("queue.pending", e.ts, float(e.args.get("pending", 0)))
            elif e.cat == "rms":
                if e.name == "platform":
                    clusters = e.args.get("clusters", {})
                    if isinstance(clusters, Mapping):
                        for cid, nodes in clusters.items():
                            capacity[str(cid)] = int(nodes)
                elif e.name == "capacity":
                    # Fault injection / elasticity resized a cluster; track
                    # the new size so util.pct stays truthful afterwards.
                    cid = str(e.args.get("cluster", ""))
                    capacity[cid] = int(e.args.get("nodes", capacity.get(cid, 0)))
                    step(f"capacity[{cid}]", e.ts, float(capacity[cid]))
                    step("capacity.total", e.ts, float(sum(capacity.values())))
                elif e.name == "allocated":
                    total = 0.0
                    for cid, nodes in e.args.items():
                        value = float(nodes)
                        alloc_now[str(cid)] = value
                        total += value
                        step(f"alloc[{cid}]", e.ts, value)
                    step("alloc.total", e.ts, total)
                    cap = float(sum(capacity.values()))
                    if cap > 0:
                        step("util.pct", e.ts, 100.0 * total / cap)
                elif e.name == "connect":
                    job_transition(e.ts, str(e.args.get("app", "")), "waiting")
                elif e.name == "start":
                    job_transition(e.ts, str(e.args.get("app", "")), "running")
                elif e.name in ("disconnect", "kill"):
                    job_transition(e.ts, str(e.args.get("app", "")), "completed")
            elif e.cat == "federation" and e.name == "load":
                for cluster, total in e.args.items():
                    step(f"fed.load[{cluster}]", e.ts, float(total))
            elif e.cat == "fault":
                if e.name == "down":
                    step("fault.down", e.ts, float(e.args.get("members", 0)))
                elif e.name != "plan":
                    fault_events += 1
                    step("fault.events", e.ts, float(fault_events))

        if events:
            t0 = min(e.ts for e in events)
            t1 = max(e.ts for e in events)
        else:
            t0 = t1 = 0.0
        timeline = Timeline(
            t0=t0,
            t1=t1,
            samples=self.samples,
            capacity=capacity,
            event_count=len(events),
        )
        grid = timeline.times()
        timeline.series = {
            name: bucket.sample(grid) for name, bucket in sorted(series.items())
        }
        return timeline


def sparkline(values: List[float], width: int = 48) -> str:
    """Render *values* as a unicode block sparkline of at most *width* cells.

    Values are min-max normalised over the series; a flat series renders as
    a run of the lowest non-empty glyph so "present but constant" remains
    distinguishable from "no data".
    """
    if not values:
        return ""
    if len(values) > width:
        # Downsample by averaging equal chunks -- deterministic and stable.
        chunk = len(values) / width
        downsampled = []
        for i in range(width):
            lo_i = int(i * chunk)
            hi_i = max(lo_i + 1, int((i + 1) * chunk))
            window = values[lo_i:hi_i]
            downsampled.append(sum(window) / len(window))
        values = downsampled
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_GLYPHS[1] * len(values)
    span = hi - lo
    ramp = _SPARK_GLYPHS[1:]
    out = []
    for v in values:
        index = int((v - lo) / span * (len(ramp) - 1))
        out.append(ramp[index])
    return "".join(out)
