"""Unit tests of malleable and fully-predictably evolving applications."""
from __future__ import annotations


import pytest

from repro.apps import (
    EvolutionPhase,
    FullyPredictableEvolvingApplication,
    MalleableApplication,
    RigidApplication,
    identity_selector,
    power_of_two_selector,
)
from repro.cluster import Platform
from repro.core import CooRMv2
from repro.sim import Simulator


def make_env(nodes=16):
    sim = Simulator()
    platform = Platform.single_cluster(nodes)
    rms = CooRMv2(platform, sim, rescheduling_interval=1.0)
    return sim, platform, rms


class TestSelectors:
    def test_power_of_two(self):
        assert power_of_two_selector(0) == 0
        assert power_of_two_selector(1) == 1
        assert power_of_two_selector(36) == 32
        assert power_of_two_selector(64) == 64

    def test_identity(self):
        assert identity_selector(-3) == 0
        assert identity_selector(17) == 17


class TestMalleableApplication:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MalleableApplication("m", min_nodes=0, duration=10)
        with pytest.raises(ValueError):
            MalleableApplication("m", min_nodes=1, duration=0)

    def test_min_plus_extra_on_an_empty_cluster(self):
        sim, _, rms = make_env(nodes=16)
        app = MalleableApplication("m", min_nodes=4, duration=200.0)
        app.connect(rms)
        sim.run(until=10.0)
        assert app.min_request.started()
        assert len(app.min_request.node_ids) == 4
        # The malleable part fills (most of) the remaining nodes.
        assert app.current_extra_nodes() >= 8
        assert app.total_nodes() <= 16
        sim.run()
        assert app.finished()

    def test_power_of_two_selector_limits_extra(self):
        sim, _, rms = make_env(nodes=16)
        app = MalleableApplication(
            "m", min_nodes=4, duration=200.0, extra_selector=power_of_two_selector
        )
        app.connect(rms)
        sim.run(until=10.0)
        # 12 nodes are available for the extra part; a power-of-two
        # application can only exploit 8 of them (paper Section 4).
        assert app.current_extra_nodes() == 8

    def test_releases_extra_when_a_rigid_job_arrives(self):
        sim, _, rms = make_env(nodes=16)
        app = MalleableApplication("m", min_nodes=4, duration=2000.0)
        app.connect(rms)
        sim.run(until=10.0)
        extra_before = app.current_extra_nodes()
        rigid = RigidApplication("rigid", node_count=8, duration=100.0)
        rigid.connect(rms)
        sim.run(until=50.0)
        assert rigid.request.started()
        assert app.current_extra_nodes() < extra_before
        # After the rigid job finishes the malleable part grows back.
        sim.run(until=400.0)
        assert app.current_extra_nodes() >= extra_before - 4


class TestFullyPredictableEvolvingApplication:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            EvolutionPhase(node_count=0, duration=10)
        with pytest.raises(ValueError):
            EvolutionPhase(node_count=2, duration=0)
        with pytest.raises(ValueError):
            FullyPredictableEvolvingApplication("e", phases=[])

    def test_growing_and_shrinking_phases(self):
        sim, platform, rms = make_env(nodes=16)
        phases = [
            EvolutionPhase(node_count=2, duration=100.0),
            EvolutionPhase(node_count=8, duration=100.0),
            EvolutionPhase(node_count=4, duration=100.0),
        ]
        app = FullyPredictableEvolvingApplication("evolving", phases=phases)
        app.connect(rms)
        sim.run(until=50.0)
        assert len(app.requests) == 3
        assert len(app.requests[0].node_ids) == 2
        sim.run(until=150.0)
        assert app.requests[1].started()
        assert len(app.requests[1].node_ids) == 8
        # The first phase's nodes are part of the second phase's allocation.
        assert set(app.requests[0].node_ids) | set(app.requests[1].node_ids) == set(
            app.requests[1].node_ids
        ) or len(app.requests[1].node_ids) == 8
        sim.run(until=250.0)
        assert app.requests[2].started()
        assert len(app.requests[2].node_ids) == 4
        sim.run()
        assert app.finished()
        assert platform.cluster("cluster0").free_count() == 16

    def test_planned_metrics(self):
        phases = [EvolutionPhase(2, 100.0), EvolutionPhase(4, 50.0)]
        app = FullyPredictableEvolvingApplication("e", phases=phases)
        assert app.planned_node_seconds() == pytest.approx(2 * 100 + 4 * 50)
        assert app.planned_makespan() == pytest.approx(150.0)

    def test_declared_evolution_is_visible_to_other_applications(self):
        sim, _, rms = make_env(nodes=16)
        phases = [EvolutionPhase(4, 100.0), EvolutionPhase(12, 100.0)]
        app = FullyPredictableEvolvingApplication("evolving", phases=phases)
        app.connect(rms)
        sim.run(until=10.0)
        # A second application's non-preemptive view shows the future growth:
        # only 4 nodes will be free during the second phase.
        other_view = rms.sessions["evolving"].last_non_preemptive_view
        assert other_view is not None
