"""Parallel, deterministic execution of campaigns.

The runner fans the (scenario x replicate) grid of a
:class:`~repro.campaign.spec.CampaignSpec` out over a
:mod:`multiprocessing` pool.  Reproducibility is guaranteed by
construction:

* the seed of every run is ``derive_seed(root_seed, scenario.name,
  replicate)`` -- a pure function of the spec, independent of worker count
  and scheduling order;
* every run is an isolated simulation (no shared mutable state);
* results are re-ordered into the spec's canonical (scenario, replicate)
  order before they are persisted.

Consequently ``workers=1`` and ``workers=N`` produce byte-identical run
records, which the integration tests assert.
"""
from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..obs import EventTracer, MetricsRegistry, PhaseProfiler, observe
from ..sim.randomness import derive_seed
from . import builtin  # noqa: F401  (registers the built-in runners)
from .registry import consume_provenance, get_runner
from .spec import CampaignSpec, ScenarioSpec
from .store import ResultStore
from .units import unit_key

__all__ = [
    "RunTask",
    "CampaignResult",
    "CampaignRunner",
    "CampaignInterrupted",
    "BACKEND_NAMES",
    "trace_filename",
]

#: The registered execution backends of :meth:`CampaignRunner.run`.
BACKEND_NAMES: Tuple[str, ...] = ("pool", "dist")

#: Progress callback: called with (completed, total, record) per finished run.
ProgressFn = Callable[[int, int, Mapping], None]


@dataclass(frozen=True)
class RunTask:
    """One cell of the (policy x) scenario x replicate grid."""

    scenario: ScenarioSpec
    replicate: int
    seed: int
    #: Name of the scenario before policy-matrix expansion (equals
    #: ``scenario.name`` when no policy matrix is active).  The seed is
    #: always derived from this name so every policy variant replays the
    #: same workload.
    base_scenario: str = ""
    #: Collect per-run observability (metrics snapshot into the record's
    #: ``obs`` field, wall-clock phases aggregated into ``meta.json``).
    collect_obs: bool = False
    #: When non-empty, write the run's deterministic JSONL event trace to
    #: ``<trace_dir>/<scenario>_r<replicate>.trace.jsonl``.
    trace_dir: str = ""
    #: When non-empty, evaluate the run against an SLO spec (``"default"``
    #: or a path to a spec JSON file) and persist the flat verdict in the
    #: record's ``slo`` field.  Implies tracing the run in memory.
    slo_spec: str = ""


@dataclass
class CampaignResult:
    """Everything one campaign execution produced."""

    spec: CampaignSpec
    records: List[Dict]
    elapsed_seconds: float
    workers: int
    store_path: Optional[str] = None
    #: Execution backend that produced the records (``pool`` or ``dist``).
    backend: str = "pool"
    #: True when the execution was interrupted and drained early; the
    #: records then cover only the completed prefix of the grid.
    interrupted: bool = False
    #: Runs skipped by ``--resume`` (idempotency key already in the store).
    skipped: int = 0
    #: Flat ``dist_*`` counters of the distributed backend (``None`` on pool).
    dist_stats: Optional[Dict] = None

    def metrics_of(self, scenario: str, replicate: int = 0) -> Dict:
        for record in self.records:
            if record["scenario"] == scenario and record["replicate"] == replicate:
                return record["metrics"]
        raise KeyError(f"no record for scenario {scenario!r} replicate {replicate}")


class CampaignInterrupted(RuntimeError):
    """A campaign execution was interrupted (``SIGINT``/``SIGTERM``).

    In-flight runs were drained and every completed record was flushed to
    the store; the partial :class:`CampaignResult` rides along so callers
    (the CLI exits 130) can report what survived.  Re-running with
    ``--resume`` completes the remainder.
    """

    def __init__(self, result: "CampaignResult"):
        super().__init__(
            f"campaign {result.spec.name!r} interrupted after "
            f"{len(result.records)} of its runs"
        )
        self.result = result


@contextmanager
def _sigterm_as_interrupt():
    """Turn SIGTERM into ``KeyboardInterrupt`` for the enclosed block.

    Signal handlers can only be installed from the main thread; anywhere
    else (a campaign run inside a test worker thread) the block is a no-op
    and only ^C interrupts.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)

    def handler(signum, _frame):
        raise KeyboardInterrupt(f"signal {signum}")

    signal.signal(signal.SIGTERM, handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _pool_worker_init() -> None:
    """Pool workers must not inherit the parent's interrupt handling.

    Ignoring SIGINT lets a terminal ^C (delivered to the whole process
    group) interrupt only the parent, which then drains and terminates the
    pool deliberately; restoring SIGTERM's default keeps that termination
    quiet.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


def trace_filename(scenario: str, replicate: int) -> str:
    """Canonical trace file name of one run (pure function of the task)."""
    return f"{scenario}_r{replicate}.trace.jsonl"


def _resolve_slo(name: str):
    """``"default"`` or a spec-file path -> :class:`~repro.obs.slo.SLOSpec`."""
    from ..obs.slo import DEFAULT_SLO, SLOSpec

    if name == "default":
        return DEFAULT_SLO
    return SLOSpec.load(name)


def _execute_task(task: RunTask) -> Dict:
    """Run one task in the current process (also the pool worker body)."""
    runner = get_runner(task.scenario.runner)
    consume_provenance()  # drop leftovers from any previous run
    observing = task.collect_obs or bool(task.trace_dir) or bool(task.slo_spec)
    tracer = EventTracer() if (task.trace_dir or task.slo_spec) else None
    registry = MetricsRegistry() if task.collect_obs else None
    profiler = PhaseProfiler() if task.collect_obs else None
    if observing:
        with observe(tracer=tracer, metrics=registry, profiler=profiler):
            metrics = dict(runner(task.scenario, task.seed))
    else:
        metrics = dict(runner(task.scenario, task.seed))
    record = {
        "scenario": task.scenario.name,
        "base_scenario": task.base_scenario or task.scenario.name,
        "policy": task.scenario.policy_name,
        # Federation columns: empty strings on the single-cluster path, so
        # federated and classic records stay byte-stable side by side.
        "routing": task.scenario.routing_name,
        "topology": task.scenario.topology_label,
        "replicate": task.replicate,
        "seed": task.seed,
        "runner": task.scenario.runner,
        "scale": task.scenario.scale,
        "metrics": metrics,
        # The unit's idempotency key: what --resume and the distributed
        # backend deduplicate against.  A pure function of the task, so it
        # never perturbs byte-identity across backends or worker counts.
        "unit": unit_key(task),
    }
    # Workload provenance (trace fingerprint, model parameters, transform
    # chain) published by the runner rides along in the persisted record.
    provenance = consume_provenance()
    if provenance is not None:
        record["provenance"] = provenance
    if registry is not None:
        # Deterministic: snapshots are pure functions of the simulation,
        # so they may live in the byte-stable run records.
        record["obs"] = registry.snapshot()
    if profiler is not None and len(profiler):
        # Wall-clock: the parent pops this out and aggregates it into
        # meta.json; it must never be persisted in runs.jsonl.
        record["_phase_seconds"] = profiler.snapshot()
    if tracer is not None and task.slo_spec:
        # Deterministic analytics over the in-memory trace: audits and a
        # timeline are pure functions of the event stream, so the flat SLO
        # verdict may live in the byte-stable run records.
        from ..obs.lifecycle import build_audits
        from ..obs.slo import evaluate_slo
        from ..obs.timeline import TimelineBuilder

        audits = build_audits(tracer.events)
        timeline = TimelineBuilder().build(tracer.events)
        record["slo"] = evaluate_slo(
            _resolve_slo(task.slo_spec), audits, timeline
        ).to_flat()
    if tracer is not None and task.trace_dir:
        directory = Path(task.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / trace_filename(task.scenario.name, task.replicate)
        path.write_text(tracer.to_jsonl(), encoding="utf-8")
    return record


class CampaignRunner:
    """Executes a campaign, optionally persisting into a result store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressFn] = None,
        collect_obs: bool = False,
        trace_dir: Optional[str] = None,
        slo_spec: Optional[str] = None,
    ):
        self.spec = spec
        self.store = store
        self.progress = progress
        self.collect_obs = collect_obs
        self.trace_dir = str(trace_dir) if trace_dir else ""
        self.slo_spec = str(slo_spec) if slo_spec else ""
        if self.slo_spec:
            _resolve_slo(self.slo_spec)  # fail fast on a bad spec

    def tasks(self) -> List[RunTask]:
        """The full grid, in canonical (scenario, policy, replicate) order.

        Seeds derive from the *base* scenario name, so with a policy matrix
        every policy variant of a scenario replays the same workload.
        """
        return [
            RunTask(
                scenario=variant,
                replicate=replicate,
                seed=derive_seed(self.spec.root_seed, base_name, replicate),
                base_scenario=base_name,
                collect_obs=self.collect_obs,
                trace_dir=self.trace_dir,
                slo_spec=self.slo_spec,
            )
            for variant, base_name in self.spec.expanded_scenarios()
            for replicate in range(self.spec.seeds)
        ]

    def run(
        self,
        workers: Optional[int] = None,
        append: bool = False,
        backend: str = "pool",
        resume: bool = False,
        dist=None,
    ) -> CampaignResult:
        """Execute every task and return (and optionally persist) the records.

        *workers* overrides the spec's worker count.  Results stream through
        the progress callback as they complete (arbitrary order), but the
        returned and persisted records are always canonically ordered --
        byte-identical across worker counts **and backends**.

        *backend* selects the execution tier: ``pool`` (the in-host
        multiprocessing pool) or ``dist`` (the coordinator/worker service of
        :mod:`repro.dist`; *dist* optionally carries its
        :class:`~repro.dist.coordinator.DistConfig`, and ``workers=0`` serves
        external workers only).  *resume* skips every run whose idempotency
        key already has a store row and implies ``append``.

        ``SIGINT``/``SIGTERM`` interrupt gracefully on both backends:
        in-flight runs drain, completed records flush to the store, and
        :class:`CampaignInterrupted` (carrying the partial result) is raised.
        """
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; known backends: {list(BACKEND_NAMES)}"
            )
        workers = self.spec.workers if workers is None else workers
        if workers <= 0 and not (backend == "dist" and workers == 0):
            raise ValueError("workers must be positive")
        tasks = self.tasks()

        completed_keys: Set[str] = set()
        if resume:
            append = True  # resumption always extends the existing rows
            if self.store is not None:
                completed_keys = self.store.completed_unit_keys(self.spec.name)

        started = time.perf_counter()
        interrupted = False
        skipped = 0
        dist_stats: Optional[Dict] = None
        with _sigterm_as_interrupt():
            if backend == "dist":
                records, skipped, dist_stats, interrupted = self._run_dist(
                    tasks, workers, completed_keys, dist
                )
            else:
                if completed_keys:
                    pending = [t for t in tasks if unit_key(t) not in completed_keys]
                    skipped = len(tasks) - len(pending)
                else:
                    pending = tasks
                workers = min(workers, len(pending)) or 1
                records, interrupted = self._run_pool(pending, workers)
        elapsed = time.perf_counter() - started

        order = {
            variant.name: i
            for i, (variant, _base) in enumerate(self.spec.expanded_scenarios())
        }
        records.sort(key=lambda r: (order[r["scenario"]], r["replicate"]))

        # Per-run wall-clock phase breakdowns are non-deterministic: pop
        # them off the records (they must never reach runs.jsonl) and
        # aggregate them into the campaign-level profiler for meta.json.
        profiler = PhaseProfiler()
        profiler.add("campaign.execute", elapsed, count=len(records) or 1)
        for record in records:
            phases = record.pop("_phase_seconds", None)
            if phases:
                profiler.merge(phases)

        store_path: Optional[str] = None
        if self.store is not None:
            # Time the run-file write through the store's own hook so the
            # breakdown in meta.json includes it (meta.json itself is then
            # rewritten with the final snapshot -- a cheap second write).
            with observe(profiler=profiler):
                self.store.save_campaign(self.spec, records, append=append)
            meta = {
                "workers": workers,
                "backend": backend,
                "elapsed_seconds": elapsed,
                "run_count": len(records),
                "interrupted": interrupted,
                "skipped": skipped,
                "finished_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                "phase_seconds": profiler.snapshot(),
            }
            if dist_stats is not None:
                # Runtime distribution counters are non-deterministic under
                # retries and kills; they belong in meta.json, never in the
                # byte-stable runs.jsonl.
                meta["dist"] = dist_stats
            store_path = str(
                self.store.save_campaign(self.spec, [], meta=meta, append=True)
            )

        result = CampaignResult(
            spec=self.spec,
            records=records,
            elapsed_seconds=elapsed,
            workers=workers,
            store_path=store_path,
            backend=backend,
            interrupted=interrupted,
            skipped=skipped,
            dist_stats=dist_stats,
        )
        if interrupted:
            raise CampaignInterrupted(result)
        return result

    # ------------------------------------------------------------------ #
    # Backends
    # ------------------------------------------------------------------ #
    def _run_pool(
        self, tasks: List[RunTask], workers: int
    ) -> Tuple[List[Dict], bool]:
        """The classic in-host backend: serial loop or multiprocessing pool.

        Returns ``(records, interrupted)``; on interrupt the records cover
        every run that completed before the interrupt arrived.
        """
        completed = 0
        interrupted = False
        records: List[Dict] = []
        if workers == 1:
            try:
                for task in tasks:
                    record = _execute_task(task)
                    records.append(record)
                    completed += 1
                    if self.progress is not None:
                        self.progress(completed, len(tasks), record)
            except KeyboardInterrupt:
                interrupted = True
        else:
            # Worker processes import this module afresh (under spawn) or
            # inherit it (under fork); either way the built-in runners are
            # registered by the module import above before tasks execute.
            with multiprocessing.Pool(
                processes=workers, initializer=_pool_worker_init
            ) as pool:
                try:
                    for record in pool.imap_unordered(
                        _execute_task, tasks, chunksize=1
                    ):
                        records.append(record)
                        completed += 1
                        if self.progress is not None:
                            self.progress(completed, len(tasks), record)
                except KeyboardInterrupt:
                    # The with-block exit terminates the pool; everything
                    # already collected is kept and flushed.
                    interrupted = True
        return records, interrupted

    def _run_dist(
        self,
        tasks: List[RunTask],
        workers: int,
        completed_keys: Set[str],
        dist,
    ) -> Tuple[List[Dict], int, Dict, bool]:
        """The distributed backend: a coordinator/worker run via repro.dist.

        Imported lazily so the campaign layer stays loadable without the
        distribution tier (and free of an import cycle: repro.dist imports
        this module for ``_execute_task``).
        """
        from ..dist.coordinator import Coordinator, DistConfig

        config = dist if dist is not None else DistConfig()
        coordinator = Coordinator(
            tasks, config, progress=self.progress, completed_keys=completed_keys
        )
        outcome = coordinator.run(workers)
        if outcome.failed and not outcome.interrupted:
            preview = ", ".join(outcome.failed[:3])
            raise RuntimeError(
                f"{len(outcome.failed)} campaign unit(s) failed terminally "
                f"after {config.max_attempts} attempt(s) each: {preview}"
            )
        return (
            outcome.records,
            len(outcome.skipped),
            dict(outcome.stats),
            outcome.interrupted,
        )
