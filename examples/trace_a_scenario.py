#!/usr/bin/env python
"""Trace one scenario and export a Chrome ``trace_event`` file.

The observability walk-through:

1. **instrument** -- install an :class:`EventTracer`, a
   :class:`MetricsRegistry` and a :class:`PhaseProfiler` with one
   ``observe()`` context manager; everything that runs inside is traced;
2. **run** the fig9 scenario (spontaneous-update overcommit sweep) exactly
   as a campaign would, at its canonical derived seed;
3. **inspect** the captured stream: per-event-type counts, headline
   counters, wall-clock phase breakdown;
4. **export** the trace as Chrome ``trace_event`` JSON -- drag it into
   ``chrome://tracing`` or https://ui.perfetto.dev to see every engine
   dispatch and scheduler decision on the simulated timeline.

The same trace in byte-stable JSONL form (for diffing two runs) comes from
``tracer.to_jsonl()`` or ``python -m repro obs export --format jsonl``.

Run with::

    PYTHONPATH=src python examples/trace_a_scenario.py
"""
from __future__ import annotations

from pathlib import Path

from repro.campaign import builtin  # noqa: F401  (registers the scenarios)
from repro.campaign.registry import builtin_scenarios, consume_provenance, get_runner
from repro.metrics import format_table
from repro.obs import EventTracer, MetricsRegistry, PhaseProfiler, observe
from repro.sim.randomness import derive_seed

SCENARIO = "fig9"
OUT = Path("fig9.trace.json")


def main() -> None:
    # --- 1/2. instrument + run -------------------------------------------
    spec = builtin_scenarios()[SCENARIO]
    seed = derive_seed(0, SCENARIO, 0)  # the campaign's replicate-0 seed
    tracer, registry, profiler = EventTracer(), MetricsRegistry(), PhaseProfiler()
    consume_provenance()
    with observe(tracer=tracer, metrics=registry, profiler=profiler):
        metrics = dict(get_runner(spec.runner)(spec, seed))
    consume_provenance()
    print(f"ran {SCENARIO!r} at seed {seed}: {len(tracer)} trace events")

    # --- 3. inspect -------------------------------------------------------
    print("\nevents by category/name:")
    rows = [(c, n, count) for (c, n), count in sorted(tracer.count_by().items())]
    print(format_table(["category", "event", "count"], rows))

    print("\nheadline counters:")
    headline = [
        (name, value)
        for name, value in registry.rows()
        if name in (
            "engine.events_dispatched",
            "scheduler.passes",
            "scheduler.fit_attempts",
            "scheduler.to_start",
            "rms.passes",
        )
    ]
    print(format_table(["metric", "value"], headline))

    print("\nwall-clock phases:")
    phase_rows = [
        (phase, f"{data['seconds'] * 1e3:.1f} ms", int(data["count"]))
        for phase, data in sorted(profiler.snapshot().items())
    ]
    print(format_table(["phase", "total", "count"], phase_rows))

    # --- 4. export --------------------------------------------------------
    OUT.write_text(
        tracer.to_chrome(label=f"repro {SCENARIO} seed={seed}"), encoding="utf-8"
    )
    print(f"\nChrome trace written to {OUT} -- open it in chrome://tracing")
    print(f"simulation metrics captured alongside the trace: {len(metrics)}")


if __name__ == "__main__":
    main()
