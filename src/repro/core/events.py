"""Protocol message records exchanged between the RMS and applications.

The CooRMv2 protocol (paper Section 3.3 and Figure 8) consists of a small set
of messages: an application *connects*, submits *request* and *done*
messages, and the RMS answers with *view updates* and *start notifications*.
These dataclasses record each message so that simulations produce an
inspectable trace (tests replay the Figure 8 interaction against it) and so
the RMS event log doubles as documentation of what happened.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .types import NodeId, Time

__all__ = [
    "ProtocolEvent",
    "Connected",
    "Disconnected",
    "RequestSubmitted",
    "RequestDone",
    "RequestStarted",
    "RequestExpired",
    "ViewsPushed",
    "SessionKilled",
    "EventLog",
]


@dataclass(frozen=True)
class ProtocolEvent:
    """Base class of every protocol trace record."""

    time: Time
    app_id: str

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Connected(ProtocolEvent):
    """An application opened a session with the RMS."""


@dataclass(frozen=True)
class Disconnected(ProtocolEvent):
    """An application closed its session normally."""


@dataclass(frozen=True)
class RequestSubmitted(ProtocolEvent):
    """The application called ``request()``."""

    request_id: int
    rtype: str
    node_count: int
    duration: Time


@dataclass(frozen=True)
class RequestDone(ProtocolEvent):
    """The application called ``done()`` on a request."""

    request_id: int
    released_node_ids: Tuple[NodeId, ...] = ()


@dataclass(frozen=True)
class RequestStarted(ProtocolEvent):
    """The RMS started a request (``startNotify``)."""

    request_id: int
    node_ids: Tuple[NodeId, ...] = ()


@dataclass(frozen=True)
class RequestExpired(ProtocolEvent):
    """A started request reached the end of its duration."""

    request_id: int


@dataclass(frozen=True)
class ViewsPushed(ProtocolEvent):
    """The RMS pushed fresh views to the application."""

    non_preemptive_total: float = 0.0
    preemptive_total: float = 0.0


@dataclass(frozen=True)
class SessionKilled(ProtocolEvent):
    """The RMS terminated the session after a protocol violation."""

    reason: str = ""


class EventLog:
    """Append-only trace of protocol events, with simple query helpers."""

    def __init__(self) -> None:
        self._events: list = []

    def record(self, event: ProtocolEvent) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def all(self) -> Tuple[ProtocolEvent, ...]:
        return tuple(self._events)

    def of_kind(self, kind: type) -> Tuple[ProtocolEvent, ...]:
        """All events of the given class."""
        return tuple(e for e in self._events if isinstance(e, kind))

    def for_app(self, app_id: str) -> Tuple[ProtocolEvent, ...]:
        """All events concerning one application."""
        return tuple(e for e in self._events if e.app_id == app_id)

    def last(self, kind: Optional[type] = None) -> Optional[ProtocolEvent]:
        """Most recent event, optionally restricted to one kind."""
        for e in reversed(self._events):
            if kind is None or isinstance(e, kind):
                return e
        return None
