"""Synthetic workload generation and trace I/O."""
from .generator import RigidJobSpec, WorkloadParameters, generate_rigid_workload
from .trace import dump_trace, dumps_trace, load_trace, loads_trace

__all__ = [
    "RigidJobSpec",
    "WorkloadParameters",
    "generate_rigid_workload",
    "dump_trace",
    "dumps_trace",
    "load_trace",
    "loads_trace",
]
