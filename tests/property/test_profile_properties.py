"""Property-based tests of the step-function profile algebra.

The profile is the data structure every scheduling decision rests on, so its
algebraic invariants are checked with hypothesis-generated inputs rather than
hand-picked examples.
"""
from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.core import StepFunction


@st.composite
def step_functions(draw, max_value: int = 64, max_segments: int = 6, max_time: float = 1000.0):
    """Random non-negative integer-valued profiles with a few segments."""
    n_segments = draw(st.integers(min_value=1, max_value=max_segments))
    durations = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=max_time, allow_nan=False),
            min_size=n_segments,
            max_size=n_segments,
        )
    )
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_value),
            min_size=n_segments,
            max_size=n_segments,
        )
    )
    return StepFunction.from_duration_pairs(list(zip(durations, values)))


times = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)


class TestAlgebraInvariants:
    @given(a=step_functions(), b=step_functions(), t=times)
    def test_addition_is_pointwise(self, a, b, t):
        assert (a + b).value_at(t) == a.value_at(t) + b.value_at(t)

    @given(a=step_functions(), b=step_functions(), t=times)
    def test_subtraction_inverts_addition(self, a, b, t):
        assert ((a + b) - b).value_at(t) == a.value_at(t)

    @given(a=step_functions(), b=step_functions(), t=times)
    def test_union_dominates_both_operands(self, a, b, t):
        u = a.maximum(b)
        assert u.value_at(t) >= a.value_at(t)
        assert u.value_at(t) >= b.value_at(t)
        assert u.value_at(t) == max(a.value_at(t), b.value_at(t))

    @given(a=step_functions(), t=times)
    def test_clip_low_never_below_floor(self, a, t):
        shifted = a.shift_value(-10)
        assert shifted.clip_low(0.0).value_at(t) >= 0.0

    @given(a=step_functions())
    def test_min_over_full_horizon_equals_min_value(self, a):
        last = a.times[-1] + 1.0
        assert a.min_over(0.0, last + 1.0) == a.min_value()

    @given(a=step_functions(), b=step_functions())
    def test_integral_is_additive(self, a, b):
        horizon = max(a.times[-1], b.times[-1]) + 10.0
        total = (a + b).integrate(0, horizon)
        assert math.isclose(
            total, a.integrate(0, horizon) + b.integrate(0, horizon), rel_tol=1e-9, abs_tol=1e-6
        )

    @given(a=step_functions())
    def test_duration_pair_roundtrip(self, a):
        horizon = a.times[-1] + 5.0
        rebuilt = StepFunction.from_duration_pairs(a.to_duration_pairs(horizon))
        # Probe strictly inside each segment: from_duration_pairs rebuilds
        # the boundary times by summing durations, so a boundary may land a
        # float ulp away from the original and the value *at* it is
        # legitimately ambiguous -- segment values, however, must survive.
        probes = [horizon / 2]
        for start, end, _value in a.segments():
            if start < horizon:
                probes.append(start + (min(end, horizon) - start) / 2.0)
        for t in probes:
            assert rebuilt.value_at(t) == a.value_at(t)


class TestFindHoleInvariants:
    @given(
        a=step_functions(),
        n=st.integers(min_value=1, max_value=32),
        duration=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
        earliest=st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
    )
    def test_hole_is_feasible_and_not_too_early(self, a, n, duration, earliest):
        start = a.find_hole(n, duration, earliest)
        if math.isinf(start):
            # Infeasible: the profile must drop below n somewhere after any
            # candidate start, in particular its eventual constant tail must
            # be below n.
            assert a.values[-1] < n
        else:
            assert start >= earliest
            assert a.min_over(start, start + duration) >= n

    @given(
        a=step_functions(),
        n=st.integers(min_value=1, max_value=32),
        duration=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    )
    def test_hole_is_earliest_among_breakpoints(self, a, n, duration):
        start = a.find_hole(n, duration, 0.0)
        if math.isinf(start):
            return
        # No strictly earlier breakpoint (or time zero) admits the rectangle.
        for candidate in {t for t in [0.0, *a.times] if t < start}:
            assert a.min_over(candidate, candidate + duration) < n

    @given(
        a=step_functions(),
        n=st.integers(min_value=0, max_value=32),
        start=times,
        duration=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    )
    def test_alloc_limit_bounds(self, a, n, start, duration):
        granted = a.alloc_limit(start, duration, n)
        assert 0 <= granted <= n
        if duration > 0:
            assert granted <= a.min_over(start, start + duration) + 1e-9
