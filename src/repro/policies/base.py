"""Stage protocols of the pluggable scheduling-policy subsystem.

A :class:`~repro.policies.policy.SchedulingPolicy` is the composition of
three independent stages, each with its own protocol:

* an :class:`OrderingStrategy` decides in which order the applications'
  pending pre-allocations and non-preemptible requests are considered
  (the queue discipline);
* a :class:`BackfillStrategy` decides how pending requests are fitted into
  the availability views (conservative reservations for everyone, or EASY's
  single head reservation with aggressive backfilling);
* a :class:`SharingStrategy` decides how the resources left over after the
  non-preemptive pass are shared among the preemptible requests.

The paper's Algorithm 4 is exactly the composition FCFS ordering +
conservative backfilling + equi-partitioning with filling; every other
registered policy swaps one or more stages.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..core.request_set import ApplicationRequests, RequestSet
from ..core.types import ClusterId, Time
from ..core.view import View

__all__ = [
    "SchedulingContext",
    "OrderingStrategy",
    "BackfillStrategy",
    "SharingStrategy",
]


@dataclass(frozen=True)
class SchedulingContext:
    """Everything a policy stage may consult during one scheduling pass."""

    #: Time of the pass.
    now: Time
    #: Cluster id -> total node count of the platform.
    capacity: Mapping[ClusterId, int] = field(default_factory=dict)
    #: Application id -> node-seconds consumed so far (from the accountant).
    #: Only populated when the active ordering declares ``needs_usage``.
    usage: Mapping[str, float] = field(default_factory=dict)


class OrderingStrategy:
    """Queue discipline: the order in which applications are served.

    Ordering affects only the non-preemptive pass (pre-allocations and
    non-preemptible requests); preemptible sharing looks at all applications
    at once and is governed by the :class:`SharingStrategy`.
    """

    #: Registry name of the strategy.
    name: str = "?"
    #: True when :meth:`order` wants accumulated per-application usage in
    #: the context (the RMS then queries its accountant before each pass).
    needs_usage: bool = False

    def order(
        self,
        applications: Mapping[str, ApplicationRequests],
        ctx: SchedulingContext,
    ) -> List[str]:
        """Return every key of *applications* exactly once, in serving order."""
        raise NotImplementedError

    def order_jobs(self, jobs: Sequence) -> List:
        """Order rigid batch jobs (objects with ``submit_time`` / ``duration``
        / ``node_count``) for the classical batch baseline.  The default is
        arrival order; subclasses refine it with their queue discipline."""
        return sorted(jobs, key=lambda job: job.submit_time)


class BackfillStrategy:
    """How pending requests are fitted into an availability view."""

    name: str = "?"

    def fit_pending(
        self,
        requests: RequestSet,
        space: View,
        now: Time,
        head_app: bool,
    ) -> View:
        """Fit the pending requests of one application into *space*.

        Mutates the requests' scheduling attributes (like
        :func:`repro.core.fit.fit`) and returns the occupation view the
        placed requests generate.  *head_app* is True for the first
        application in queue order that still has pending work -- EASY-style
        strategies reserve resources only for it.
        """
        raise NotImplementedError

    def make_queue(self, node_count: int):
        """A standalone rigid-job queue implementing this backfill discipline
        (used by :mod:`repro.baselines.batch_fcfs`)."""
        raise NotImplementedError


class SharingStrategy:
    """How leftover resources are shared among preemptible requests."""

    name: str = "?"

    def share(
        self,
        preemptible_sets: Mapping[str, RequestSet],
        available: View,
        now: Time,
    ) -> Dict[str, View]:
        """Compute the per-application preemptive views and (re-)schedule the
        preemptible requests against them (Algorithm 3's contract)."""
        raise NotImplementedError
