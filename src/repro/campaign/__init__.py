"""Campaign orchestration: declarative scenario sweeps at scale.

This subsystem turns the one-off figure scripts of
:mod:`repro.experiments` into declarative, parallel, persistent experiment
campaigns:

* :mod:`repro.campaign.spec` -- :class:`ScenarioSpec` / :class:`CampaignSpec`
  dataclasses that round-trip through JSON;
* :mod:`repro.campaign.registry` -- named scenario runners and built-in
  scenario definitions;
* :mod:`repro.campaign.builtin` -- the paper's figures and mixed workloads,
  registered as runnable scenarios;
* :mod:`repro.campaign.runner` -- deterministic multi-process execution of
  the scenario x seed grid;
* :mod:`repro.campaign.store` -- JSON-lines result store with summary and
  comparison utilities;
* :mod:`repro.campaign.cli` -- the ``python -m repro campaign`` entry point.

Quick start::

    from repro.campaign import CampaignRunner, CampaignSpec, ResultStore
    from repro.campaign import resolve_scenarios

    spec = CampaignSpec(
        name="demo",
        scenarios=tuple(resolve_scenarios(["fig9", "fig10"])),
        seeds=4,
        workers=4,
    )
    result = CampaignRunner(spec, store=ResultStore("results")).run()
"""
from . import builtin  # noqa: F401  (registers built-in runners and scenarios)
from .registry import (
    builtin_scenarios,
    get_runner,
    register_runner,
    register_scenario,
    resolve_scenarios,
    runner_names,
)
from .runner import CampaignResult, CampaignRunner, RunTask
from ..traces.source import TraceSource
from .spec import (
    CampaignSpec,
    PlatformSpec,
    RmsSpec,
    ScenarioSpec,
    WorkloadSpec,
    resolve_scale,
)
from .store import CampaignInfo, DEFAULT_RESULTS_DIR, ResultStore

__all__ = [
    "CampaignInfo",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "DEFAULT_RESULTS_DIR",
    "PlatformSpec",
    "ResultStore",
    "RmsSpec",
    "RunTask",
    "ScenarioSpec",
    "TraceSource",
    "WorkloadSpec",
    "builtin_scenarios",
    "get_runner",
    "register_runner",
    "register_scenario",
    "resolve_scale",
    "resolve_scenarios",
    "runner_names",
]
