"""Per-job lifecycle audits derived from the deterministic event trace.

Every application the RMS serves leaves an ``rms``-category lifecycle trail
(connect, submit, start, finish, disconnect/kill).  :func:`build_audits`
replays that trail into one :class:`JobAudit` per application: submit and
start times, queue wait, turnaround, (bounded) slowdown, grow/shrink counts
of the live allocation, integrated node-seconds, and a breakdown of the
queue wait by what the scheduler was doing with the job -- all pure
functions of the trace, hence byte-identical at any campaign worker count.

The wait breakdown attributes each interval between the job's ``scheduler``
``fit`` events (before its first start) to the outcome the last fit
reported: ``deferred`` (left unplaced), ``reserved`` (given a future
reservation) or ``held`` (placed but waiting for the start pass);
``pre_sched`` covers submit until the scheduler first considered the job.
"""
from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from .tracer import TraceEvent

__all__ = [
    "JobAudit",
    "build_audits",
    "summarize_audits",
    "audits_to_json",
    "percentile",
]

#: Bounded-slowdown runtime floor, seconds (the classic tau = 10 s).
BOUNDED_SLOWDOWN_TAU = 10.0

#: Queue-wait breakdown stages, in reporting order.
WAIT_STAGES = ("pre_sched", "deferred", "reserved", "held")


@dataclass
class JobAudit:
    """Lifecycle audit of one application (one "job") in a traced run."""

    app: str
    submit_ts: float
    first_start_ts: Optional[float] = None
    end_ts: Optional[float] = None
    killed: bool = False
    #: Requests submitted / started / finished over the whole lifetime.
    submitted_requests: int = 0
    started_requests: int = 0
    finished_requests: int = 0
    #: Allocation increases / decreases after the first start.
    grows: int = 0
    shrinks: int = 0
    #: Integral of the live allocation over sim time.
    node_seconds: float = 0.0
    #: Queue-wait seconds attributed to each scheduler stage (see module doc).
    wait_breakdown: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in WAIT_STAGES}
    )

    # ------------------------------------------------------------------ #
    @property
    def queue_wait(self) -> Optional[float]:
        """Submit to first start, seconds; None when the job never started."""
        if self.first_start_ts is None:
            return None
        return self.first_start_ts - self.submit_ts

    @property
    def runtime(self) -> Optional[float]:
        if self.first_start_ts is None or self.end_ts is None:
            return None
        return self.end_ts - self.first_start_ts

    @property
    def turnaround(self) -> Optional[float]:
        if self.end_ts is None:
            return None
        return self.end_ts - self.submit_ts

    @property
    def slowdown(self) -> Optional[float]:
        """Turnaround over runtime (stretch); None until the job finished."""
        runtime, turnaround = self.runtime, self.turnaround
        if runtime is None or turnaround is None or runtime <= 0:
            return None
        return turnaround / runtime

    @property
    def bounded_slowdown(self) -> Optional[float]:
        """max(1, turnaround / max(runtime, tau)) -- robust to tiny jobs."""
        runtime, turnaround = self.runtime, self.turnaround
        if runtime is None or turnaround is None:
            return None
        return max(1.0, turnaround / max(runtime, BOUNDED_SLOWDOWN_TAU))

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        def clean(value: Optional[float]) -> Optional[float]:
            if value is None or not math.isfinite(value):
                return None
            return float(value)

        return {
            "app": self.app,
            "submit_ts": self.submit_ts,
            "first_start_ts": clean(self.first_start_ts),
            "end_ts": clean(self.end_ts),
            "killed": self.killed,
            "submitted_requests": self.submitted_requests,
            "started_requests": self.started_requests,
            "finished_requests": self.finished_requests,
            "grows": self.grows,
            "shrinks": self.shrinks,
            "node_seconds": round(self.node_seconds, 6),
            "queue_wait": clean(self.queue_wait),
            "runtime": clean(self.runtime),
            "turnaround": clean(self.turnaround),
            "slowdown": clean(self.slowdown),
            "bounded_slowdown": clean(self.bounded_slowdown),
            "wait_breakdown": {
                stage: round(self.wait_breakdown.get(stage, 0.0), 6)
                for stage in WAIT_STAGES
            },
        }


class _JobTracker:
    """Mutable per-app state while replaying the stream."""

    __slots__ = ("audit", "alloc", "alloc_since", "fit_stage", "fit_since", "ended")

    def __init__(self, audit: JobAudit):
        self.audit = audit
        self.alloc = 0.0
        self.alloc_since = audit.submit_ts
        #: Pending wait-breakdown attribution: stage name + interval start.
        self.fit_stage: Optional[str] = "pre_sched"
        self.fit_since: float = audit.submit_ts
        self.ended = False

    def integrate_to(self, ts: float) -> None:
        if self.alloc > 0 and ts > self.alloc_since:
            self.audit.node_seconds += self.alloc * (ts - self.alloc_since)
        self.alloc_since = ts

    def change_alloc(self, ts: float, delta: float) -> None:
        self.integrate_to(ts)
        before = self.alloc
        self.alloc = max(0.0, self.alloc + delta)
        if self.audit.first_start_ts is not None and ts > self.audit.first_start_ts:
            if self.alloc > before:
                self.audit.grows += 1
            elif self.alloc < before and self.alloc > 0:
                self.audit.shrinks += 1

    def attribute_wait(self, ts: float, next_stage: Optional[str]) -> None:
        """Close the current wait interval and open the next one."""
        if self.fit_stage is not None and ts > self.fit_since:
            breakdown = self.audit.wait_breakdown
            breakdown[self.fit_stage] = breakdown.get(self.fit_stage, 0.0) + (
                ts - self.fit_since
            )
        self.fit_stage = next_stage
        self.fit_since = ts


def _classify_fit(args: Mapping[str, object]) -> str:
    """Wait stage implied by one scheduler ``fit`` outcome for the app."""
    if float(args.get("deferred", 0) or 0) > 0:
        return "deferred"
    if float(args.get("reserved", 0) or 0) > 0:
        return "reserved"
    return "held"


def build_audits(events: Iterable[TraceEvent]) -> List[JobAudit]:
    """One :class:`JobAudit` per application seen in *events* (sorted by app).

    Applications are keyed by their deterministic RMS ids; jobs that never
    disconnected have their ``end_ts`` clamped to the last event time of the
    stream (open-ended sessions are normal for scenario drivers that stop
    the simulation rather than tearing sessions down).
    """
    events = list(events)
    trackers: Dict[str, _JobTracker] = {}
    last_ts = events[-1].ts if events else 0.0

    def tracker_of(app: str, ts: float) -> _JobTracker:
        tracked = trackers.get(app)
        if tracked is None:
            tracked = trackers[app] = _JobTracker(JobAudit(app=app, submit_ts=ts))
        return tracked

    for e in events:
        if e.cat == "scheduler" and e.name == "fit":
            app = str(e.args.get("app", ""))
            tracked = trackers.get(app)
            if tracked is not None and tracked.audit.first_start_ts is None:
                tracked.attribute_wait(e.ts, _classify_fit(e.args))
            continue
        if e.cat != "rms":
            continue
        app = str(e.args.get("app", ""))
        if not app:
            continue
        if e.name == "connect":
            tracker_of(app, e.ts)
        elif e.name == "submit":
            tracker_of(app, e.ts).audit.submitted_requests += 1
        elif e.name == "start":
            tracked = tracker_of(app, e.ts)
            tracked.audit.started_requests += 1
            if tracked.audit.first_start_ts is None:
                tracked.audit.first_start_ts = e.ts
                tracked.attribute_wait(e.ts, None)
            tracked.change_alloc(e.ts, float(e.args.get("nodes", 0) or 0))
        elif e.name == "finish":
            tracked = tracker_of(app, e.ts)
            tracked.audit.finished_requests += 1
            tracked.change_alloc(e.ts, -float(e.args.get("nodes", 0) or 0))
        elif e.name in ("disconnect", "kill"):
            tracked = tracker_of(app, e.ts)
            if not tracked.ended:
                tracked.integrate_to(e.ts)
                tracked.audit.end_ts = e.ts
                tracked.audit.killed = e.name == "kill"
                if tracked.audit.first_start_ts is None:
                    tracked.attribute_wait(e.ts, None)
                tracked.ended = True

    audits: List[JobAudit] = []
    for app in sorted(trackers):
        tracked = trackers[app]
        if not tracked.ended:
            tracked.integrate_to(last_ts)
            tracked.audit.end_ts = last_ts
            if tracked.audit.first_start_ts is None:
                tracked.attribute_wait(last_ts, None)
        audits.append(tracked.audit)
    return audits


def percentile(values: List[float], pct: float) -> float:
    """Deterministic nearest-rank percentile (pct in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if pct <= 0:
        return ordered[0]
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[min(len(ordered), max(1, rank)) - 1]


def summarize_audits(audits: List[JobAudit]) -> Dict[str, float]:
    """Aggregate statistics over a list of audits (flat, JSON-safe)."""
    waits = [a.queue_wait for a in audits if a.queue_wait is not None]
    slowdowns = [a.bounded_slowdown for a in audits if a.bounded_slowdown is not None]
    breakdown_totals = {stage: 0.0 for stage in WAIT_STAGES}
    for audit in audits:
        for stage in WAIT_STAGES:
            breakdown_totals[stage] += audit.wait_breakdown.get(stage, 0.0)
    summary: Dict[str, float] = {
        "jobs": float(len(audits)),
        "started": float(sum(1 for a in audits if a.first_start_ts is not None)),
        "killed": float(sum(1 for a in audits if a.killed)),
        "grows": float(sum(a.grows for a in audits)),
        "shrinks": float(sum(a.shrinks for a in audits)),
        "node_seconds": round(sum(a.node_seconds for a in audits), 6),
        "wait_mean": round(sum(waits) / len(waits), 6) if waits else 0.0,
        "wait_p50": round(percentile(waits, 50.0), 6),
        "wait_p95": round(percentile(waits, 95.0), 6),
        "wait_max": round(max(waits), 6) if waits else 0.0,
        "bounded_slowdown_mean": (
            round(sum(slowdowns) / len(slowdowns), 6) if slowdowns else 0.0
        ),
        "bounded_slowdown_p95": round(percentile(slowdowns, 95.0), 6),
        "bounded_slowdown_max": round(max(slowdowns), 6) if slowdowns else 0.0,
    }
    for stage in WAIT_STAGES:
        summary[f"wait_{stage}_seconds"] = round(breakdown_totals[stage], 6)
    return summary


def audits_to_json(audits: List[JobAudit]) -> str:
    """Canonical JSON of a full audit list; the golden-digest format."""
    return json.dumps(
        [a.to_dict() for a in audits], sort_keys=True, allow_nan=False
    )
