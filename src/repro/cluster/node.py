"""Compute nodes of the simulated platform.

The paper assumes space-shared, homogeneous clusters: a node is either free,
allocated exclusively to one request, or powered down to save energy
(Section 5.3 mentions that resources released early "can be put in an energy
saving mode").
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..core.errors import AllocationError
from ..core.types import NodeId, Time

__all__ = ["NodeState", "Node"]


class NodeState(enum.Enum):
    """Operational state of a node."""

    FREE = "free"
    ALLOCATED = "allocated"
    POWERED_DOWN = "powered-down"


@dataclass
class Node:
    """One compute node, identified by an integer unique within its cluster."""

    node_id: NodeId
    cluster_id: str
    state: NodeState = NodeState.FREE
    #: Application currently holding the node, if any.
    owner_app: Optional[str] = None
    #: Request currently holding the node, if any.
    owner_request: Optional[int] = None
    #: Accumulated busy node-seconds (for accounting/energy reports).
    busy_seconds: float = 0.0
    #: Time of the last state change (used to integrate busy time).
    last_transition: Time = 0.0

    def allocate(self, app_id: str, request_id: int, now: Time) -> None:
        """Hand the node to an application; it must currently be free."""
        if self.state is NodeState.ALLOCATED:
            raise AllocationError(
                f"node {self.cluster_id}/{self.node_id} is already allocated "
                f"to {self.owner_app!r}"
            )
        self._accumulate(now)
        self.state = NodeState.ALLOCATED
        self.owner_app = app_id
        self.owner_request = request_id
        self.last_transition = now

    def release(self, now: Time) -> None:
        """Return the node to the free pool."""
        if self.state is not NodeState.ALLOCATED:
            raise AllocationError(
                f"node {self.cluster_id}/{self.node_id} is not allocated"
            )
        self._accumulate(now)
        self.state = NodeState.FREE
        self.owner_app = None
        self.owner_request = None
        self.last_transition = now

    def power_down(self, now: Time) -> None:
        """Put a free node into the energy-saving state."""
        if self.state is NodeState.ALLOCATED:
            raise AllocationError("cannot power down an allocated node")
        self._accumulate(now)
        self.state = NodeState.POWERED_DOWN
        self.last_transition = now

    def power_up(self, now: Time) -> None:
        """Wake a powered-down node."""
        if self.state is not NodeState.POWERED_DOWN:
            return
        self._accumulate(now)
        self.state = NodeState.FREE
        self.last_transition = now

    def is_free(self) -> bool:
        return self.state is NodeState.FREE

    def _accumulate(self, now: Time) -> None:
        if self.state is NodeState.ALLOCATED and now > self.last_transition:
            self.busy_seconds += now - self.last_transition

    def __repr__(self) -> str:
        owner = f" app={self.owner_app}" if self.owner_app else ""
        return f"Node({self.cluster_id}/{self.node_id} {self.state.value}{owner})"
