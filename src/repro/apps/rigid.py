"""Rigid applications (paper Section 4).

A rigid application "sends a single non-preemptible request of the
user-submitted node-count and duration.  Since the application does not
adapt, it ignores its views."  This is the classical batch job and serves as
a compatibility check: CooRMv2 must still schedule plain rigid workloads.
"""
from __future__ import annotations

import math
from typing import FrozenSet, Optional

from ..core.request import Request
from ..core.types import ClusterId, NodeId, RequestType, Time
from .base import BaseApplication

__all__ = ["RigidApplication"]


class RigidApplication(BaseApplication):
    """A classical rigid batch job."""

    def __init__(
        self,
        name: str,
        node_count: int,
        duration: Time,
        cluster_id: ClusterId = "cluster0",
    ):
        super().__init__(name, cluster_id)
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        if duration <= 0 or math.isinf(duration):
            raise ValueError("duration must be positive and finite")
        self.node_count = int(node_count)
        self.duration = float(duration)
        self.request: Optional[Request] = None
        self.start_time: Time = math.nan
        self._submitted = False

    # ------------------------------------------------------------------ #
    def on_views(self, non_preemptive, preemptive) -> None:
        # Rigid applications ignore their views, but we must submit the
        # single request once the session is open; the first view push is the
        # natural hook for that.
        super().on_views(non_preemptive, preemptive)
        if not self._submitted:
            self._submitted = True
            self.request = self.submit(
                node_count=self.node_count,
                duration=self.duration,
                rtype=RequestType.NON_PREEMPTIBLE,
            )

    def on_start(self, request: Request, node_ids: FrozenSet[NodeId]) -> None:
        if request is self.request:
            self.start_time = self.now
            # The job runs to completion; completion is the request expiring.
            self.rms.simulator.schedule(self.duration, self._complete)

    def _complete(self) -> None:
        if self.finished() or self.killed:
            return
        if self.request is not None and not self.request.finished():
            self.done(self.request)
        self.finish()

    # ------------------------------------------------------------------ #
    def wait_time(self) -> float:
        """Time spent waiting in the queue before the allocation started."""
        if math.isnan(self.start_time):
            return math.nan
        return self.start_time - self.connected_at
