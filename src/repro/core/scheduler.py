"""The main CooRMv2 scheduling algorithm (paper Algorithm 4).

Given the three request sets of every connected application (in connection
order) and the platform capacity, a scheduling pass

1. subtracts the resources held by started pre-allocations from the
   non-preemptible availability and the resources held by started
   non-preemptible requests from the preemptible availability;
2. for every application in connection order, computes its **non-preemptive
   view** (its own pre-allocated space plus the globally free space), fits
   its pending pre-allocations, then fits its pending non-preemptible
   requests inside its pre-allocated space;
3. equi-partitions the remaining resources among the preemptible requests of
   all applications (:func:`~repro.core.eqschedule.eq_schedule`), producing
   the per-application **preemptive views**;
4. reports which requests must start now.

Processing the applications in connection order and consuming the
availability view after each one yields Conservative Back-Filling of the
pre-allocations, as the paper prescribes.

One deliberate extension over the pseudo-code: pending non-preemptible
requests that do not fit inside the application's pre-allocations are fitted
into the globally free non-preemptible space instead, and that overflow is
charged against it.  This is the paper's "implicitly wrapped in
pre-allocations of the same size" rule (Section 3.2) and is what lets rigid
and moldable applications -- which never send pre-allocations -- be scheduled
at all.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from .eqschedule import eq_schedule
from .fit import fit
from .request import Request
from .request_set import ApplicationRequests
from .toview import to_view
from .types import ClusterId, Time
from .view import View

__all__ = ["ScheduleResult", "Scheduler"]


@dataclass
class ScheduleResult:
    """Outcome of one scheduling pass."""

    #: Application id -> non-preemptive view (pre-allocations + free space).
    non_preemptive_views: Dict[str, View] = field(default_factory=dict)
    #: Application id -> preemptive view (equi-partitioned remainder).
    preemptive_views: Dict[str, View] = field(default_factory=dict)
    #: Requests whose computed start time is not later than "now" and that
    #: have not been started yet; the RMS layer starts them and binds node IDs.
    to_start: List[Request] = field(default_factory=list)
    #: Time at which the pass ran.
    now: Time = 0.0


class Scheduler:
    """Stateless scheduling engine implementing Algorithm 4.

    Parameters
    ----------
    capacity:
        Mapping of cluster id to total node count of that cluster.
    strict_equipartition:
        When True, preemptible resources are shared with the *strict*
        equi-partitioning baseline instead of CooRMv2's
        equi-partitioning-with-filling (used for the Figure 11 comparison).
    """

    def __init__(self, capacity: Mapping[ClusterId, int], strict_equipartition: bool = False):
        if not capacity:
            raise ValueError("the platform needs at least one cluster")
        for cid, n in capacity.items():
            if n <= 0:
                raise ValueError(f"cluster {cid!r} must have a positive node count")
        self.capacity: Dict[ClusterId, int] = dict(capacity)
        self.strict_equipartition = strict_equipartition

    # ------------------------------------------------------------------ #
    def full_view(self) -> View:
        """A view offering every node of every cluster forever."""
        return View.constant(self.capacity)

    def schedule(
        self,
        applications: Mapping[str, ApplicationRequests],
        now: Time,
    ) -> ScheduleResult:
        """Run one scheduling pass over *applications* (in connection order)."""
        result = ScheduleResult(now=now)

        # Line 1-2: scratch views start with the whole platform.
        available_non_preemptible = self.full_view()
        available_preemptible = self.full_view()

        started_pa_occ: Dict[str, View] = {}
        started_np_occ: Dict[str, View] = {}

        # Lines 3-5: subtract resources held by started requests.
        for app_id, requests in applications.items():
            pa_occ = to_view(requests.preallocations)
            np_occ = to_view(requests.non_preemptible)
            started_pa_occ[app_id] = pa_occ
            started_np_occ[app_id] = np_occ
            available_non_preemptible = available_non_preemptible - pa_occ
            available_preemptible = available_preemptible - np_occ
            # Started non-preemptible requests living outside any
            # pre-allocation (implicit wrapping) also consume
            # non-preemptible space.
            overflow_started = (np_occ - pa_occ).clip_low(0.0)
            if not overflow_started.is_zero():
                available_non_preemptible = available_non_preemptible - overflow_started

        # Lines 6-11: per-application pass, in connection order.
        for app_id, requests in applications.items():
            pa_occ = started_pa_occ[app_id]
            np_occ = started_np_occ[app_id]

            # Line 7: the application's non-preemptive view.
            view_np = (pa_occ + available_non_preemptible).clip_low(0.0)
            result.non_preemptive_views[app_id] = view_np

            # Line 8: fit pending pre-allocations into that view.
            occ_pending_pa = fit(requests.preallocations, view_np, now)

            # Line 9: fit pending non-preemptible requests inside the
            # application's pre-allocated space (started + newly placed).
            # Applications that never sent a pre-allocation (rigid, moldable,
            # malleable minima) get the "implicit wrapping" treatment instead:
            # their non-preemptible requests are fitted into the globally free
            # non-preemptible space.
            pa_space = pa_occ + occ_pending_pa
            inside_pa = (pa_space - np_occ).clip_low(0.0)
            has_preallocations = bool(requests.preallocations.active_or_pending())
            if has_preallocations:
                fit_space = inside_pa
            else:
                free_space = (available_non_preemptible - occ_pending_pa).clip_low(0.0)
                fit_space = inside_pa + free_space
            occ_pending_np = fit(requests.non_preemptible, fit_space, now)

            # Overflow of newly placed non-preemptible requests beyond the
            # pre-allocated space consumes non-preemptible availability too.
            overflow_pending = (occ_pending_np - inside_pa).clip_low(0.0)

            # Lines 10-11: consume the scratch views.
            available_non_preemptible = (
                available_non_preemptible - occ_pending_pa - overflow_pending
            )
            available_preemptible = available_preemptible - occ_pending_np

        # Line 12: equi-partition the preemptible space.
        preemptible_sets = {
            app_id: requests.preemptible for app_id, requests in applications.items()
        }
        result.preemptive_views = eq_schedule(
            preemptible_sets,
            available_preemptible.clip_low(0.0),
            now,
            strict=self.strict_equipartition,
        )

        # Lines 13-14: collect requests that must start now.
        for requests in applications.values():
            for r in requests.all_requests():
                if r.finished() or r.started():
                    continue
                if not math.isinf(r.scheduled_at) and r.scheduled_at <= now + 1e-9:
                    result.to_start.append(r)

        return result

    # ------------------------------------------------------------------ #
    def total_nodes(self) -> int:
        """Total node count over all clusters."""
        return sum(self.capacity.values())

    def __repr__(self) -> str:
        mode = "strict-eq" if self.strict_equipartition else "eq-filling"
        return f"Scheduler({self.capacity}, {mode})"
