"""Cross-policy property tests: safety invariants hold for EVERY policy.

Whatever queue ordering, backfilling discipline and sharing rule a
registered policy composes, one scheduling pass must preserve the same
safety invariants the default algorithm guarantees:

* planned non-preemptible usage never exceeds the cluster (no double
  booking of capacity);
* non-preemptible requests and pre-allocations are never shrunk -- a
  request is either placed at full size or not placed at all;
* started requests stay started, keep their start time and keep their
  allocated node count;
* preemptive views stay within the platform and never go negative.

An RMS-level test additionally replays random submissions end-to-end per
policy and asserts that no physical node is ever bound to two live
requests at once.
"""
from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core import Request, RequestType, Scheduler, to_view
from repro.policies import policy_names
from repro.testing import app_with, make_env, np_, p_, pa

CLUSTER_NODES = 32

ALL_POLICIES = tuple(policy_names())


@st.composite
def application_specs(draw):
    """A few applications, each with a random mix of requests."""
    n_apps = draw(st.integers(min_value=1, max_value=4))
    specs = []
    for _ in range(n_apps):
        has_pa = draw(st.booleans())
        pa_nodes = draw(st.integers(min_value=1, max_value=CLUSTER_NODES)) if has_pa else 0
        np_nodes = draw(st.integers(min_value=0, max_value=CLUSTER_NODES))
        p_nodes = draw(st.integers(min_value=0, max_value=CLUSTER_NODES))
        np_duration = draw(st.floats(min_value=10.0, max_value=1000.0, allow_nan=False))
        started = draw(st.booleans())
        specs.append((pa_nodes, np_nodes, p_nodes, np_duration, started))
    return specs


def build_applications(specs, start_some=False):
    applications = {}
    started_requests = []
    for i, (pa_nodes, np_nodes, p_nodes, np_duration, started) in enumerate(specs):
        requests = []
        if pa_nodes:
            requests.append(pa(pa_nodes))
        if np_nodes:
            r = np_(np_nodes, duration=np_duration)
            if start_some and started:
                r.n_alloc = r.node_count
                r.mark_started(0.0)
                started_requests.append(r)
            requests.append(r)
        if p_nodes:
            requests.append(p_(p_nodes))
        applications[f"app{i}"] = app_with(*requests, app_id=f"app{i}")
    return applications, started_requests


def make_started_copy(request: Request) -> Request:
    clone = request.clone_spec()
    clone.n_alloc = request.n_alloc
    clone.mark_started(request.scheduled_at)
    return clone


def planned_footprint(applications):
    """Combined occupation of every placed pre-allocation/non-preemptible
    request (per-app max of PA and non-P, summed across applications)."""
    total = None
    for app in applications.values():
        footprint = None
        for request_set in (app.preallocations, app.non_preemptible):
            occ = None
            for r in request_set:
                if math.isinf(r.scheduled_at) or r.n_alloc <= 0:
                    continue
                rect = to_view([make_started_copy(r)])
                occ = rect if occ is None else occ + rect
            if occ is not None:
                footprint = occ if footprint is None else footprint.union(occ)
        if footprint is not None:
            total = footprint if total is None else total + footprint
    return total


class TestEveryPolicyKeepsTheInvariants:
    @given(
        specs=application_specs(),
        policy=st.sampled_from(ALL_POLICIES),
    )
    @settings(max_examples=120, deadline=None)
    def test_planned_usage_never_exceeds_capacity(self, specs, policy):
        applications, _ = build_applications(specs)
        scheduler = Scheduler({"c0": CLUSTER_NODES}, policy=policy)
        scheduler.schedule(applications, now=0.0, usage={"app0": 100.0})
        total = planned_footprint(applications)
        if total is not None:
            assert total["c0"].max_value() <= CLUSTER_NODES + 1e-9

    @given(
        specs=application_specs(),
        policy=st.sampled_from(ALL_POLICIES),
    )
    @settings(max_examples=120, deadline=None)
    def test_non_preemptible_requests_are_never_shrunk(self, specs, policy):
        applications, _ = build_applications(specs)
        scheduler = Scheduler({"c0": CLUSTER_NODES}, policy=policy)
        scheduler.schedule(applications, now=0.0)
        for app in applications.values():
            for r in list(app.preallocations) + list(app.non_preemptible):
                if not math.isinf(r.scheduled_at):
                    # Placed at full size -- the CooRMv2 spec only lets the
                    # RMS shrink *preemptible* requests.
                    assert r.n_alloc == r.node_count, (policy, r)

    @given(
        specs=application_specs(),
        policy=st.sampled_from(ALL_POLICIES),
    )
    @settings(max_examples=120, deadline=None)
    def test_started_requests_are_never_unstarted(self, specs, policy):
        applications, started = build_applications(specs, start_some=True)
        before = {
            r.request_id: (r.started_at, r.n_alloc, r.node_count) for r in started
        }
        scheduler = Scheduler({"c0": CLUSTER_NODES}, policy=policy)
        result = scheduler.schedule(applications, now=1.0)
        started_ids = {r.request_id for r in started}
        for app in applications.values():
            for r in app.all_requests():
                if r.request_id in started_ids:
                    assert r.started(), (policy, r)
                    assert (r.started_at, r.n_alloc, r.node_count) == before[
                        r.request_id
                    ], (policy, r)
        # The pass never asks the RMS to re-start something already started.
        assert not (started_ids & {r.request_id for r in result.to_start})

    @given(
        specs=application_specs(),
        policy=st.sampled_from(ALL_POLICIES),
    )
    @settings(max_examples=120, deadline=None)
    def test_preemptive_views_stay_within_the_platform(self, specs, policy):
        applications, _ = build_applications(specs)
        scheduler = Scheduler({"c0": CLUSTER_NODES}, policy=policy)
        result = scheduler.schedule(applications, now=0.0)
        assert set(result.preemptive_views) == set(applications)
        for view in result.preemptive_views.values():
            assert view["c0"].max_value() <= CLUSTER_NODES + 1e-9
            assert view["c0"].min_value() >= -1e-9

    @given(
        specs=application_specs(),
        policy=st.sampled_from(ALL_POLICIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_passes_are_deterministic_per_policy(self, specs, policy):
        a, _ = build_applications(specs)
        b, _ = build_applications(specs)
        result_a = Scheduler({"c0": CLUSTER_NODES}, policy=policy).schedule(a, now=0.0)
        result_b = Scheduler({"c0": CLUSTER_NODES}, policy=policy).schedule(b, now=0.0)
        assert sorted(r.node_count for r in result_a.to_start) == sorted(
            r.node_count for r in result_b.to_start
        )


@st.composite
def rms_workloads(draw):
    """A stream of (delay, nodes, duration, type) submissions."""
    n = draw(st.integers(min_value=1, max_value=6))
    jobs = []
    for _ in range(n):
        delay = draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
        nodes = draw(st.integers(min_value=1, max_value=12))
        duration = draw(st.floats(min_value=5.0, max_value=120.0, allow_nan=False))
        preemptible = draw(st.booleans())
        jobs.append((delay, nodes, duration, preemptible))
    return jobs


class TestNoNodeIsDoubleBooked:
    @given(jobs=rms_workloads(), policy=st.sampled_from(ALL_POLICIES))
    @settings(max_examples=40, deadline=None)
    def test_rms_never_binds_a_node_twice(self, jobs, policy):
        from repro.core import RequestDone, RequestExpired, RequestStarted

        simulator, _platform, rms = make_env(nodes=12, policy=policy)

        class Quiet:
            def on_views(self, *_):
                pass

            def on_start(self, *_):
                pass

            def on_killed(self, *_):
                pass

        for i, (delay, nodes, duration, preemptible) in enumerate(jobs):
            rtype = (
                RequestType.PREEMPTIBLE if preemptible else RequestType.NON_PREEMPTIBLE
            )

            def submit(i=i, nodes=nodes, duration=duration, rtype=rtype):
                app_id = f"w{i}"
                rms.connect(Quiet(), app_id)
                rms.submit(app_id, Request("cluster0", nodes, duration, rtype))

            simulator.schedule(delay, submit)
        simulator.run()

        # Replay the protocol log: a node must never be re-bound while its
        # current holder is still live.  Every request here has a finite
        # duration, so each start is paired with a Done/Expired event.
        ends = {}
        for event in rms.event_log:
            if isinstance(event, (RequestDone, RequestExpired)):
                ends.setdefault(event.request_id, event.time)
        intervals = [
            (event.time, ends.get(event.request_id, math.inf), event)
            for event in rms.event_log.of_kind(RequestStarted)
            if event.node_ids
        ]
        for idx, (start_a, end_a, ev_a) in enumerate(intervals):
            for start_b, _end_b, ev_b in intervals[idx + 1:]:
                if ev_b.request_id == ev_a.request_id:
                    continue
                overlap = set(ev_a.node_ids) & set(ev_b.node_ids)
                if overlap and start_b < end_a - 1e-9:
                    raise AssertionError(
                        f"policy {policy}: node(s) {sorted(overlap)} double-booked"
                        f" by #{ev_a.request_id} (alive until {end_a}) and "
                        f"#{ev_b.request_id} (started {start_b})"
                    )
