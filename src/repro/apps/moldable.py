"""Moldable applications (paper Section 4).

A moldable application waits for its non-preemptive view, runs a resource
selection algorithm over the candidate node counts, and submits the
non-preemptible request that minimises its end time (waiting time plus
estimated execution time).  If the RMS pushes a new view before the request
starts, the selection is re-run and the request replaced -- exactly the
behaviour the paper inherits from CooRM.
"""
from __future__ import annotations

import math
from typing import Callable, FrozenSet, Iterable, List, Optional, Tuple

from ..core.request import Request
from ..core.types import ClusterId, NodeId, RequestType, Time
from .base import BaseApplication

__all__ = ["MoldableApplication"]


class MoldableApplication(BaseApplication):
    """A moldable job choosing its node count from its non-preemptive view.

    Parameters
    ----------
    candidate_node_counts:
        Node counts the application can run on (e.g. powers of two).
    walltime_model:
        Function mapping a node count to the expected execution time.
    """

    def __init__(
        self,
        name: str,
        candidate_node_counts: Iterable[int],
        walltime_model: Callable[[int], Time],
        cluster_id: ClusterId = "cluster0",
    ):
        super().__init__(name, cluster_id)
        self.candidates = sorted({int(n) for n in candidate_node_counts if n > 0})
        if not self.candidates:
            raise ValueError("at least one positive candidate node count is required")
        self.walltime_model = walltime_model
        self.request: Optional[Request] = None
        self.chosen_nodes: Optional[int] = None
        self.start_time: Time = math.nan
        self.selection_history: List[Tuple[Time, int, Time]] = []

    # ------------------------------------------------------------------ #
    # Resource selection
    # ------------------------------------------------------------------ #
    def select(self) -> Tuple[int, Time, Time]:
        """Pick ``(node_count, estimated_start, estimated_end)`` from the view.

        For each candidate node count, the estimated start time is the first
        hole of the non-preemptive view and the estimated end adds the
        walltime; the candidate with the earliest end time wins (ties go to
        fewer nodes, i.e. better efficiency).
        """
        profile = self.non_preemptive_view[self.cluster_id]
        best: Optional[Tuple[Time, int, Time]] = None
        for n in self.candidates:
            walltime = float(self.walltime_model(n))
            start = profile.find_hole(n, walltime, self.now)
            if math.isinf(start):
                continue
            end = start + walltime
            key = (end, n)
            if best is None or key < (best[0] + best[2], best[1]):
                best = (start, n, walltime)
        if best is None:
            # Nothing fits: fall back to the smallest candidate, scheduled
            # whenever the RMS manages to.
            n = self.candidates[0]
            return n, math.inf, float(self.walltime_model(n))
        start, n, walltime = best
        return n, start, walltime

    # ------------------------------------------------------------------ #
    # Protocol callbacks
    # ------------------------------------------------------------------ #
    def on_views(self, non_preemptive, preemptive) -> None:
        super().on_views(non_preemptive, preemptive)
        if self.request is not None and self.request.started():
            return  # moldable: no reshaping after the allocation starts
        nodes, start, walltime = self.select()
        self.selection_history.append((self.now, nodes, start))
        if self.request is not None and not self.request.finished():
            if self.request.node_count == nodes:
                return
            self.done(self.request)
        self.chosen_nodes = nodes
        self.request = self.submit(
            node_count=nodes,
            duration=walltime,
            rtype=RequestType.NON_PREEMPTIBLE,
        )

    def on_start(self, request: Request, node_ids: FrozenSet[NodeId]) -> None:
        if request is not self.request:
            return
        self.start_time = self.now
        self.rms.simulator.schedule(request.duration, self._complete)

    def _complete(self) -> None:
        if self.finished() or self.killed:
            return
        if self.request is not None and not self.request.finished():
            self.done(self.request)
        self.finish()

    # ------------------------------------------------------------------ #
    def end_time(self) -> float:
        return self.finished_at

    def wait_time(self) -> float:
        if math.isnan(self.start_time):
            return math.nan
        return self.start_time - self.connected_at
