"""Unit tests of the Conservative Back-Filling queue."""
from __future__ import annotations

import pytest

from repro.core import CapacityError, CbfJob, ConservativeBackfillQueue


class TestCbfQueue:
    def test_rejects_empty_cluster(self):
        with pytest.raises(CapacityError):
            ConservativeBackfillQueue(0)

    def test_first_job_starts_immediately(self):
        q = ConservativeBackfillQueue(16)
        start = q.submit(CbfJob("j1", node_count=8, duration=100))
        assert start == 0.0

    def test_job_larger_than_cluster_rejected(self):
        q = ConservativeBackfillQueue(16)
        with pytest.raises(CapacityError):
            q.submit(CbfJob("big", node_count=17, duration=10))

    def test_fcfs_queuing(self):
        q = ConservativeBackfillQueue(16)
        q.submit(CbfJob("j1", 16, 100))
        start2 = q.submit(CbfJob("j2", 16, 100))
        assert start2 == pytest.approx(100.0)

    def test_backfilling_small_job_jumps_ahead(self):
        q = ConservativeBackfillQueue(16)
        q.submit(CbfJob("wide", 12, 100))        # leaves 4 nodes free until t=100
        q.submit(CbfJob("blocked", 16, 50))      # must wait for t=100
        start3 = q.submit(CbfJob("small", 4, 50))
        # The small job fits in the 4-node hole before the blocked job starts.
        assert start3 == pytest.approx(0.0)

    def test_backfilling_never_delays_existing_reservations(self):
        q = ConservativeBackfillQueue(16)
        q.submit(CbfJob("wide", 12, 100))
        blocked = CbfJob("blocked", 16, 50)
        q.submit(blocked)
        # A job that would conflict with the blocked job's reservation cannot
        # start before it even though nodes are free right now.
        start = q.submit(CbfJob("long", 4, 200))
        assert start >= 0.0
        assert blocked.start_time == pytest.approx(100.0)

    def test_submit_time_is_respected(self):
        q = ConservativeBackfillQueue(8)
        start = q.submit(CbfJob("late", 4, 10, submit_time=500.0))
        assert start == pytest.approx(500.0)

    def test_complete_early_releases_tail(self):
        q = ConservativeBackfillQueue(8)
        job = CbfJob("j1", 8, 100)
        q.submit(job)
        q.submit(CbfJob("j2", 8, 10))   # reserved at t=100
        q.complete_early(job, now=20.0)
        # New submissions can now backfill into [20, 100).
        start = q.submit(CbfJob("j3", 8, 50))
        assert start == pytest.approx(20.0)

    def test_complete_early_requires_reservation(self):
        q = ConservativeBackfillQueue(8)
        with pytest.raises(CapacityError):
            q.complete_early(CbfJob("ghost", 1, 1), now=0.0)

    def test_metrics(self):
        q = ConservativeBackfillQueue(10)
        q.submit(CbfJob("a", 10, 100))
        q.submit(CbfJob("b", 10, 100))
        assert q.makespan() == pytest.approx(200.0)
        assert q.mean_wait_time() == pytest.approx(50.0)
        assert q.utilisation() == pytest.approx(1.0)

    def test_utilisation_of_empty_queue_is_zero(self):
        q = ConservativeBackfillQueue(10)
        assert q.utilisation() == 0.0
        assert q.mean_wait_time() == 0.0

    def test_submit_many(self):
        q = ConservativeBackfillQueue(4)
        starts = q.submit_many([CbfJob("a", 4, 10), CbfJob("b", 4, 10)])
        assert starts == [0.0, 10.0]
