"""Regenerate the golden regression fixtures under ``tests/data/golden/``.

The fixtures pin the summary metrics of every figure scenario (fig1 ... fig11)
at the campaign's canonical seed (``derive_seed(0, name, 0)``, i.e. what
``python -m repro campaign run --scenarios figN`` produces for replicate 0).
``tests/regression/test_golden_experiments.py`` compares fresh runs against
them, so any refactor that silently changes the paper outputs fails loudly.

Run this script ONLY after verifying that a behaviour change is intentional::

    PYTHONPATH=src python tests/regression/generate_golden.py

and commit the updated fixtures together with the change that explains them.
"""
from __future__ import annotations

import json
from pathlib import Path

from repro.campaign import builtin  # noqa: F401  (registers the scenarios)
from repro.campaign.registry import builtin_scenarios, get_runner
from repro.sim.randomness import derive_seed

#: The scenarios locked down by the golden fixtures: the paper figures, the
#: single-cluster federation (whose metrics must stay byte-identical to the
#: direct scheduler path -- see tests/regression/test_federation_equivalence.py)
#: and the fault-injected chaos scenarios (pinning the deterministic
#: crash/outage/respawn/recovery machinery end to end).
GOLDEN_SCENARIOS = (
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig9",
    "fig10",
    "fig11",
    "fed-single",
    "fed-chaos-dual",
    "fed-chaos-blackout",
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "golden"


def golden_record(name: str) -> dict:
    """Execute one figure scenario at its canonical campaign seed."""
    spec = builtin_scenarios()[name]
    seed = derive_seed(0, name, 0)
    metrics = dict(get_runner(spec.runner)(spec, seed))
    return {
        "scenario": name,
        "runner": spec.runner,
        "scale": spec.scale,
        "seed": seed,
        "metrics": metrics,
    }


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name in GOLDEN_SCENARIOS:
        record = golden_record(name)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(
            json.dumps(record, indent=2, sort_keys=True, allow_nan=False) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path} ({len(record['metrics'])} metrics)")


if __name__ == "__main__":
    main()
