"""Benchmark of the workload-trace pipeline: ingest, convert, replay.

The first two benchmarks time the text-level hot path -- parsing a full
18-field SWF trace and converting it into adaptive application kinds -- and
assert the subsystem's throughput floors: 100k jobs/s for the parser alone
(the issue-7 code-generated row parser) and 25k jobs/s with the adaptive
conversion on top.  The replay benchmark runs a converted trace through a
whole simulation to show the end-to-end cost of trace-driven evaluation.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_trace_replay.py --benchmark-only -s
"""
from __future__ import annotations

import time

from repro.campaign import CampaignRunner, CampaignSpec, resolve_scenarios
from repro.traces import (
    AdaptiveMix,
    TraceModel,
    convert_trace,
    dumps_swf,
    loads_swf,
)

#: Jobs in the benchmark trace (big enough to smooth out fixed costs).
JOB_COUNT = 20_000
#: Acceptance floor on the parser alone (issue 7 raised it 10x).
INGEST_FLOOR = 100_000
#: Acceptance floor on jobs ingested + converted per second.
THROUGHPUT_FLOOR = 25_000

MIX = AdaptiveMix(rigid=0.4, moldable=0.2, malleable=0.2, evolving=0.2)


def make_swf_text(jobs: int = JOB_COUNT) -> str:
    return dumps_swf(TraceModel().synthesize(jobs, seed=123))


def test_ingest_throughput(benchmark):
    """Parse a 20k-job SWF trace from text; asserts the 100k jobs/s floor."""
    text = make_swf_text()
    trace = benchmark(lambda: loads_swf(text))
    assert trace.job_count == JOB_COUNT

    started = time.perf_counter()
    loads_swf(text)
    elapsed = time.perf_counter() - started
    rate = JOB_COUNT / elapsed
    print(f"\ningest: {rate:,.0f} jobs/s (floor {INGEST_FLOOR:,})")
    assert rate >= INGEST_FLOOR


def test_ingest_and_convert_throughput(benchmark):
    """Parse + adaptive-convert; asserts the 25k jobs/s floor."""
    text = make_swf_text()

    def ingest_and_convert():
        trace = loads_swf(text)
        return convert_trace(trace, mix=MIX, seed=0)

    jobs = benchmark(ingest_and_convert)
    assert len(jobs) == JOB_COUNT

    started = time.perf_counter()
    ingest_and_convert()
    elapsed = time.perf_counter() - started
    rate = JOB_COUNT / elapsed
    print(f"\ningest+convert: {rate:,.0f} jobs/s (floor {THROUGHPUT_FLOOR:,})")
    assert rate >= THROUGHPUT_FLOOR


def test_campaign_trace_replay(benchmark):
    """Replay the built-in 200-job synthetic trace scenario end to end."""
    spec = CampaignSpec(
        name="bench-trace-replay",
        scenarios=tuple(resolve_scenarios(["trace-replay"])),
    )

    def run():
        return CampaignRunner(spec).run(workers=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = result.metrics_of("trace-replay")
    assert metrics["trace_finished"] == 200
