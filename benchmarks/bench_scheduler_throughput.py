"""Scheduler throughput benchmark (paper Section 3.2).

The paper reports that its Python implementation "is able to handle
approximately 500 requests/second" on a 2011-era CPU and that the scheduling
algorithm is linear in the number of requests.  This benchmark measures one
scheduling pass over a growing number of requests and prints the resulting
requests-per-second figure, so the linear-complexity claim can be checked on
today's hardware.
"""
from __future__ import annotations

import math

import pytest

from repro.core import ApplicationRequests, Request, RequestType, Scheduler
from repro.metrics import format_table
from repro.policies import policy_names


def build_workload(num_apps: int, requests_per_app: int):
    """Applications with a pre-allocation, non-preemptible and preemptible mix."""
    applications = {}
    for i in range(num_apps):
        app = ApplicationRequests(f"app{i}")
        app.add(Request("c0", 32, math.inf, RequestType.PREALLOCATION))
        for j in range(requests_per_app):
            app.add(Request("c0", 4 + (j % 8), 600.0 + 60.0 * j, RequestType.NON_PREEMPTIBLE))
        app.add(Request("c0", 16, math.inf, RequestType.PREEMPTIBLE))
        applications[f"app{i}"] = app
    return applications


@pytest.mark.parametrize("num_apps,requests_per_app", [(4, 4), (8, 8), (16, 8)])
def test_scheduling_pass_throughput(benchmark, num_apps, requests_per_app):
    """Time one full scheduling pass and report requests per second."""
    scheduler = Scheduler({"c0": 4096})

    def one_pass():
        applications = build_workload(num_apps, requests_per_app)
        return scheduler.schedule(applications, now=0.0), applications

    (result, applications) = benchmark(one_pass)
    total_requests = sum(len(app.all_requests()) for app in applications.values())
    seconds = benchmark.stats.stats.mean
    throughput = total_requests / seconds if seconds > 0 else float("inf")
    print()
    print(
        format_table(
            ["applications", "requests", "pass time (s)", "requests/s"],
            [(num_apps, total_requests, f"{seconds:.4f}", f"{throughput:,.0f}")],
        )
    )
    assert result.non_preemptive_views
    # Even the largest configuration must beat 10x the paper's 500 req/s
    # figure; the issue-7 kernel overhaul runs well clear of this floor.
    assert throughput > 5_000


@pytest.mark.parametrize("policy", policy_names())
def test_policy_pass_throughput(benchmark, policy):
    """One scheduling pass per registered policy, with a throughput floor.

    Every policy swaps at most one stage of the default composition, so no
    policy may cost more than a small constant factor over Algorithm 4; the
    floor is 10x the paper's 500 req/s figure, which even 2011 hardware beat.
    """
    scheduler = Scheduler({"c0": 4096}, policy=policy)
    usage = {f"app{i}": float(i) * 1e4 for i in range(8)}

    def one_pass():
        applications = build_workload(8, 8)
        return scheduler.schedule(applications, now=0.0, usage=usage), applications

    (result, applications) = benchmark(one_pass)
    total_requests = sum(len(app.all_requests()) for app in applications.values())
    seconds = benchmark.stats.stats.mean
    throughput = total_requests / seconds if seconds > 0 else float("inf")
    print()
    print(
        format_table(
            ["policy", "requests", "pass time (s)", "requests/s"],
            [(policy, total_requests, f"{seconds:.4f}", f"{throughput:,.0f}")],
        )
    )
    assert result.non_preemptive_views
    assert throughput > 5_000, f"policy {policy} fell below the 5,000 req/s floor"
