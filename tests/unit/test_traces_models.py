"""Unit tests of the statistical trace models (repro.traces.models)."""
from __future__ import annotations

import math

import pytest

from repro.core.errors import WorkloadError
from repro.sim.randomness import RandomSource
from repro.traces import (
    DailyCycleArrivals,
    LogNormalDuration,
    LogUniformDuration,
    LogUniformNodes,
    PoissonArrivals,
    TraceModel,
    model_from_dict,
)


class TestArrivals:
    def test_poisson_mean_rate(self):
        times = PoissonArrivals(rate=0.1).arrival_times(2000, RandomSource(1))
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(10.0, rel=0.2)

    def test_poisson_strictly_increasing(self):
        times = PoissonArrivals(rate=1.0).arrival_times(100, RandomSource(2))
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_daily_cycle_rate_peaks_at_peak_hour(self):
        model = DailyCycleArrivals(mean_rate=0.01, peak_to_trough=4.0, peak_hour=14.0)
        peak = model.rate_at(14.0 * 3600.0)
        trough = model.rate_at(2.0 * 3600.0)
        assert peak / trough == pytest.approx(4.0, rel=1e-6)

    def test_daily_cycle_concentrates_arrivals_near_peak(self):
        model = DailyCycleArrivals(
            mean_rate=1 / 600.0, peak_to_trough=10.0, peak_hour=12.0
        )
        times = model.arrival_times(400, RandomSource(3))
        in_day = [t % 86_400.0 for t in times]
        near_peak = sum(1 for t in in_day if 8 * 3600 <= t <= 16 * 3600)
        far_off = sum(1 for t in in_day if t <= 4 * 3600 or t >= 20 * 3600)
        assert near_peak > far_off

    def test_poisson_fit_recovers_rate(self):
        times = PoissonArrivals(rate=0.05).arrival_times(3000, RandomSource(4))
        assert PoissonArrivals.fit(times).rate == pytest.approx(0.05, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            DailyCycleArrivals(peak_to_trough=0.5)
        with pytest.raises(ValueError):
            DailyCycleArrivals(peak_hour=24.0)


class TestDistributions:
    def test_log_uniform_duration_bounds(self):
        model = LogUniformDuration(min_seconds=10.0, max_seconds=1000.0)
        rng = RandomSource(5)
        samples = [model.sample(rng) for _ in range(500)]
        assert min(samples) >= 10.0 and max(samples) <= 1000.0

    def test_log_normal_duration_clipped(self):
        model = LogNormalDuration(
            log_mean=math.log(60.0), log_sigma=3.0, min_seconds=30.0, max_seconds=120.0
        )
        rng = RandomSource(6)
        samples = [model.sample(rng) for _ in range(200)]
        assert min(samples) >= 30.0 and max(samples) <= 120.0

    def test_log_normal_fit_recovers_parameters(self):
        model = LogNormalDuration(log_mean=math.log(300.0), log_sigma=0.5,
                                  min_seconds=1.0, max_seconds=10_000.0)
        rng = RandomSource(7)
        samples = [model.sample(rng) for _ in range(4000)]
        fitted = LogNormalDuration.fit(samples)
        assert fitted.log_mean == pytest.approx(math.log(300.0), abs=0.1)
        assert fitted.log_sigma == pytest.approx(0.5, abs=0.1)

    def test_nodes_power_of_two(self):
        model = LogUniformNodes(min_nodes=1, max_nodes=128, power_of_two=True)
        rng = RandomSource(8)
        samples = {model.sample(rng) for _ in range(300)}
        assert all(n & (n - 1) == 0 for n in samples)
        assert max(samples) <= 128

    def test_nodes_fit_detects_power_of_two(self):
        assert LogUniformNodes.fit([1, 2, 4, 64]).power_of_two is True
        assert LogUniformNodes.fit([3, 5, 7]).power_of_two is False


class TestTraceModel:
    def test_synthesize_is_deterministic(self):
        model = TraceModel()
        assert model.synthesize(80, seed=11) == model.synthesize(80, seed=11)

    def test_synthesize_differs_across_seeds(self):
        model = TraceModel()
        assert model.synthesize(80, seed=11) != model.synthesize(80, seed=12)

    def test_synthesize_sets_header_and_provenance(self):
        trace = TraceModel().synthesize(10, seed=0)
        assert trace.header.max_nodes == 128
        assert trace.provenance[0]["kind"] == "synthesize"
        assert trace.provenance[0]["seed"] == 0

    def test_synthesized_jobs_are_runnable(self):
        trace = TraceModel().synthesize(50, seed=1)
        assert len(trace.to_rigid_jobs()) == 50

    def test_dict_round_trip(self):
        model = TraceModel(
            arrivals=DailyCycleArrivals(mean_rate=0.01),
            durations=LogUniformDuration(min_seconds=5.0, max_seconds=50.0),
            nodes=LogUniformNodes(max_nodes=16),
        )
        assert TraceModel.from_dict(model.to_dict()) == model

    def test_fit_then_synthesize(self):
        original = TraceModel().synthesize(300, seed=2)
        fitted = TraceModel.fit(original)
        synthetic = fitted.synthesize(300, seed=3)
        assert synthetic.job_count == 300
        # The fitted model reproduces the load within a factor of ~2.
        assert synthetic.span == pytest.approx(original.span, rel=1.0)

    def test_fit_rejects_empty_trace(self):
        from repro.traces import Trace

        with pytest.raises(WorkloadError):
            TraceModel.fit(Trace())

    def test_model_from_dict_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError, match="unknown trace model kind"):
            model_from_dict({"kind": "zipf"})

    def test_job_count_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceModel().synthesize(0, seed=0)
