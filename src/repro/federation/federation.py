"""The federation: N cluster+scheduler pairs behind one meta-scheduler.

The paper's request/view protocol is deliberately layerable: an application
talks to *one* resource manager, and nothing in the protocol cares whether
that manager is the only one in the system.  The federation exploits exactly
that property -- it owns one :class:`~repro.core.rms.CooRMv2` per member
cluster (each with its own platform, capacity and scheduling policy), all
driven by **one shared discrete-event engine**, and a :class:`MetaScheduler`
that places every incoming application on one member through a pluggable
:class:`~repro.federation.routing.RoutingPolicy`.

Once placed, an application speaks the ordinary CooRMv2 protocol with its
home member; the federation never intercepts per-request traffic.  That is
what makes the load-bearing equivalence guarantee hold by construction: a
1-cluster federation under the ``any`` routing performs exactly the same
calls, in the same simulator-event order, as the direct single-scheduler
path -- so its metrics are byte-identical (pinned by the golden regression
suite).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..apps.base import BaseApplication
from ..cluster.platform import Platform
from ..core.errors import AdmissionError, RequestError
from ..core.rms import CooRMv2
from ..obs import hooks as _obs
from ..sim.engine import Simulator
from ..sim.randomness import derive_seed
from .routing import ClusterState, RoutingPolicy, RoutingRequest, make_routing
from .spec import FederationSpec

__all__ = [
    "FederationMember",
    "RoutingDecision",
    "MetaScheduler",
    "Federation",
    "locality_group",
]


def locality_group(job_id: str, groups: int = 8) -> str:
    """Deterministic affinity group of a trace job.

    Archived rigid traces carry no application identity beyond the job id,
    so locality-aware routing hashes every job into one of *groups* stable
    "application families" (think: the same user's jobs sharing input data
    on their home cluster).  The hash goes through ``derive_seed`` so the
    grouping is identical across processes and worker counts.
    """
    if groups <= 0:
        raise ValueError("groups must be positive")
    return f"group{derive_seed(0, 'locality-group', job_id) % groups}"


@dataclass
class FederationMember:
    """One cluster+scheduler pair owned by the federation."""

    name: str
    index: int
    platform: Platform
    rms: CooRMv2
    #: Whether the whole member is currently blacked out (fault injection).
    #: Down members keep their routing-snapshot slot -- policies index the
    #: member list positionally -- but placements are rerouted around them.
    down: bool = False

    @property
    def capacity(self) -> int:
        return self.platform.total_nodes()

    def free_nodes(self) -> int:
        return self.platform.cluster(self.name).free_count()


@dataclass(frozen=True)
class RoutingDecision:
    """One placement the meta-scheduler made (kept for analysis/tests)."""

    app_id: str
    cluster: str
    group: str
    node_count: int
    time: float


class MetaScheduler:
    """Places incoming applications on federation members.

    The meta-scheduler owns the routing policy instance (fresh per
    federation, so policy state like round-robin counters never leaks
    between runs) and the bookkeeping the policy's decisions are based on:
    which applications were routed where and how many of them are still
    unfinished.
    """

    def __init__(
        self,
        members: List[FederationMember],
        routing: RoutingPolicy,
    ):
        if not members:
            raise ValueError("a meta-scheduler needs at least one member")
        self.members = members
        self.routing = routing
        #: Admission controller installed by a fault injector; ``None``
        #: (the default) keeps placement on the historical fast path, so
        #: fault-free federations behave byte-identically to before.
        self.admission = None
        self.decisions: List[RoutingDecision] = []
        #: Per member: (application, node-count hint) of everything routed
        #: there; finished applications are filtered lazily on snapshot.
        self._routed: Dict[str, List[Tuple[BaseApplication, int]]] = {
            m.name: [] for m in members
        }
        #: Running per-member decision totals for the ``federation/load``
        #: counter events (kept incrementally; ``decisions`` is O(n) to scan).
        self._routed_totals: Dict[str, int] = {m.name: 0 for m in members}

    # ------------------------------------------------------------------ #
    def _snapshot(self) -> List[ClusterState]:
        states: List[ClusterState] = []
        for member in self.members:
            live = [
                (app, hint)
                for app, hint in self._routed[member.name]
                if not app.finished() and not app.killed
            ]
            self._routed[member.name] = live
            states.append(
                ClusterState(
                    name=member.name,
                    index=member.index,
                    capacity=member.capacity,
                    free_nodes=member.free_nodes(),
                    outstanding_nodes=sum(hint for _app, hint in live),
                    outstanding_apps=len(live),
                )
            )
        return states

    def place(
        self,
        app_id: str,
        node_count: int = 0,
        group: Optional[str] = None,
        now: float = 0.0,
    ) -> FederationMember:
        """Choose a member for an incoming application and log the decision.

        Placement is split from :meth:`register` so callers can build the
        application *after* the decision -- trace replays size their
        applications to the member they land on.
        """
        request = RoutingRequest(
            app_id=app_id,
            node_count=max(0, int(node_count)),
            group=group or "",
            submit_time=now,
        )
        index = self.routing.route(request, self._snapshot())
        if not 0 <= index < len(self.members):
            raise ValueError(
                f"routing policy {self.routing.name!r} returned member index "
                f"{index} for {len(self.members)} members"
            )
        member = self.members[index]
        if self.admission is not None or any(m.down for m in self.members):
            member = self._admit(member, request, now)
        decision = RoutingDecision(
            app_id=app_id,
            cluster=member.name,
            group=request.affinity_group(),
            node_count=request.node_count,
            time=now,
        )
        self.decisions.append(decision)
        self._routed_totals[member.name] += 1
        tracer = _obs.TRACER[0]
        if tracer is not None:
            tracer.emit(
                now,
                "federation",
                "route",
                {
                    "app": app_id,
                    "cluster": member.name,
                    "routing": self.routing.name,
                    "group": decision.group,
                    "node_count": decision.node_count,
                },
            )
            tracer.counter(
                now,
                "federation",
                "load",
                {
                    name: float(total)
                    for name, total in sorted(self._routed_totals.items())
                },
            )
        metrics = _obs.METRICS[0]
        if metrics is not None:
            metrics.inc("federation.routing_decisions")
            metrics.inc(f"federation.routed[{member.name}]")
        if self.admission is not None:
            self.admission.record_success(member.name)
        return member

    def _admit(self, routed: FederationMember, request: RoutingRequest, now: float) -> FederationMember:
        """Fault-aware placement filter applied *after* routing.

        Routing policies must see the full, positionally-stable member
        list (affinity caches global indices), so down members are never
        filtered from their snapshot; instead the chosen member is
        vetted here.  Candidates are walked deterministically -- the
        routed member first, then members that fit the request in
        federation order, then the rest -- and the first member that is
        up and admitted by the admission controller wins.  Raises
        :class:`AdmissionError` when no member qualifies.
        """
        rest = [m for m in self.members if m is not routed]
        fitting = [m for m in rest if request.node_count <= m.capacity]
        candidates = [routed] + fitting + [m for m in rest if m not in fitting]
        denied: List[Tuple[str, str]] = []
        for member in candidates:
            if member.down:
                denied.append((member.name, "down"))
                continue
            if self.admission is not None:
                admitted, why = self.admission.admit(member.name, now)
                if not admitted:
                    denied.append((member.name, why or "rejected"))
                    continue
            if member is not routed:
                tracer = _obs.TRACER[0]
                if tracer is not None:
                    tracer.emit(
                        now,
                        "federation",
                        "reroute",
                        {
                            "app": request.app_id,
                            "from": routed.name,
                            "to": member.name,
                            "denied": [list(d) for d in denied],
                        },
                    )
                metrics = _obs.METRICS[0]
                if metrics is not None:
                    metrics.inc("federation.reroutes")
            return member
        raise AdmissionError(
            f"no federation member admitted {request.app_id!r}: "
            + ", ".join(f"{name} ({why})" for name, why in denied)
        )

    def register(
        self,
        member: FederationMember,
        application: BaseApplication,
        node_count: int = 0,
    ) -> None:
        """Count *application* towards *member*'s outstanding load."""
        self._routed[member.name].append((application, max(0, int(node_count))))

    def routed_counts(self) -> Dict[str, int]:
        """Member name -> number of applications ever routed there."""
        counts = {m.name: 0 for m in self.members}
        for decision in self.decisions:
            counts[decision.cluster] += 1
        return counts


class Federation:
    """N named cluster+scheduler pairs sharing one event engine.

    Parameters
    ----------
    spec:
        The (fully resolved -- no derived sizes) federation topology and
        routing policy.  Use :meth:`FederationSpec.resolved` first when the
        spec contains ``nodes == 0`` members.
    simulator:
        The shared discrete-event engine every member RMS is driven by.
    rescheduling_interval, kill_protocol_violators, violation_grace:
        Forwarded to every member RMS (one administration domain).
    default_policy:
        Scheduling policy of members whose :class:`ClusterSpec` does not
        pin one (a registered name, stage mapping or policy object).
    strict_equipartition:
        Forwarded to every member RMS exactly like the single-scheduler
        path forwards it (the scheduler validates it against the resolved
        policy), so a federated run composes the same way a direct run does.
    seed:
        Root seed of the routing policy's randomness; the routing stream is
        derived (``derive_seed(seed, "routing")``) so it never correlates
        with the workload drawn from the same scenario seed.
    """

    def __init__(
        self,
        spec: FederationSpec,
        simulator: Simulator,
        rescheduling_interval: float = 1.0,
        default_policy=None,
        strict_equipartition: bool = False,
        kill_protocol_violators: bool = False,
        violation_grace: float = 30.0,
        seed: Optional[int] = None,
    ):
        unresolved = [c.name for c in spec.clusters if c.nodes <= 0]
        if unresolved:
            raise ValueError(
                f"federation members {unresolved} have derived sizes; call "
                f"FederationSpec.resolved(default_nodes) before building"
            )
        self.spec = spec
        self.simulator = simulator
        self.members: List[FederationMember] = []
        for index, cluster in enumerate(spec.clusters):
            platform = Platform.single_cluster(cluster.nodes, cluster_id=cluster.name)
            rms = CooRMv2(
                platform,
                simulator,
                rescheduling_interval=rescheduling_interval,
                strict_equipartition=strict_equipartition,
                kill_protocol_violators=kill_protocol_violators,
                violation_grace=violation_grace,
                policy=cluster.policy if cluster.policy is not None else default_policy,
            )
            self.members.append(
                FederationMember(name=cluster.name, index=index, platform=platform, rms=rms)
            )
        self.meta = MetaScheduler(
            self.members, make_routing(spec.routing, seed=derive_seed(seed, "routing"))
        )

    # ------------------------------------------------------------------ #
    @property
    def routing_name(self) -> str:
        return self.spec.routing

    def member(self, name: str) -> FederationMember:
        for member in self.members:
            if member.name == name:
                return member
        raise KeyError(
            f"unknown federation member {name!r}; members: "
            f"{[m.name for m in self.members]}"
        )

    def total_nodes(self) -> int:
        return sum(m.capacity for m in self.members)

    def rms_list(self) -> List[CooRMv2]:
        """Member RMSs in federation order (for aggregated metrics)."""
        return [m.rms for m in self.members]

    # ------------------------------------------------------------------ #
    def submit(
        self,
        application: BaseApplication,
        node_count: int = 0,
        group: Optional[str] = None,
    ) -> FederationMember:
        """Route *application* to a member and connect it there.

        The routing decision happens at call time (so load-aware policies
        see the state of the federation *now*, not at scenario build time);
        the application's ``cluster_id`` is re-pointed at the member's
        cluster before connecting, after which it speaks the ordinary
        CooRMv2 protocol with its home member.

        An application whose declared *node_count* exceeds the chosen
        member's capacity is rejected up front with a clear error --
        routing policies prefer members that fit, so reaching this state
        means **no** member of the federation can ever hold the
        application (a topology misconfiguration, the federated analogue
        of submitting an oversized request to a single scheduler).
        """
        member = self.meta.place(
            application.name,
            node_count=node_count,
            group=group,
            now=self.simulator.now,
        )
        if node_count > member.capacity:
            raise RequestError(
                f"application {application.name!r} needs {node_count} nodes "
                f"but was routed to member {member.name!r} "
                f"({member.capacity} nodes); no cluster of the federation "
                f"{[f'{m.name}:{m.capacity}' for m in self.members]} fits it"
            )
        self.attach(member, application, node_count=node_count)
        return member

    def attach(
        self,
        member: FederationMember,
        application: BaseApplication,
        node_count: int = 0,
    ) -> None:
        """Connect an already-placed application to its home member."""
        self.meta.register(member, application, node_count=node_count)
        application.cluster_id = member.platform.default_cluster_id()
        application.connect(member.rms)

    def routed_counts(self) -> Dict[str, int]:
        return self.meta.routed_counts()

    def __repr__(self) -> str:
        inner = ", ".join(f"{m.name}={m.capacity}" for m in self.members)
        return f"Federation({inner}; routing={self.spec.routing!r})"
