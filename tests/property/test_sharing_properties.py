"""Property-based tests of the resource-sharing primitives.

Covers max-min fair allocation (the heart of ``eqSchedule``) and the
Conservative Back-Filling queue: whatever the workload, capacity must never
be oversubscribed and earlier reservations must never be delayed by later
submissions.
"""
from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import CbfJob, ConservativeBackfillQueue, max_min_fair

demands_strategy = st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=8)
capacity_strategy = st.integers(min_value=0, max_value=300)


class TestMaxMinFairProperties:
    @given(demands=demands_strategy, capacity=capacity_strategy)
    def test_never_exceeds_capacity_or_demand(self, demands, capacity):
        alloc = max_min_fair(demands, capacity)
        assert len(alloc) == len(demands)
        assert sum(alloc) <= capacity
        assert all(0 <= a <= d for a, d in zip(alloc, demands))

    @given(demands=demands_strategy, capacity=capacity_strategy)
    def test_work_conserving(self, demands, capacity):
        """Capacity is only left unused when every demand is satisfied."""
        alloc = max_min_fair(demands, capacity)
        if sum(alloc) < capacity:
            assert all(a == d for a, d in zip(alloc, demands))

    @given(demands=demands_strategy, capacity=capacity_strategy)
    def test_fairness(self, demands, capacity):
        """An application gets less than another only if it asked for less.

        Max-min fairness implies that if allocation[i] < allocation[j] then
        application i's demand is fully satisfied.
        """
        alloc = max_min_fair(demands, capacity)
        for i in range(len(alloc)):
            for j in range(len(alloc)):
                if alloc[i] < alloc[j]:
                    assert alloc[i] == demands[i] or alloc[j] - alloc[i] <= 1


@st.composite
def job_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    jobs = []
    for i in range(n):
        jobs.append(
            CbfJob(
                job_id=f"j{i}",
                node_count=draw(st.integers(min_value=1, max_value=16)),
                duration=draw(st.floats(min_value=1.0, max_value=500.0, allow_nan=False)),
                submit_time=draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
            )
        )
    return jobs


class TestCbfProperties:
    @given(jobs=job_lists())
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_oversubscribed(self, jobs):
        queue = ConservativeBackfillQueue(16)
        queue.submit_many(sorted(jobs, key=lambda j: j.submit_time))
        # Check occupancy at every reservation boundary.
        events = sorted({j.start_time for j in jobs} | {j.end_time for j in jobs})
        for t in events:
            busy = sum(
                j.node_count for j in jobs if j.start_time <= t < j.end_time
            )
            assert busy <= 16

    @given(jobs=job_lists())
    @settings(max_examples=50, deadline=None)
    def test_jobs_never_start_before_submission(self, jobs):
        queue = ConservativeBackfillQueue(16)
        queue.submit_many(sorted(jobs, key=lambda j: j.submit_time))
        for j in jobs:
            assert j.start_time >= j.submit_time

    @given(jobs=job_lists())
    @settings(max_examples=30, deadline=None)
    def test_later_submissions_never_delay_earlier_reservations(self, jobs):
        ordered = sorted(jobs, key=lambda j: j.submit_time)
        queue = ConservativeBackfillQueue(16)
        starts_incremental = []
        for idx, job in enumerate(ordered):
            queue.submit(job)
            starts_incremental.append(job.start_time)
            # Reservations made earlier must not have moved.
            for prev_idx in range(idx):
                assert ordered[prev_idx].start_time == starts_incremental[prev_idx]
