"""Golden regression of the deterministic trace export.

The fixture under ``tests/data/golden_obs/`` pins the byte-exact JSONL
trace of the fig9 scenario at its canonical campaign seed (see
``generate_obs_golden.py``).  A drifting digest means the engine's event
order, the scheduler's decisions or the instrumentation itself changed --
all of which invalidate recorded traces and must be explicit.
"""
from __future__ import annotations

import json

from tests.regression.generate_obs_golden import (
    GOLDEN_OBS_DIR,
    TRACED_SCENARIO,
    golden_trace_digest,
)


def load_fixture() -> dict:
    path = GOLDEN_OBS_DIR / f"{TRACED_SCENARIO}_trace.json"
    assert path.is_file(), (
        f"missing golden trace fixture {path}; run "
        "'PYTHONPATH=src python tests/regression/generate_obs_golden.py'"
    )
    return json.loads(path.read_text(encoding="utf-8"))


def test_trace_export_matches_golden_digest() -> None:
    fixture = load_fixture()
    fresh = golden_trace_digest()

    assert fresh["seed"] == fixture["seed"], "seed derivation changed"
    assert fresh["event_count"] == fixture["event_count"]
    assert fresh["count_by"] == fixture["count_by"], (
        "per-event-type counts drifted; the instrumentation or the "
        "simulation behaviour changed"
    )
    assert fresh["head"] == fixture["head"], "leading trace events changed"
    assert fresh["sha256"] == fixture["sha256"], (
        "trace bytes drifted despite identical counts -- event ordering or "
        "argument values changed"
    )
