"""Integration tests of policy x scenario campaign matrices.

The ISSUE-4 acceptance bar: a policy matrix must compare >= 3 policies on
the same replayed trace with byte-identical result-store rows at any
worker count, and every policy variant of one scenario must replay the
exact same workload (same derived seed).
"""
from __future__ import annotations

import json

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    PlatformSpec,
    ResultStore,
    ScenarioSpec,
    WorkloadSpec,
)

POLICIES = ("coorm", "easy", "sjf")

#: A small, contended synthetic trace (mean offered load above one node per
#: second on a 16-node cluster) so policies can actually diverge.
TRACE = {
    "model": {
        "arrivals": {"kind": "poisson", "rate": 1.0 / 20.0},
        "durations": {
            "kind": "log_normal_duration",
            "log_mean": 5.0,
            "log_sigma": 0.6,
            "min_seconds": 30.0,
            "max_seconds": 900.0,
        },
        "nodes": {
            "kind": "log_uniform_nodes",
            "min_nodes": 1,
            "max_nodes": 16,
            "power_of_two": True,
        },
    },
    "job_count": 25,
    "transforms": [{"kind": "clamp_nodes", "max_nodes": 16}],
}


def tiny_trace_campaign(workers: int) -> CampaignSpec:
    scenario = ScenarioSpec(
        name="mini-trace",
        runner="amr_psa",
        platform=PlatformSpec(cluster_nodes=16),
        workload=WorkloadSpec(include_amr=False, trace=TRACE),
    )
    return CampaignSpec(
        name="policy-matrix",
        scenarios=(scenario,),
        seeds=2,
        root_seed=7,
        workers=workers,
        policies=POLICIES,
    )


class TestPolicyMatrixDeterminism:
    def test_byte_identical_store_rows_at_1_and_4_workers(self, tmp_path):
        blobs = {}
        for workers in (1, 4):
            store = ResultStore(tmp_path / f"w{workers}")
            runner = CampaignRunner(tiny_trace_campaign(workers), store=store)
            result = runner.run()
            assert result.workers == min(workers, result.spec.run_count)
            blobs[workers] = store.runs_path("policy-matrix").read_bytes()
        assert blobs[1] == blobs[4]

    def test_matrix_shape_and_seed_sharing(self):
        spec = tiny_trace_campaign(1)
        assert spec.run_count == len(POLICIES) * 2
        runner = CampaignRunner(spec)
        tasks = runner.tasks()
        assert len(tasks) == spec.run_count
        # Every policy variant of one (scenario, replicate) shares its seed:
        # identical workload, directly comparable metrics.
        by_replicate = {}
        for task in tasks:
            by_replicate.setdefault(task.replicate, set()).add(task.seed)
        for replicate, seeds in by_replicate.items():
            assert len(seeds) == 1, (replicate, seeds)
        # ... and the variants are suffix-named after their policy.
        names = {t.scenario.name for t in tasks}
        assert names == {f"mini-trace@{p}" for p in POLICIES}
        assert {t.base_scenario for t in tasks} == {"mini-trace"}

    def test_records_carry_policy_and_base_scenario(self, tmp_path):
        store = ResultStore(tmp_path)
        result = CampaignRunner(tiny_trace_campaign(1), store=store).run()
        for record in result.records:
            assert record["base_scenario"] == "mini-trace"
            assert record["policy"] in POLICIES
            assert record["scenario"] == f"mini-trace@{record['policy']}"
        # The policy matrix view groups them back together.
        matrix = store.policy_matrix("policy-matrix")
        assert set(matrix) == {"mini-trace"}
        assert set(matrix["mini-trace"]) == set(POLICIES)
        for medians in matrix["mini-trace"].values():
            assert medians  # every policy produced metrics

    def test_spec_round_trips_with_policies(self, tmp_path):
        spec = tiny_trace_campaign(2)
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.policies == POLICIES
        # A scenario-level policy survives the round trip too.
        pinned = ScenarioSpec(name="pinned", policy="easy")
        assert ScenarioSpec.from_dict(pinned.to_dict()) == pinned
        assert ScenarioSpec.from_dict(
            json.loads(json.dumps(pinned.to_dict()))
        ).policy == "easy"


class TestPoliciesDivergeUnderContention:
    def test_at_least_one_metric_differs_across_policies(self, tmp_path):
        store = ResultStore(tmp_path)
        CampaignRunner(tiny_trace_campaign(1), store=store).run()
        matrix = store.policy_matrix("policy-matrix")["mini-trace"]
        fingerprints = {
            policy: json.dumps(medians, sort_keys=True)
            for policy, medians in matrix.items()
        }
        assert len(set(fingerprints.values())) > 1, (
            "all policies produced identical metrics on a contended trace; "
            "the policy plumbing is probably not reaching the RMS"
        )
