"""Ablation: sensitivity to the RMS re-scheduling interval.

The paper fixes the re-scheduling interval to 1 second "to obtain a very
reactive system" (Section 5.1.3).  This ablation varies the interval and
reports how the AMR end time and the PSA waste react: longer intervals make
the RMS cheaper to run but slow down update handling and increase waste.
"""
from __future__ import annotations

from dataclasses import replace

from repro.experiments import run_scenario
from repro.metrics import format_table

INTERVALS = (0.1, 1.0, 10.0, 60.0)


def test_rescheduling_interval_ablation(benchmark, bench_scale):
    """Time the 1-second configuration and print the full interval sweep."""
    result = benchmark.pedantic(
        run_scenario,
        kwargs=dict(scale=bench_scale, seed=0, overcommit=1.0),
        rounds=3,
        iterations=1,
    )
    assert result.amr.finished()

    rows = []
    for interval in INTERVALS:
        scale = replace(bench_scale, rescheduling_interval=interval)
        outcome = run_scenario(scale, seed=0, overcommit=1.0)
        rows.append(
            (
                interval,
                round(outcome.metrics.amr_end_time, 1),
                round(outcome.metrics.psa_waste_node_seconds, 1),
                f"{outcome.metrics.used_resources_percent:.1f}%",
            )
        )
    print()
    print("Ablation -- RMS re-scheduling interval")
    print(
        format_table(
            ["interval (s)", "AMR end time (s)", "PSA waste (node*s)", "used resources"],
            rows,
        )
    )
    # A 1-second interval must not be slower for the AMR than a 60-second one.
    end_by_interval = {row[0]: row[1] for row in rows}
    assert end_by_interval[1.0] <= end_by_interval[60.0] * 1.05
