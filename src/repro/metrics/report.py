"""Plain-text tabular reports for experiment results.

The paper presents its results as figures; this module renders the same data
as aligned text tables so that ``python -m`` experiment runs and benchmark
harnesses can print the rows/series a figure would plot, without any plotting
dependency.
"""
from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_series", "format_percent", "format_comparison"]

Number = Union[int, float]


def format_percent(value: float, digits: int = 1) -> str:
    """Render a percentage with a fixed number of decimals."""
    return f"{value:.{digits}f}%"


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value)}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render *rows* as an aligned, pipe-separated text table."""
    str_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    lines = [fmt_row(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_comparison(
    rows: Iterable[Sequence],
    label_a: str = "a",
    label_b: str = "b",
) -> str:
    """Render ``(scenario, metric, a, b, delta)`` comparison rows as a table.

    Used by ``python -m repro campaign report --compare`` to show how two
    campaigns' per-scenario median metrics differ; the relative change column
    is blank when the reference value is zero.
    """
    table_rows = []
    for scenario, metric, a, b, delta in rows:
        relative = f"{100.0 * delta / a:+.1f}%" if a else ""
        table_rows.append((scenario, metric, a, b, delta, relative))
    return format_table(
        ["scenario", "metric", label_a, label_b, "delta", "rel"], table_rows
    )


def format_series(
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
) -> str:
    """Render one or more y-series against a shared x-axis as a table."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows)
