"""Figure 3 -- end-time increase of the equivalent static allocation.

For every target efficiency, the equivalent static allocation consumes the
same resource area as the dynamic allocation but distributes it differently
over the run; the figure shows that the resulting end-time increase stays
below ~2.5 % for target efficiencies up to 0.8 (beyond which the equivalent
static allocation stops existing).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..metrics.report import format_table
from ..models.amr_evolution import AmrEvolutionParameters, WorkingSetEvolution
from ..models.speedup import PAPER_SPEEDUP_MODEL, SpeedupModel, TIB_IN_MIB
from ..models.static_equivalent import equivalent_static_allocation

__all__ = ["PAPER_TARGET_EFFICIENCIES", "EndTimePoint", "run", "main"]

#: The x-axis of Figure 3.
PAPER_TARGET_EFFICIENCIES: Tuple[float, ...] = tuple(
    round(0.1 + 0.1 * i, 1) for i in range(9)
)


@dataclass(frozen=True)
class EndTimePoint:
    """Distribution of end-time increases for one target efficiency."""

    target_efficiency: float
    samples: Tuple[float, ...]
    #: Fraction of profiles for which an equivalent static allocation exists.
    feasible_fraction: float

    @property
    def median_increase(self) -> float:
        return float(np.median(self.samples)) if self.samples else float("nan")

    @property
    def max_increase(self) -> float:
        return float(np.max(self.samples)) if self.samples else float("nan")


def run(
    target_efficiencies: Sequence[float] = PAPER_TARGET_EFFICIENCIES,
    seeds: Sequence[int] = tuple(range(10)),
    num_steps: int = 1000,
    s_max_mib: float = 3.16 * TIB_IN_MIB,
    model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> Dict[float, EndTimePoint]:
    """Compute the end-time increase distribution per target efficiency."""
    params = AmrEvolutionParameters(num_steps=num_steps)
    evolutions = [
        WorkingSetEvolution.generate(s_max_mib, seed=seed, params=params) for seed in seeds
    ]
    points: Dict[float, EndTimePoint] = {}
    for target in target_efficiencies:
        samples: List[float] = []
        feasible = 0
        for evolution in evolutions:
            result = equivalent_static_allocation(evolution, target, model)
            if result is None:
                continue
            feasible += 1
            samples.append(result.end_time_increase)
        points[target] = EndTimePoint(
            target_efficiency=target,
            samples=tuple(samples),
            feasible_fraction=feasible / len(evolutions) if evolutions else 0.0,
        )
    return points


def main(
    target_efficiencies: Sequence[float] = PAPER_TARGET_EFFICIENCIES,
    seeds: Sequence[int] = tuple(range(10)),
    num_steps: int = 1000,
) -> str:
    """Render the Figure 3 reproduction as a text table."""
    points = run(target_efficiencies, seeds, num_steps=num_steps)
    rows = []
    for target in target_efficiencies:
        p = points[target]
        rows.append(
            (
                target,
                f"{100 * p.median_increase:.2f}%" if p.samples else "n/a",
                f"{100 * p.max_increase:.2f}%" if p.samples else "n/a",
                f"{100 * p.feasible_fraction:.0f}%",
            )
        )
    table = format_table(
        ["target efficiency", "median end-time increase", "max", "n_eq exists"], rows
    )
    return "Figure 3 -- end-time increase of the equivalent static allocation\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
