#!/usr/bin/env python
"""Run the fig9 scenario under an SLO spec and print the analytics report.

The analytics walk-through, one layer above raw tracing (for which see
``trace_a_scenario.py``):

1. **trace** the fig9 scenario (spontaneous-update overcommit sweep) at its
   canonical campaign seed;
2. **replay** the deterministic event stream into a sampled sim-time
   :class:`Timeline` (utilization, queue depth, job counts) and per-job
   lifecycle audits (queue wait, slowdown, grow/shrink counts);
3. **evaluate** a declarative :class:`SLOSpec` -- a p95 queue-wait ceiling,
   a bounded-slowdown bound and an SLA-attainment percentage, plus a
   utilization floor that needs the timeline -- and print the verdict.

Everything derived here is a pure function of the trace, so re-running this
script produces byte-identical analytics; campaigns evaluate the same specs
per run with ``python -m repro campaign run --slo <spec>``.

Run with::

    PYTHONPATH=src python examples/slo_report.py
"""
from __future__ import annotations

from repro.campaign import builtin  # noqa: F401  (registers the scenarios)
from repro.campaign.registry import builtin_scenarios, consume_provenance, get_runner
from repro.metrics import format_table
from repro.obs import (
    EventTracer,
    SLOSpec,
    TimelineBuilder,
    build_audits,
    evaluate_slo,
    observe,
    summarize_audits,
)
from repro.obs.timeline import sparkline
from repro.sim.randomness import derive_seed

SCENARIO = "fig9"

#: The evaluated objectives: deliberately tighter than the shipped
#: ``DEFAULT_SLO`` to show a utilization objective in action.
SPEC = SLOSpec(
    name="fig9-example",
    objectives=(
        {"kind": "p95_wait", "max_seconds": 600.0},
        {"kind": "mean_bounded_slowdown", "max": 5.0},
        {"kind": "attainment", "wait_seconds": 300.0, "min_percent": 90.0},
        {"kind": "utilization", "min_percent": 5.0},
    ),
)


def main() -> int:
    spec = builtin_scenarios()[SCENARIO]
    seed = derive_seed(0, SCENARIO, 0)

    print(f"1. Tracing scenario {SCENARIO!r} at its campaign seed {seed}")
    tracer = EventTracer()
    consume_provenance()
    with observe(tracer=tracer):
        get_runner(spec.runner)(spec, seed)
    consume_provenance()
    print(f"   {len(tracer)} events recorded")

    print()
    print("2. Sim-time timeline (fixed 60-interval grid)")
    timeline = TimelineBuilder().build(tracer.events)
    for name in ("util.pct", "queue.apps", "jobs.running"):
        stats = timeline.stats(name)
        print(
            f"   {name:<14} {sparkline(timeline.series[name])} "
            f"max={stats['max']:g}"
        )

    print()
    print("3. Per-job lifecycle audits")
    audits = build_audits(tracer.events)
    summary = summarize_audits(audits)
    rows = [
        (key, summary[key])
        for key in ("jobs", "started", "wait_p95", "bounded_slowdown_mean", "grows")
    ]
    print(format_table(["statistic", "value"], rows))

    print()
    print(f"4. SLO evaluation against spec {SPEC.name!r}")
    report = evaluate_slo(SPEC, audits, timeline)
    for result in report.results:
        verdict = "ok" if result.get("ok") else "VIOLATED"
        print(f"   [{verdict:>8}] {result['kind']}: measured {result['measured']:g}")
    print(f"   overall: {'PASS' if report.passed else 'FAIL'}")
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
