#!/usr/bin/env python
"""Announced vs spontaneous updates for an AMR application (paper Section 5.3).

A non-predictably evolving AMR application shares a cluster with a
Parameter-Sweep Application whose tasks take 10 minutes.  When the AMR grows
*spontaneously*, the PSA has to kill tasks and the work done on them is lost;
when the AMR *announces* its growth some time in advance, the PSA can let
tasks finish and release the nodes gracefully.

This example runs the same scenario with several announce intervals and
prints the trade-off the paper's Figure 10 shows: the longer the announce
interval, the lower the PSA waste -- and the later the AMR receives its new
nodes, so its end time grows.

Run with::

    python examples/announced_updates_amr.py
"""
from __future__ import annotations

from repro.experiments import EvaluationScale, run_scenario
from repro.experiments.runner import build_evolution
from repro.metrics import format_table


def main() -> None:
    # A small scale so the example finishes in a few seconds; use
    # EvaluationScale.reduced() or .paper() for the real experiment.
    scale = EvaluationScale.tiny()
    evolution = build_evolution(scale, seed=7)
    announce_intervals = [0.0, scale.psa1_task_duration / 2, scale.psa1_task_duration]

    rows = []
    baseline_end = None
    for interval in announce_intervals:
        result = run_scenario(
            scale,
            seed=7,
            overcommit=1.0,
            announce_interval=interval,
            evolution=evolution,
        )
        metrics = result.metrics
        if baseline_end is None:
            baseline_end = metrics.amr_end_time
        rows.append(
            (
                f"{interval:.0f} s",
                f"{metrics.amr_end_time:.0f} s",
                f"{100 * (metrics.amr_end_time / baseline_end - 1):+.1f}%",
                f"{metrics.psa_waste_node_seconds:.0f}",
                f"{metrics.used_resources_percent:.1f}%",
            )
        )

    print("Announced updates: the waste / end-time trade-off")
    print(f"(PSA task duration: {scale.psa1_task_duration:.0f} s)")
    print()
    print(
        format_table(
            [
                "announce interval",
                "AMR end time",
                "end-time increase",
                "PSA waste (node*s)",
                "used resources",
            ],
            rows,
        )
    )
    print()
    print(
        "Reading: with spontaneous updates (interval 0) the PSA loses work;\n"
        "once the announce interval reaches the task duration the waste\n"
        "vanishes, at the price of a slower AMR."
    )


if __name__ == "__main__":
    main()
