"""Unit tests of request sets and request trees."""
from __future__ import annotations

import pytest

from repro.core import (
    ApplicationRequests,
    ConstraintError,
    RelatedHow,
    Request,
    RequestError,
    RequestSet,
    RequestType,
)


def np_request(n=2, related_how=RelatedHow.FREE, related_to=None):
    return Request("c", n, 100, RequestType.NON_PREEMPTIBLE, related_how, related_to)


class TestRequestSet:
    def test_add_and_contains(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        r = np_request()
        rs.add(r)
        assert r in rs
        assert len(rs) == 1
        assert rs.get(r.request_id) is r

    def test_type_enforcement(self):
        rs = RequestSet(RequestType.PREEMPTIBLE)
        with pytest.raises(RequestError):
            rs.add(np_request())

    def test_duplicate_add_rejected(self):
        rs = RequestSet()
        r = np_request()
        rs.add(r)
        with pytest.raises(RequestError):
            rs.add(r)

    def test_remove_and_discard(self):
        rs = RequestSet()
        r = np_request()
        rs.add(r)
        rs.remove(r)
        assert r not in rs
        with pytest.raises(RequestError):
            rs.remove(r)
        rs.discard(r)  # no error

    def test_roots_and_children(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        root = np_request()
        child = np_request(related_how=RelatedHow.NEXT, related_to=root)
        grandchild = np_request(related_how=RelatedHow.COALLOC, related_to=child)
        other_root = np_request()
        for r in (root, child, grandchild, other_root):
            rs.add(r)
        assert set(r.request_id for r in rs.roots()) == {root.request_id, other_root.request_id}
        assert rs.children(root) == [child]
        assert rs.children(child) == [grandchild]
        assert rs.descendants(root) == [child, grandchild]

    def test_request_with_external_parent_is_root(self):
        external = np_request()
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        child = np_request(related_how=RelatedHow.NEXT, related_to=external)
        rs.add(child)
        assert rs.roots() == [child]

    def test_cycle_detection(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        a = np_request()
        b = np_request(related_how=RelatedHow.NEXT, related_to=a)
        rs.add(a)
        rs.add(b)
        # Build an artificial cycle.
        a.related_how = RelatedHow.NEXT
        a.related_to = b
        with pytest.raises(ConstraintError):
            rs.validate_constraints()

    def test_started_and_pending_filters(self):
        rs = RequestSet()
        a, b = np_request(), np_request()
        rs.add(a)
        rs.add(b)
        a.mark_started(1.0)
        assert rs.started() == [a]
        assert rs.pending() == [b]
        a.mark_finished(2.0)
        assert rs.started() == []
        assert rs.active_or_pending() == [b]

    def test_prune_finished_keeps_needed_parents(self):
        rs = RequestSet(RequestType.NON_PREEMPTIBLE)
        parent = np_request()
        child = np_request(related_how=RelatedHow.NEXT, related_to=parent)
        rs.add(parent)
        rs.add(child)
        parent.mark_started(0.0)
        parent.mark_finished(10.0)
        # The child is still pending, so the parent must be kept.
        assert rs.prune_finished() == []
        assert parent in rs
        child.mark_started(10.0)
        child.mark_finished(20.0)
        removed = rs.prune_finished()
        assert parent in removed and child in removed
        assert len(rs) == 0

    def test_total_requested_nodes_ignores_finished(self):
        rs = RequestSet()
        a, b = np_request(n=3), np_request(n=5)
        rs.add(a)
        rs.add(b)
        b.mark_finished(1.0)
        assert rs.total_requested_nodes() == 3


class TestApplicationRequests:
    def test_routing_by_type(self):
        app = ApplicationRequests("app1")
        pa = Request("c", 8, 100, RequestType.PREALLOCATION)
        np_ = Request("c", 4, 100, RequestType.NON_PREEMPTIBLE)
        p = Request("c", 2, 100, RequestType.PREEMPTIBLE)
        for r in (pa, np_, p):
            app.add(r)
        assert pa in app.preallocations
        assert np_ in app.non_preemptible
        assert p in app.preemptible
        assert {r.request_id for r in app.all_requests()} == {
            pa.request_id, np_.request_id, p.request_id
        }
        # app_id is stamped onto the requests
        assert pa.app_id == "app1"

    def test_find(self):
        app = ApplicationRequests("app1")
        r = Request("c", 4, 100, RequestType.PREEMPTIBLE)
        app.add(r)
        assert app.find(r.request_id) is r
        assert app.find(999_999) is None

    def test_set_for(self):
        app = ApplicationRequests("x")
        assert app.set_for(RequestType.PREALLOCATION) is app.preallocations
        assert app.set_for(RequestType.NON_PREEMPTIBLE) is app.non_preemptible
        assert app.set_for(RequestType.PREEMPTIBLE) is app.preemptible

    def test_prune_across_sets(self):
        app = ApplicationRequests("x")
        r1 = Request("c", 4, 100, RequestType.PREEMPTIBLE)
        r2 = Request("c", 4, 100, RequestType.NON_PREEMPTIBLE)
        app.add(r1)
        app.add(r2)
        r1.mark_finished(1.0)
        removed = app.prune_finished()
        assert removed == [r1]
        assert app.find(r2.request_id) is r2
