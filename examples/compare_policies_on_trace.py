#!/usr/bin/env python
"""Compare scheduling policies on one replayed SWF workload trace.

The core question of the paper is comparative -- does a smarter scheduling
policy beat a rigid batch RMS on the *same* workload?  The policy subsystem
makes that a one-campaign experiment:

1. **declare** a scenario that replays an SWF trace (here the tiny 18-field
   fixture from ``tests/data/``, clamped into a small cluster so the jobs
   actually contend);
2. **sweep** it over several registered policies with a policy x scenario
   campaign -- every policy variant derives the same seed, so all policies
   schedule byte-for-byte the same jobs;
3. **report** the per-policy metrics side by side from the result store.

Run with::

    PYTHONPATH=src python examples/compare_policies_on_trace.py

See ``python -m repro policy list`` for every registered policy, and
``python -m repro campaign run --scenarios trace-replay --policies ...``
for the equivalent CLI invocation.
"""
from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    PlatformSpec,
    ResultStore,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.metrics import format_table
from repro.policies import describe_policy

TRACE_PATH = Path(__file__).parent.parent / "tests" / "data" / "tiny.swf"

#: Deliberately smaller than the trace's 64-node jobs so the clamped jobs
#: queue up and the policies have decisions to disagree about.
CLUSTER_NODES = 16

POLICIES = ("coorm", "easy", "sjf", "largest-area")

#: The headline metrics worth comparing across policies.
METRICS = (
    "used_resources_percent",
    "total_allocated_node_seconds",
    "horizon",
    "trace_finished",
)


def main() -> None:
    print("policies under comparison:")
    for name in POLICIES:
        entry = describe_policy(name)
        stages = f"{entry['ordering']}/{entry['backfill']}/{entry['sharing']}"
        print(f"  {name:13s} {stages:40s} {entry['description']}")

    scenario = ScenarioSpec(
        name="swf-policy-compare",
        runner="amr_psa",
        description="tiny.swf replayed rigidly on a deliberately small cluster",
        platform=PlatformSpec(cluster_nodes=CLUSTER_NODES),
        workload=WorkloadSpec(
            include_amr=False,
            trace={
                "path": str(TRACE_PATH),
                "strict": False,  # the fixture contains archive quirks
                "transforms": [
                    {"kind": "filter"},  # drop records that cannot run
                    {"kind": "clamp_nodes", "max_nodes": CLUSTER_NODES},
                    {"kind": "shift_to_zero"},
                ],
            },
        ),
    )
    spec = CampaignSpec(
        name="swf-policy-compare",
        scenarios=(scenario,),
        seeds=1,
        policies=POLICIES,
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        result = CampaignRunner(spec, store=store).run()
        print(
            f"\nran {len(result.records)} runs "
            f"({len(POLICIES)} policies x {spec.seeds} seed) "
            f"in {result.elapsed_seconds:.2f}s"
        )
        matrix = store.policy_matrix(spec.name)["swf-policy-compare"]

    rows = []
    for metric in METRICS:
        rows.append(
            tuple(
                [metric]
                + [
                    f"{matrix[p].get(metric, float('nan')):g}"
                    for p in POLICIES
                ]
            )
        )
    print()
    print(format_table(["metric"] + list(POLICIES), rows))
    print(
        "\nSame trace, same seed, different policies -- any metric spread in"
        "\nthe table above is pure scheduling-policy effect."
    )


if __name__ == "__main__":
    main()
