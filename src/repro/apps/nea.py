"""The non-predictably evolving AMR application (paper Sections 4 and 5.1.1).

The application executes a fixed number of AMR steps.  Before each step it
only knows the *current* working-set size; it targets a parallel efficiency
(75 % in the paper) by adapting its node count with CooRMv2 updates:

* it opens a **pre-allocation** sized by the user's guess of the equivalent
  static allocation (the guess quality is the *overcommit factor*);
* inside the pre-allocation it keeps one **non-preemptible** request whose
  node count tracks the efficiency target, updated with *spontaneous* updates
  (announce interval 0) or *announced* updates (non-zero announce interval);
* in the **static** variant the application is forced to use all the
  pre-allocated nodes for the whole run (the baseline of Figure 9).
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from ..core.request import Request
from ..core.types import ClusterId, NodeId, RequestType, Time
from ..models.amr_evolution import WorkingSetEvolution
from ..models.speedup import PAPER_SPEEDUP_MODEL, SpeedupModel
from .base import BaseApplication

__all__ = ["AmrApplication", "AmrStepRecord"]


@dataclass(frozen=True)
class AmrStepRecord:
    """What happened during one AMR step (for analysis and tests)."""

    step: int
    start_time: Time
    duration: Time
    node_count: int
    data_size_mib: float

    @property
    def node_seconds(self) -> float:
        return self.node_count * self.duration


class AmrApplication(BaseApplication):
    """A synthetic AMR application driven by a working-set evolution.

    Parameters
    ----------
    name, cluster_id:
        Identification (see :class:`~repro.apps.base.BaseApplication`).
    evolution:
        The per-step working-set sizes.  The application reads them one step
        at a time (it cannot look ahead).
    preallocation_nodes:
        Size of the pre-allocation = the user's guess of the equivalent
        static allocation times the overcommit factor.
    target_efficiency:
        Parallel efficiency the application tries to maintain (0.75).
    announce_interval:
        0 for spontaneous updates; otherwise the announced-update interval in
        seconds (Section 5.3).
    static_allocation:
        When True the application uses all pre-allocated nodes for the whole
        run and never updates (the "static" curve of Figure 9).
    speedup_model:
        Step-duration model; defaults to the paper's fitted constants.
    preallocation_duration:
        Duration of the pre-allocation request; ``inf`` (default) keeps it
        open until the application completes.
    """

    def __init__(
        self,
        name: str,
        evolution: WorkingSetEvolution,
        preallocation_nodes: int,
        cluster_id: ClusterId = "cluster0",
        target_efficiency: float = 0.75,
        announce_interval: Time = 0.0,
        static_allocation: bool = False,
        speedup_model: SpeedupModel = PAPER_SPEEDUP_MODEL,
        preallocation_duration: Time = math.inf,
    ):
        super().__init__(name, cluster_id)
        if preallocation_nodes <= 0:
            raise ValueError("preallocation_nodes must be positive")
        if not 0 < target_efficiency <= 1:
            raise ValueError("target_efficiency must be in (0, 1]")
        if announce_interval < 0:
            raise ValueError("announce_interval must be non-negative")
        self.evolution = evolution
        self.preallocation_nodes = int(preallocation_nodes)
        self.target_efficiency = target_efficiency
        self.announce_interval = float(announce_interval)
        self.static_allocation = static_allocation
        self.speedup_model = speedup_model
        self.preallocation_duration = preallocation_duration

        # Protocol state.
        self.preallocation_request: Optional[Request] = None
        self.active_request: Optional[Request] = None
        self._pending_update_request: Optional[Request] = None
        self._submitted = False

        # Execution state.
        self.current_step = 0
        self.allocated_nodes = 0
        self.computation_started_at: Time = math.nan
        self.step_records: List[AmrStepRecord] = []
        self.used_node_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Sizing decisions
    # ------------------------------------------------------------------ #
    def required_nodes(self, step: int) -> int:
        """Node count the application wants for *step* (capped by the PA)."""
        if self.static_allocation:
            return self.preallocation_nodes
        size = self.evolution.size_at(step)
        wanted = self.speedup_model.nodes_for_efficiency(size, self.target_efficiency)
        return max(1, min(wanted, self.preallocation_nodes))

    # ------------------------------------------------------------------ #
    # Protocol callbacks
    # ------------------------------------------------------------------ #
    def on_views(self, non_preemptive, preemptive) -> None:
        super().on_views(non_preemptive, preemptive)
        if not self._submitted:
            self._submit_initial_requests()

    def _submit_initial_requests(self) -> None:
        """Send the pre-allocation and the first non-preemptible request."""
        self._submitted = True
        self.preallocation_request = self.submit(
            node_count=self.preallocation_nodes,
            duration=self.preallocation_duration,
            rtype=RequestType.PREALLOCATION,
        )
        self.active_request = self.submit(
            node_count=self.required_nodes(0),
            duration=math.inf,
            rtype=RequestType.NON_PREEMPTIBLE,
        )

    def on_start(self, request: Request, node_ids: FrozenSet[NodeId]) -> None:
        if request.rtype is RequestType.PREALLOCATION:
            return
        # A non-preemptible request started (initial request, spontaneous
        # replacement or the future part of an announced update).
        self.allocated_nodes = len(node_ids)
        self.active_request = request
        if request is self._pending_update_request:
            self._pending_update_request = None
        if math.isnan(self.computation_started_at):
            self.computation_started_at = self.now
            self._run_step()

    # ------------------------------------------------------------------ #
    # Step loop
    # ------------------------------------------------------------------ #
    def _run_step(self) -> None:
        if self.finished() or self.killed:
            return
        if self.current_step >= self.evolution.num_steps:
            self._complete()
            return
        size = self.evolution.size_at(self.current_step)
        nodes = max(1, self.allocated_nodes)
        duration = self.speedup_model.step_duration(nodes, size)
        self.step_records.append(
            AmrStepRecord(
                step=self.current_step,
                start_time=self.now,
                duration=duration,
                node_count=nodes,
                data_size_mib=size,
            )
        )
        self.used_node_seconds += nodes * duration
        self.rms.simulator.schedule(duration, self._step_finished)

    def _step_finished(self) -> None:
        if self.finished() or self.killed:
            return
        self.current_step += 1
        if self.current_step >= self.evolution.num_steps:
            self._complete()
            return
        if not self.static_allocation:
            self._maybe_update()
        self._run_step()

    def _maybe_update(self) -> None:
        """Adapt the non-preemptible request to the next step's needs."""
        if self._pending_update_request is not None:
            # Only one outstanding update at a time; the application keeps
            # computing on its current nodes until the update is served.
            return
        if self.active_request is None or not self.active_request.started():
            return
        required = self.required_nodes(self.current_step)
        if required == self.allocated_nodes:
            return
        if required < self.allocated_nodes or self.announce_interval <= 0:
            # Shrinking (release immediately) or spontaneous growth.
            new_request = self.spontaneous_update(self.active_request, required)
            self._pending_update_request = new_request
            if required < self.allocated_nodes:
                # The surviving nodes keep computing; account for the shrink
                # right away so the next step uses the reduced count.
                self.allocated_nodes = required
        else:
            # Announced growth: request the node count needed *now*; it will
            # only be granted after the announce interval (Section 5.3).
            bridge, future = self.announced_update(
                self.active_request, required, self.announce_interval
            )
            self._pending_update_request = future

    def _complete(self) -> None:
        """All steps done: terminate requests and close the session."""
        if self.active_request is not None and not self.active_request.finished():
            self.done(self.active_request)
        if self._pending_update_request is not None and not self._pending_update_request.finished():
            self.done(self._pending_update_request)
        if self.preallocation_request is not None and not self.preallocation_request.finished():
            self.done(self.preallocation_request)
        self.finish()

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def computation_time(self) -> float:
        """Wall-clock time from the first allocation to completion."""
        if math.isnan(self.computation_started_at) or not self.finished():
            return math.nan
        return self.finished_at - self.computation_started_at

    def mean_nodes(self) -> float:
        """Time-averaged allocated node count over the whole computation."""
        total_time = sum(rec.duration for rec in self.step_records)
        if total_time <= 0:
            return 0.0
        return self.used_node_seconds / total_time
