"""The main CooRMv2 scheduling algorithm (paper Algorithm 4).

Given the three request sets of every connected application (in connection
order) and the platform capacity, a scheduling pass

1. subtracts the resources held by started pre-allocations from the
   non-preemptible availability and the resources held by started
   non-preemptible requests from the preemptible availability;
2. for every application in connection order, computes its **non-preemptive
   view** (its own pre-allocated space plus the globally free space), fits
   its pending pre-allocations, then fits its pending non-preemptible
   requests inside its pre-allocated space;
3. equi-partitions the remaining resources among the preemptible requests of
   all applications (:func:`~repro.core.eqschedule.eq_schedule`), producing
   the per-application **preemptive views**;
4. reports which requests must start now.

Processing the applications in connection order and consuming the
availability view after each one yields Conservative Back-Filling of the
pre-allocations, as the paper prescribes.

One deliberate extension over the pseudo-code: pending non-preemptible
requests that do not fit inside the application's pre-allocations are fitted
into the globally free non-preemptible space instead, and that overflow is
charged against it.  This is the paper's "implicitly wrapped in
pre-allocations of the same size" rule (Section 3.2) and is what lets rigid
and moldable applications -- which never send pre-allocations -- be scheduled
at all.

The three behavioural choices above -- serve applications in connection
order, give every pending request a reservation, equi-partition the
remainder -- are policy *stages* supplied by :mod:`repro.policies`.  The
default policy (``coorm``) composes exactly those stages and reproduces
Algorithm 4; alternative registered policies swap the queue ordering, the
backfilling discipline or the sharing rule independently.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..obs import hooks as _obs
from ..policies.base import SchedulingContext
from ..policies.registry import DEFAULT_POLICY, STRICT_POLICY, resolve_policy
from .request import Request
from .request_set import ApplicationRequests
from .toview import to_view
from .types import ClusterId, Time
from .view import View

__all__ = ["ScheduleResult", "Scheduler"]

_OBS_EPS = 1e-9


def _classify_placements(pending: List[Request], now: Time) -> Dict[str, int]:
    """Outcome counts of one application's pending requests after a fit.

    ``start``: placed at (or before) *now* -- the request starts this pass;
    ``reserved``: placed at a finite future time (a backfill reservation);
    ``deferred``: left unplaced (``scheduled_at`` is infinite), e.g. EASY
    dropping the reservation of a non-head application.
    """
    started = reserved = deferred = 0
    for request in pending:
        if math.isinf(request.scheduled_at):
            deferred += 1
        elif request.scheduled_at <= now + _OBS_EPS:
            started += 1
        else:
            reserved += 1
    return {"start": started, "reserved": reserved, "deferred": deferred}


def _view_total_at(view: View, now: Time) -> float:
    """Total nodes a view offers at *now*, summed over its clusters."""
    return float(sum(view.value_at(cid, now) for cid in view.clusters()))


@dataclass
class ScheduleResult:
    """Outcome of one scheduling pass."""

    #: Application id -> non-preemptive view (pre-allocations + free space).
    non_preemptive_views: Dict[str, View] = field(default_factory=dict)
    #: Application id -> preemptive view (equi-partitioned remainder).
    preemptive_views: Dict[str, View] = field(default_factory=dict)
    #: Requests whose computed start time is not later than "now" and that
    #: have not been started yet; the RMS layer starts them and binds node IDs.
    to_start: List[Request] = field(default_factory=list)
    #: Time at which the pass ran.
    now: Time = 0.0


class Scheduler:
    """Stateless scheduling engine implementing Algorithm 4.

    Parameters
    ----------
    capacity:
        Mapping of cluster id to total node count of that cluster.
    strict_equipartition:
        When True (and no explicit *policy* is given), preemptible resources
        are shared with the *strict* equi-partitioning baseline instead of
        CooRMv2's equi-partitioning-with-filling (the Figure 11 comparison).
        Shorthand for ``policy="coorm-strict"``.
    policy:
        The :class:`~repro.policies.SchedulingPolicy` driving the pass --
        a policy object, a registered name, or a stage mapping (see
        :func:`repro.policies.resolve_policy`).  Defaults to ``"coorm"``,
        the composition that reproduces Algorithm 4 exactly.
    """

    def __init__(
        self,
        capacity: Mapping[ClusterId, int],
        strict_equipartition: bool = False,
        policy=None,
    ):
        if not capacity:
            raise ValueError("the platform needs at least one cluster")
        for cid, n in capacity.items():
            if n <= 0:
                raise ValueError(f"cluster {cid!r} must have a positive node count")
        self.capacity: Dict[ClusterId, int] = dict(capacity)
        if policy is None:
            policy = STRICT_POLICY if strict_equipartition else DEFAULT_POLICY
        self.policy = resolve_policy(policy)
        if strict_equipartition and self.policy.sharing.name != "strict-eq":
            # Both knobs were given and they disagree; running the policy's
            # sharing while the caller asked for the strict baseline would
            # silently corrupt a Figure 11-style comparison.
            raise ValueError(
                f"strict_equipartition=True conflicts with policy "
                f"{self.policy.name!r} (sharing {self.policy.sharing.name!r}); "
                f"drop the flag or use a strict-sharing policy such as "
                f"{STRICT_POLICY!r}"
            )
        self.strict_equipartition = self.policy.sharing.name == "strict-eq"
        # Views are immutable, so the full-platform view is built once and
        # handed out on every pass (it used to be rebuilt twice per pass).
        self._full_view = View.constant(self.capacity)

    # ------------------------------------------------------------------ #
    def set_capacity(self, capacity: Mapping[ClusterId, int]) -> None:
        """Replace the platform capacity (fault injection / elastic members).

        Unlike construction, zero is legal here: a whole-cluster outage
        leaves the scheduler with nothing to offer until capacity returns.
        """
        updated = {cid: int(n) for cid, n in capacity.items()}
        if not updated:
            raise ValueError("the platform needs at least one cluster")
        for cid, n in updated.items():
            if n < 0:
                raise ValueError(f"cluster {cid!r} cannot have negative capacity")
        self.capacity = updated
        self._full_view = View.constant(self.capacity)

    def full_view(self) -> View:
        """A view offering every node of every cluster forever."""
        return self._full_view

    def schedule(
        self,
        applications: Mapping[str, ApplicationRequests],
        now: Time,
        usage: Optional[Mapping[str, float]] = None,
    ) -> ScheduleResult:
        """Run one scheduling pass over *applications*.

        *applications* maps application id to its request sets in connection
        order; the policy's ordering stage decides the actual serving order
        (FCFS -- the default -- keeps the connection order, which yields the
        paper's conservative back-filling).  *usage* optionally carries the
        per-application consumed node-seconds for usage-aware orderings.
        """
        result = ScheduleResult(now=now)
        ctx = SchedulingContext(now=now, capacity=self.capacity, usage=usage or {})
        order = self.policy.ordering.order(applications, ctx)
        if sorted(order) != sorted(applications):
            raise ValueError(
                f"ordering stage {self.policy.ordering.name!r} did not return "
                "a permutation of the applications"
            )

        # Observability is gated once per pass; every argument recorded below
        # is a pure function of the simulation state (apps, counts, times --
        # never raw request ids, which come from a process-global counter).
        tracer = _obs.TRACER[0]
        metrics = _obs.METRICS[0]
        observing = tracer is not None or metrics is not None
        if observing:
            pending_total = sum(
                len(requests.preallocations.pending())
                + len(requests.non_preemptible.pending())
                for requests in applications.values()
            )
            if metrics is not None:
                metrics.inc("scheduler.passes")
                metrics.observe("scheduler.queue_depth", len(applications))
                metrics.observe("scheduler.pending_requests", pending_total)
            if tracer is not None:
                tracer.counter(
                    now,
                    "scheduler",
                    "queue_depth",
                    {"apps": len(applications), "pending": pending_total},
                )
                tracer.emit(
                    now,
                    "scheduler",
                    "order",
                    {
                        "ordering": self.policy.ordering.name,
                        "policy": self.policy.name,
                        "order": list(order),
                        "reordered": list(order) != list(applications),
                    },
                )

        # Line 1-2: scratch views start with the whole platform.
        available_non_preemptible = self.full_view()
        available_preemptible = self.full_view()

        started_pa_occ: Dict[str, View] = {}
        started_np_occ: Dict[str, View] = {}

        # Lines 3-5: subtract resources held by started requests.
        for app_id, requests in applications.items():
            pa_occ = to_view(requests.preallocations)
            np_occ = to_view(requests.non_preemptible)
            started_pa_occ[app_id] = pa_occ
            started_np_occ[app_id] = np_occ
            available_non_preemptible = available_non_preemptible - pa_occ
            available_preemptible = available_preemptible - np_occ
            # Started non-preemptible requests living outside any
            # pre-allocation (implicit wrapping) also consume
            # non-preemptible space.
            overflow_started = (np_occ - pa_occ).clip_low(0.0)
            if not overflow_started.is_zero():
                available_non_preemptible = available_non_preemptible - overflow_started

        # Lines 6-11: per-application pass, in policy queue order (FCFS =
        # connection order, the paper's conservative back-filling).
        backfill = self.policy.backfill
        head_seen = False
        for app_id in order:
            requests = applications[app_id]
            pa_occ = started_pa_occ[app_id]
            np_occ = started_np_occ[app_id]

            # The first application in queue order with pending work is the
            # queue head; EASY-style backfilling reserves only for it.
            has_pending = bool(requests.preallocations.pending()) or bool(
                requests.non_preemptible.pending()
            )
            is_head = has_pending and not head_seen
            head_seen = head_seen or has_pending

            if observing:
                pending_before = list(requests.preallocations.pending()) + list(
                    requests.non_preemptible.pending()
                )

            # Line 7: the application's non-preemptive view.
            view_np = (pa_occ + available_non_preemptible).clip_low(0.0)
            result.non_preemptive_views[app_id] = view_np

            # Line 8: fit pending pre-allocations into that view.
            occ_pending_pa = backfill.fit_pending(
                requests.preallocations, view_np, now, head_app=is_head
            )

            # Line 9: fit pending non-preemptible requests inside the
            # application's pre-allocated space (started + newly placed).
            # Applications that never sent a pre-allocation (rigid, moldable,
            # malleable minima) get the "implicit wrapping" treatment instead:
            # their non-preemptible requests are fitted into the globally free
            # non-preemptible space.
            pa_space = pa_occ + occ_pending_pa
            inside_pa = (pa_space - np_occ).clip_low(0.0)
            has_preallocations = bool(requests.preallocations.active_or_pending())
            if has_preallocations:
                fit_space = inside_pa
            else:
                free_space = (available_non_preemptible - occ_pending_pa).clip_low(0.0)
                fit_space = inside_pa + free_space
            occ_pending_np = backfill.fit_pending(
                requests.non_preemptible, fit_space, now, head_app=is_head
            )

            # Overflow of newly placed non-preemptible requests beyond the
            # pre-allocated space consumes non-preemptible availability too.
            overflow_pending = (occ_pending_np - inside_pa).clip_low(0.0)

            # Lines 10-11: consume the scratch views.
            available_non_preemptible = (
                available_non_preemptible - occ_pending_pa - overflow_pending
            )
            available_preemptible = available_preemptible - occ_pending_np

            if observing and pending_before:
                outcome = _classify_placements(pending_before, now)
                if metrics is not None:
                    metrics.inc("scheduler.fit_attempts", len(pending_before))
                    metrics.inc("scheduler.reservations", outcome["reserved"])
                    if not is_head:
                        # A non-head request starting now jumped the queue
                        # head: the classical definition of a backfill hit.
                        metrics.inc("scheduler.backfill_hits", outcome["start"])
                if tracer is not None:
                    tracer.emit(
                        now,
                        "scheduler",
                        "fit",
                        {
                            "app": app_id,
                            "head": is_head,
                            "backfill": backfill.name,
                            "free_now": _view_total_at(view_np, now),
                            **outcome,
                        },
                    )

        # Line 12: share the preemptible space (equi-partitioning by default).
        # Sharing always sees the applications in connection order -- queue
        # ordering governs the non-preemptive pass only.
        preemptible_sets = {
            app_id: requests.preemptible for app_id, requests in applications.items()
        }
        result.preemptive_views = self.policy.sharing.share(
            preemptible_sets,
            available_preemptible.clip_low(0.0),
            now,
        )

        # Lines 13-14: collect requests that must start now.
        for requests in applications.values():
            for r in requests.all_requests():
                if r.finished() or r.started():
                    continue
                if not math.isinf(r.scheduled_at) and r.scheduled_at <= now + 1e-9:
                    result.to_start.append(r)

        if observing:
            if metrics is not None:
                metrics.inc("scheduler.to_start", len(result.to_start))
            if tracer is not None:
                tracer.emit(
                    now,
                    "scheduler",
                    "share",
                    {
                        "sharing": self.policy.sharing.name,
                        "alloc": {
                            app_id: round(_view_total_at(view, now), 6)
                            for app_id, view in sorted(result.preemptive_views.items())
                        },
                    },
                )
                tracer.emit(
                    now,
                    "scheduler",
                    "to_start",
                    {
                        "count": len(result.to_start),
                        "apps": sorted({r.app_id for r in result.to_start}),
                    },
                )

        return result

    # ------------------------------------------------------------------ #
    def total_nodes(self) -> int:
        """Total node count over all clusters."""
        return sum(self.capacity.values())

    def __repr__(self) -> str:
        stages = self.policy.stage_names()
        return (
            f"Scheduler({self.capacity}, {self.policy.name}: "
            f"{stages['ordering']}/{stages['backfill']}/{stages['sharing']})"
        )
