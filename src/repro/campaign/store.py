"""Persistent, append-friendly storage of campaign results.

Layout (one directory per campaign under the store root)::

    <root>/
      <campaign>/
        campaign.json   # the CampaignSpec that produced the results
        runs.jsonl      # one JSON record per (scenario, replicate) run
        meta.json       # wall-clock / worker info of the last execution

``runs.jsonl`` is written deterministically: records are sorted by
(scenario order, replicate) and serialised with sorted keys, so two
executions of the same campaign produce **byte-identical** run files no
matter how many workers they used.  Everything non-deterministic (timings,
worker counts, timestamps) lives in ``meta.json``.
"""
from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..metrics.collector import median_summary
from ..obs import hooks as _obs
from ..obs.logsetup import get_logger
from .spec import CampaignSpec

__all__ = ["CampaignInfo", "ResultStore", "DEFAULT_RESULTS_DIR"]

#: Default store root, overridable with the ``REPRO_RESULTS_DIR`` variable.
DEFAULT_RESULTS_DIR = "results"

_RUNS_FILE = "runs.jsonl"
_SPEC_FILE = "campaign.json"
_META_FILE = "meta.json"


@dataclass(frozen=True)
class CampaignInfo:
    """Directory-listing summary of one stored campaign."""

    name: str
    run_count: int
    scenarios: Tuple[str, ...]
    path: str


def _record_sort_key(scenario_order: Mapping[str, int]):
    def key(record: Mapping) -> Tuple[int, str, int]:
        name = str(record.get("scenario", ""))
        return (scenario_order.get(name, len(scenario_order)), name, int(record.get("replicate", 0)))

    return key


class ResultStore:
    """JSON-lines result store rooted at a results directory."""

    def __init__(self, root: Union[str, Path, None] = None):
        if root is None:
            root = os.environ.get("REPRO_RESULTS_DIR", DEFAULT_RESULTS_DIR)
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def campaign_dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid campaign name: {name!r}")
        return self.root / name

    def runs_path(self, name: str) -> Path:
        return self.campaign_dir(name) / _RUNS_FILE

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def save_campaign(
        self,
        spec: CampaignSpec,
        records: Sequence[Mapping],
        meta: Optional[Mapping] = None,
        append: bool = False,
    ) -> Path:
        """Persist one campaign execution; returns the campaign directory.

        Records are re-ordered deterministically before writing.  With
        ``append=True`` new records are added after the existing ones (the
        per-execution block is still deterministically ordered), which keeps
        benchmark trajectories across repeated executions.
        """
        profiler = _obs.PROFILER[0]
        write_started = time.perf_counter() if profiler is not None else 0.0
        directory = self.campaign_dir(spec.name)
        directory.mkdir(parents=True, exist_ok=True)

        order = {
            variant.name: i for i, (variant, _base) in enumerate(spec.expanded_scenarios())
        }
        ordered = sorted(records, key=_record_sort_key(order))
        lines = "".join(
            json.dumps(dict(r), sort_keys=True, allow_nan=False) + "\n" for r in ordered
        )
        mode = "a" if append else "w"
        with open(directory / _RUNS_FILE, mode, encoding="utf-8") as fh:
            fh.write(lines)

        (directory / _SPEC_FILE).write_text(spec.to_json() + "\n", encoding="utf-8")
        if meta is not None:
            (directory / _META_FILE).write_text(
                json.dumps(dict(meta), indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
        if profiler is not None:
            profiler.add("store.write", time.perf_counter() - write_started)
        return directory

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def list_campaigns(self) -> List[CampaignInfo]:
        """Summaries of every campaign stored under the root, sorted by name."""
        if not self.root.is_dir():
            return []
        infos: List[CampaignInfo] = []
        for directory in sorted(self.root.iterdir()):
            if not (directory / _RUNS_FILE).is_file():
                continue
            records = self.load_records(directory.name)
            scenarios = tuple(
                dict.fromkeys(str(r.get("scenario", "")) for r in records)
            )
            infos.append(
                CampaignInfo(
                    name=directory.name,
                    run_count=len(records),
                    scenarios=scenarios,
                    path=str(directory),
                )
            )
        return infos

    def load_records(self, name: str) -> List[Dict]:
        """Every run record of a campaign, in file order."""
        path = self.runs_path(name)
        if not path.is_file():
            raise FileNotFoundError(
                f"campaign {name!r} has no runs at {path}; "
                f"known campaigns: {[i.name for i in self.list_campaigns()]}"
            )
        records: List[Dict] = []
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    # An interrupted append leaves a truncated trailing line;
                    # one lost record must not make the whole store unreadable.
                    get_logger("campaign").warning(
                        "%s:%d: skipping unparseable record (truncated write?)",
                        path,
                        lineno,
                    )
        return records

    def load_spec(self, name: str) -> Optional[CampaignSpec]:
        path = self.campaign_dir(name) / _SPEC_FILE
        if not path.is_file():
            return None
        return CampaignSpec.from_json(path.read_text(encoding="utf-8"))

    def load_meta(self, name: str) -> Optional[Dict]:
        """The last execution's ``meta.json``, or ``None`` when absent."""
        path = self.campaign_dir(name) / _META_FILE
        if not path.is_file():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def completed_unit_keys(self, name: str) -> Set[str]:
        """Idempotency keys of every run already stored for a campaign.

        The backbone of ``campaign run --resume`` on both backends: a task
        whose :func:`~repro.campaign.units.unit_key` is in this set already
        has a byte-final store row and is skipped.  Campaigns without any
        rows (or written before the ``unit`` field existed) yield an empty
        or partial set, which degrades safely to re-running.
        """
        if not self.runs_path(name).is_file():
            return set()
        keys: Set[str] = set()
        for record in self.load_records(name):
            unit = record.get("unit")
            if unit:
                keys.add(str(unit))
        return keys

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def summarize(
        self, name: str, records: Optional[Sequence[Mapping]] = None
    ) -> Dict[str, Dict[str, float]]:
        """Per-scenario medians over replicates: ``{scenario: {metric: median}}``.

        Pass *records* (from :meth:`load_records`) to analyse an
        already-loaded run file instead of re-reading it from disk.
        """
        by_scenario: Dict[str, List[Mapping]] = {}
        for record in records if records is not None else self.load_records(name):
            scenario = str(record.get("scenario", ""))
            by_scenario.setdefault(scenario, []).append(record.get("metrics", {}))
        return {
            scenario: median_summary(metrics)
            for scenario, metrics in by_scenario.items()
        }

    def obs_summary(
        self, name: str, records: Optional[Sequence[Mapping]] = None
    ) -> Dict[str, Dict[str, float]]:
        """Per-scenario medians of the recorded observability counters.

        Records carry an ``obs`` field only when the campaign ran with
        ``--obs``; scenarios without any such record are absent.  The
        snapshots are flat metric dicts, so the same median machinery that
        summarises simulation metrics applies unchanged.
        """
        by_scenario: Dict[str, List[Mapping]] = {}
        for record in records if records is not None else self.load_records(name):
            obs = record.get("obs")
            if isinstance(obs, Mapping):
                scenario = str(record.get("scenario", ""))
                by_scenario.setdefault(scenario, []).append(obs)
        return {
            scenario: median_summary(snapshots)
            for scenario, snapshots in by_scenario.items()
        }

    def slo_summary(
        self, name: str, records: Optional[Sequence[Mapping]] = None
    ) -> Dict[str, Dict[str, float]]:
        """Per-scenario medians of the recorded SLO verdicts.

        Records carry an ``slo`` field only when the campaign ran with
        ``--slo``; scenarios without any such record are absent.  The
        verdicts are flat metric dicts (``slo.passed`` is 1.0/0.0, so its
        median reads as "the majority of replicates passed"), summarised by
        the same median machinery as everything else.
        """
        by_scenario: Dict[str, List[Mapping]] = {}
        for record in records if records is not None else self.load_records(name):
            slo = record.get("slo")
            if isinstance(slo, Mapping):
                scenario = str(record.get("scenario", ""))
                by_scenario.setdefault(scenario, []).append(slo)
        return {
            scenario: median_summary(verdicts)
            for scenario, verdicts in by_scenario.items()
        }

    def provenance_of(
        self, name: str, records: Optional[Sequence[Mapping]] = None
    ) -> Dict[str, Dict]:
        """Per-scenario workload provenance: ``{scenario: provenance}``.

        Replicates of one scenario share their provenance except for
        derived-seed details, so the first record's provenance represents
        the scenario; scenarios without any recorded provenance are absent.
        Pass *records* to analyse an already-loaded run file.
        """
        provenance: Dict[str, Dict] = {}
        for record in records if records is not None else self.load_records(name):
            scenario = str(record.get("scenario", ""))
            if scenario in provenance:
                continue
            if isinstance(record.get("provenance"), Mapping):
                provenance[scenario] = dict(record["provenance"])
        return provenance

    def _matrix(
        self,
        name: str,
        records: Optional[Sequence[Mapping]],
        field: str,
        default: Optional[str],
    ) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Medians grouped by (base scenario, record *field*).

        *default* substitutes a missing/empty field value; ``None`` skips
        such records instead (no value to compare by).
        """
        grouped: Dict[str, Dict[str, List[Mapping]]] = {}
        for record in records if records is not None else self.load_records(name):
            value = str(record.get(field) or "") or default
            if value is None:
                continue
            base = str(record.get("base_scenario") or record.get("scenario", ""))
            grouped.setdefault(base, {}).setdefault(value, []).append(
                record.get("metrics", {})
            )
        return {
            base: {
                value: median_summary(metrics)
                for value, metrics in by_value.items()
            }
            for base, by_value in grouped.items()
        }

    def policy_matrix(
        self, name: str, records: Optional[Sequence[Mapping]] = None
    ) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Per-policy medians: ``{base_scenario: {policy: {metric: median}}}``.

        Groups the records of one campaign by their pre-expansion scenario
        name and the policy that produced them, so a policy-matrix campaign
        can be read as a side-by-side comparison.  Records written before
        the policy field existed count as the default policy.
        """
        return self._matrix(name, records, field="policy", default="coorm")

    def routing_matrix(
        self, name: str, records: Optional[Sequence[Mapping]] = None
    ) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Per-routing medians: ``{base_scenario: {routing: {metric: median}}}``.

        The federation counterpart of :meth:`policy_matrix`: groups the
        records of one campaign by their pre-expansion scenario name and
        the routing policy that placed their applications, so a routing x
        topology campaign reads as a side-by-side comparison.  Records of
        non-federated runs (no ``routing`` field, or an empty one) are
        skipped -- there is no routing to compare.
        """
        return self._matrix(name, records, field="routing", default=None)

    def compare(
        self, name_a: str, name_b: str
    ) -> List[Tuple[str, str, float, float, float]]:
        """Metric-by-metric comparison of two campaigns' medians.

        Returns ``(scenario, metric, a, b, b - a)`` rows for every metric
        present in both campaigns, in deterministic order.
        """
        summary_a = self.summarize(name_a)
        summary_b = self.summarize(name_b)
        rows: List[Tuple[str, str, float, float, float]] = []
        for scenario in sorted(set(summary_a) & set(summary_b)):
            metrics_a = summary_a[scenario]
            metrics_b = summary_b[scenario]
            for metric in sorted(set(metrics_a) & set(metrics_b)):
                a, b = metrics_a[metric], metrics_b[metric]
                rows.append((scenario, metric, a, b, b - a))
        return rows
