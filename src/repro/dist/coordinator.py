"""The distributed campaign coordinator.

The coordinator is the stateful side of the Component/CRM split: it owns
the durable :class:`~repro.dist.workqueue.WorkQueue` of campaign run units
and answers worker RPCs over whichever transport backend was configured.
Workers hold no campaign state at all -- they can crash, reconnect or be
added mid-campaign without coordination, because every unit is leased,
retried with backoff and deduplicated by idempotency key.

Determinism contract: the coordinator collects result records keyed by
their canonical unit *index*, so however leases interleave across workers,
:meth:`Coordinator.run` returns records in exactly the order the serial
runner would produce them.  The store-row bytes are therefore identical to
a pool run by construction; the integration suite checks this across all
three transports at one and four workers.

Queue, dispatch and ack events are traced on an :class:`EventTracer`
(timestamped with a logical event counter -- the coordinator has no
simulated clock) and mirrored into a :class:`MetricsRegistry`, so ``dist``
campaigns are inspectable with the same obs tooling as everything else.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..campaign.units import task_to_dict, unit_key
from ..obs.logsetup import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import EventTracer
from .transport import ChannelClosed, WorkerHandle, make_transport, reply_on
from .workqueue import WorkQueue

__all__ = ["DistConfig", "DistOutcome", "Coordinator"]

_LOG = get_logger("dist")


@dataclass
class DistConfig:
    """Tuning knobs of one distributed campaign execution."""

    #: Transport backend: ``thread`` | ``ipc`` | ``tcp``.
    transport: str = "thread"
    #: TCP bind endpoint (``host:port``; port 0 picks a free port).
    bind: str = "127.0.0.1:0"
    #: Seconds a lease stays valid without completion or heartbeat.
    lease_ttl: float = 30.0
    #: Attempts per unit before it is terminally failed.
    max_attempts: int = 4
    #: Exponential backoff: ``base * 2**(attempt-1)`` seconds, capped.
    backoff_base: float = 0.05
    backoff_cap: float = 5.0
    #: Coordinator poll granularity, seconds.
    poll_interval: float = 0.05
    #: Heartbeat interval handed to launched workers (0 disables).
    heartbeat_interval: float = 2.0
    #: Optional work-queue journal path (durable queue).
    journal: Optional[str] = None
    #: Chaos seam: worker index -> kill that worker after its Nth lease.
    kill_after_leases: Dict[int, int] = field(default_factory=dict)
    #: Seconds to wait for in-flight units after an interrupt.
    drain_timeout: float = 10.0
    #: Abort if no unit changes state for this long (hang protection).
    idle_timeout: float = 120.0


@dataclass
class DistOutcome:
    """What one coordinator run produced."""

    #: Completed result records, in canonical unit-index order.
    records: List[Dict]
    #: Flat ``dist_*`` counters + unit state counts (queue snapshot).
    stats: Dict[str, object]
    #: Unit keys that failed terminally (max attempts exhausted).
    failed: List[str]
    #: Unit keys skipped up front (already present in the store / journal).
    skipped: List[str]
    #: True when the run was interrupted and drained early.
    interrupted: bool


class Coordinator:
    """Owns the work queue; schedules run units onto workers over RPC."""

    def __init__(
        self,
        tasks: Sequence,
        config: Optional[DistConfig] = None,
        progress: Optional[Callable[[int, int, Dict], None]] = None,
        completed_keys: Optional[set] = None,
    ):
        self.config = config or DistConfig()
        self.progress = progress
        self.tracer = EventTracer()
        self.metrics = MetricsRegistry()
        self._clock = 0  # logical timestamp for trace events
        self.queue = WorkQueue(
            lease_ttl=self.config.lease_ttl,
            max_attempts=self.config.max_attempts,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            journal=self.config.journal,
        )
        self._records: Dict[int, Dict] = {}
        self._index_of: Dict[str, int] = {}
        self.skipped: List[str] = []
        done = set(completed_keys or ())
        for index, task in enumerate(tasks):
            key = unit_key(task)
            if key in done:
                self.skipped.append(key)
                continue
            self._index_of[key] = index
            self.queue.add(key, index, task_to_dict(task))
        self._stopping = False
        self._ends_by_worker: Dict[str, object] = {}
        self._transport = None

    def bind(self) -> str:
        """Create the transport now and return its bound endpoint.

        Binding eagerly (before :meth:`run`) lets callers learn the actual
        port when the configured bind uses port 0, so external workers can
        be pointed at the coordinator before it starts serving.
        """
        if self._transport is None:
            self._transport = make_transport(self.config.transport, self.config.bind)
        return self._transport.endpoint()

    # ------------------------------------------------------------------ #
    # Tracing helpers
    # ------------------------------------------------------------------ #
    def _trace(self, name: str, **args) -> None:
        ts = float(self._clock)
        self._clock += 1
        self.tracer.emit(ts, "dist", name, args=args)

    # ------------------------------------------------------------------ #
    # Protocol handlers
    # ------------------------------------------------------------------ #
    def _handle(self, end, message: Dict, now: float) -> bool:
        """Process one worker message; returns True on queue progress."""
        op = message.get("op")
        worker = str(message.get("worker", "?"))
        self._ends_by_worker[worker] = end
        if op == "lease":
            return self._handle_lease(end, worker, now)
        if op == "result":
            return self._handle_result(end, worker, message, now)
        if op == "error":
            return self._handle_error(end, worker, message, now)
        if op == "heartbeat":
            self.queue.heartbeat(worker, now)
            return False  # one-way; no reply, no progress
        if op == "status":
            self._safe_reply(end, {"op": "status", **self.queue.snapshot()})
            return False
        _LOG.warning("ignoring unknown op %r from %s", op, worker)
        return False

    def _handle_lease(self, end, worker: str, now: float) -> bool:
        if self._stopping or self.queue.all_done():
            self._safe_reply(end, {"op": "stop"})
            return False
        unit = self.queue.lease(worker, now)
        if unit is None:
            self._safe_reply(end, {"op": "wait"})
            return False
        self._trace("grant", key=unit.key, worker=worker, attempt=unit.attempts)
        self.metrics.inc("dist_grants")
        self._safe_reply(end, {"op": "grant", "key": unit.key, "task": unit.task})
        return True

    def _handle_result(self, end, worker: str, message: Dict, now: float) -> bool:
        key = str(message.get("key", ""))
        accepted = self.queue.complete(key, worker, now)
        if accepted:
            record = dict(message["record"])
            self._records[self._index_of[key]] = record
            self._trace("ack", key=key, worker=worker)
            self.metrics.inc("dist_acks")
            if self.progress is not None:
                # Same signature as the pool backend's progress callback.
                self.progress(len(self._records), len(self.queue), record)
        else:
            self._trace("dedup", key=key, worker=worker)
            self.metrics.inc("dist_dedup_hits")
        self._safe_reply(end, {"op": "ack"})
        return accepted

    def _handle_error(self, end, worker: str, message: Dict, now: float) -> bool:
        key = str(message.get("key", ""))
        error = str(message.get("error", ""))
        state = self.queue.fail(key, worker, now, error=error)
        self._trace("retry", key=key, worker=worker, state=state)
        self.metrics.inc("dist_errors")
        _LOG.warning("unit %s failed on %s (-> %s): %s", key, worker, state, error)
        self._safe_reply(end, {"op": "ack"})
        return True

    def _safe_reply(self, end, message: Dict) -> None:
        try:
            reply_on(end, message)
        except ChannelClosed:
            pass  # the poll loop will surface the EOF and release leases

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, workers: int) -> DistOutcome:
        """Execute the queue on *workers* launched workers.

        ``workers=0`` launches none and serves external workers only (the
        ``python -m repro dist coordinator`` mode).  Returns when every
        unit is done or terminally failed, or -- after an interrupt --
        when in-flight units drained or the drain deadline passed.
        """
        config = self.config
        transport = self._transport or make_transport(config.transport, config.bind)
        self._transport = None  # consumed; run() owns its lifetime now
        handles: List[WorkerHandle] = []
        self._ends_by_worker.clear()
        interrupted = False
        self._trace("queue", units=len(self.queue), skipped=len(self.skipped),
                    transport=config.transport, workers=workers)
        try:
            for i in range(workers):
                options = {
                    "poll_interval": config.poll_interval,
                    "heartbeat_interval": config.heartbeat_interval,
                    "kill_after_leases": config.kill_after_leases.get(i, 0),
                }
                handles.append(transport.launch_worker(f"w{i}", options))
            try:
                interrupted = self._serve(transport)
            except KeyboardInterrupt:
                interrupted = True
                self._stopping = True
                _LOG.warning("interrupted; draining in-flight units")
                self._drain(transport)
        finally:
            transport.close()
            for handle in handles:
                if handle.process is not None and handle.alive():
                    handle.process.terminate()
                handle.join(timeout=2.0)
        stats = self.queue.snapshot()
        self.metrics.gauge("dist_workers", float(workers))
        records = [self._records[i] for i in sorted(self._records)]
        failed = [u.key for u in self.queue.failed_units()]
        return DistOutcome(
            records=records,
            stats=stats,
            failed=failed,
            skipped=list(self.skipped),
            interrupted=interrupted,
        )

    def _serve(self, transport) -> bool:
        """Poll/dispatch until the queue drains; returns interrupted flag."""
        config = self.config
        last_progress = time.monotonic()
        while not self.queue.all_done():
            progressed = self._step(transport)
            now = time.monotonic()
            if progressed:
                last_progress = now
            elif now - last_progress > config.idle_timeout:
                counts = self.queue.counts()
                raise RuntimeError(
                    f"distributed campaign stalled: no unit changed state for "
                    f"{config.idle_timeout:.0f}s (queue: {counts})"
                )
        return False

    def _step(self, transport) -> bool:
        """One poll round; returns True when any unit changed state."""
        progressed = False
        now = time.monotonic()
        for end, message in transport.poll(self.config.poll_interval):
            if message is None:  # worker disconnected
                gone = [w for w, e in self._ends_by_worker.items() if e is end]
                for worker in gone:
                    del self._ends_by_worker[worker]
                    released = self.queue.release_worker(worker, time.monotonic())
                    for key in released:
                        self._trace("reclaim", key=key, worker=worker,
                                    reason="disconnect")
                        self.metrics.inc("dist_reclaims")
                    progressed = progressed or bool(released)
                continue
            progressed = self._handle(end, message, now) or progressed
        for key in self.queue.reclaim(time.monotonic()):
            self._trace("reclaim", key=key, reason="lease expired")
            self.metrics.inc("dist_reclaims")
            progressed = True
        return progressed

    def _drain(self, transport) -> None:
        """After an interrupt: accept in-flight results, grant nothing new."""
        deadline = time.monotonic() + self.config.drain_timeout
        while self.queue.leased_units() and time.monotonic() < deadline:
            try:
                self._step(transport)
            except KeyboardInterrupt:  # second ^C: stop draining immediately
                _LOG.warning("second interrupt; abandoning drain")
                return
