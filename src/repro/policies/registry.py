"""Named registries of policy stages and their compositions.

Mirrors :mod:`repro.campaign.registry`: stages and policies are registered
by name so that scenario specs and campaign files stay serialisable -- a
JSON spec only ever references policies by name (or by a ``{"ordering":
..., "backfill": ..., "sharing": ...}`` stage mapping).

Every lookup constructs *fresh* strategy instances, so two schedulers never
share stage state even when they run the same named policy.
"""
from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Union

from .backfill import BackfillStrategy, ConservativeBackfill, EasyBackfill
from .base import OrderingStrategy, SharingStrategy
from .ordering import (
    FairShareOrdering,
    FcfsOrdering,
    LargestAreaFirstOrdering,
    ShortestJobFirstOrdering,
)
from .policy import SchedulingPolicy
from .sharing import (
    EquipartitionSharing,
    StrictEquipartitionSharing,
    WeightedMaxMinSharing,
)

__all__ = [
    "DEFAULT_POLICY",
    "STRICT_POLICY",
    "register_ordering",
    "register_backfill",
    "register_sharing",
    "register_policy",
    "make_ordering",
    "make_backfill",
    "make_sharing",
    "get_policy",
    "resolve_policy",
    "policy_names",
    "ordering_names",
    "backfill_names",
    "sharing_names",
    "describe_policy",
]

#: The composition that reproduces the paper's Algorithm 4 exactly.
DEFAULT_POLICY = "coorm"
#: The Figure 11 baseline (Algorithm 4 with strict equi-partitioning).
STRICT_POLICY = "coorm-strict"

_ORDERINGS: Dict[str, Callable[[], OrderingStrategy]] = {}
_BACKFILLS: Dict[str, Callable[[], BackfillStrategy]] = {}
_SHARINGS: Dict[str, Callable[[], SharingStrategy]] = {}
#: Policy name -> {"ordering", "backfill", "sharing", "description"}.
_POLICIES: Dict[str, Dict[str, str]] = {}

PolicyLike = Union[None, str, Mapping, SchedulingPolicy]


def _register(table: Dict, kind: str, name: str, factory) -> None:
    if name in table:
        raise ValueError(f"{kind} {name!r} is already registered")
    table[name] = factory


def register_ordering(name: str, factory: Callable[[], OrderingStrategy]) -> None:
    _register(_ORDERINGS, "ordering strategy", name, factory)


def register_backfill(name: str, factory: Callable[[], BackfillStrategy]) -> None:
    _register(_BACKFILLS, "backfill strategy", name, factory)


def register_sharing(name: str, factory: Callable[[], SharingStrategy]) -> None:
    _register(_SHARINGS, "sharing strategy", name, factory)


def _make(table: Dict, kind: str, name: str):
    try:
        factory = table[name]
    except KeyError:
        raise KeyError(
            f"unknown {kind} {name!r}; known: {sorted(table)}"
        ) from None
    return factory()


def make_ordering(name: str) -> OrderingStrategy:
    return _make(_ORDERINGS, "ordering strategy", name)


def make_backfill(name: str) -> BackfillStrategy:
    return _make(_BACKFILLS, "backfill strategy", name)


def make_sharing(name: str) -> SharingStrategy:
    return _make(_SHARINGS, "sharing strategy", name)


def ordering_names() -> List[str]:
    return sorted(_ORDERINGS)


def backfill_names() -> List[str]:
    return sorted(_BACKFILLS)


def sharing_names() -> List[str]:
    return sorted(_SHARINGS)


def register_policy(
    name: str,
    ordering: str,
    backfill: str,
    sharing: str,
    description: str = "",
) -> None:
    """Register a named composition of already-registered stages."""
    for kind, table, stage in (
        ("ordering strategy", _ORDERINGS, ordering),
        ("backfill strategy", _BACKFILLS, backfill),
        ("sharing strategy", _SHARINGS, sharing),
    ):
        if stage not in table:
            raise KeyError(f"unknown {kind} {stage!r}; known: {sorted(table)}")
    _register(
        _POLICIES,
        "scheduling policy",
        name,
        {
            "ordering": ordering,
            "backfill": backfill,
            "sharing": sharing,
            "description": description,
        },
    )


def policy_names() -> List[str]:
    return sorted(_POLICIES)


def describe_policy(name: str) -> Dict[str, str]:
    """The registered stage composition of *name* (a copy, safe to mutate)."""
    try:
        return dict(_POLICIES[name])
    except KeyError:
        raise KeyError(
            f"unknown scheduling policy {name!r}; known policies: {policy_names()}"
        ) from None


def get_policy(name: str) -> SchedulingPolicy:
    """Build a fresh :class:`SchedulingPolicy` for a registered name."""
    entry = describe_policy(name)
    return SchedulingPolicy(
        name=name,
        ordering=make_ordering(entry["ordering"]),
        backfill=make_backfill(entry["backfill"]),
        sharing=make_sharing(entry["sharing"]),
        description=entry["description"],
    )


def resolve_policy(spec: PolicyLike) -> SchedulingPolicy:
    """Turn a policy reference into a :class:`SchedulingPolicy` instance.

    Accepts ``None`` (the default policy), a registered policy name, an
    explicit stage mapping (``{"ordering": ..., "backfill": ...,
    "sharing": ...}``, each stage optional and defaulting to the paper's)
    or an already-built policy object.
    """
    if spec is None:
        return get_policy(DEFAULT_POLICY)
    if isinstance(spec, SchedulingPolicy):
        return spec
    if isinstance(spec, str):
        return get_policy(spec)
    if isinstance(spec, Mapping):
        default = describe_policy(DEFAULT_POLICY)
        unknown = set(spec) - {"name", "ordering", "backfill", "sharing", "description"}
        if unknown:
            raise ValueError(f"policy mapping has unknown key(s): {sorted(unknown)}")
        return SchedulingPolicy(
            name=str(spec.get("name", "custom")),
            ordering=make_ordering(str(spec.get("ordering", default["ordering"]))),
            backfill=make_backfill(str(spec.get("backfill", default["backfill"]))),
            sharing=make_sharing(str(spec.get("sharing", default["sharing"]))),
            description=str(spec.get("description", "")),
        )
    raise TypeError(f"cannot resolve a scheduling policy from {spec!r}")


def policy_label(spec: PolicyLike) -> str:
    """The display/record name of a policy reference (without building stages
    when a plain registered name is given)."""
    if spec is None:
        return DEFAULT_POLICY
    if isinstance(spec, str):
        describe_policy(spec)  # validate
        return spec
    return resolve_policy(spec).name


# --------------------------------------------------------------------- #
# Built-in stages and policies
# --------------------------------------------------------------------- #
register_ordering("fcfs", FcfsOrdering)
register_ordering("sjf", ShortestJobFirstOrdering)
register_ordering("largest-area", LargestAreaFirstOrdering)
register_ordering("fair-share", FairShareOrdering)

register_backfill("conservative", ConservativeBackfill)
register_backfill("easy", EasyBackfill)

register_sharing("eq-filling", EquipartitionSharing)
register_sharing("strict-eq", StrictEquipartitionSharing)
register_sharing("maxmin-weighted", WeightedMaxMinSharing)

register_policy(
    DEFAULT_POLICY,
    ordering="fcfs",
    backfill="conservative",
    sharing="eq-filling",
    description="The paper's Algorithm 4: conservative back-filling of the "
    "pre-allocations in connection order + equi-partitioning with filling",
)
register_policy(
    STRICT_POLICY,
    ordering="fcfs",
    backfill="conservative",
    sharing="strict-eq",
    description="Algorithm 4 with the strict equi-partitioning baseline of "
    "Figure 11 (no filling of idle preemptible resources)",
)
register_policy(
    "easy",
    ordering="fcfs",
    backfill="easy",
    sharing="eq-filling",
    description="EASY aggressive backfilling: only the queue head holds a "
    "reservation, everything else backfills or waits",
)
register_policy(
    "sjf",
    ordering="sjf",
    backfill="conservative",
    sharing="eq-filling",
    description="Shortest-job-first queue ordering with conservative "
    "back-filling",
)
register_policy(
    "largest-area",
    ordering="largest-area",
    backfill="conservative",
    sharing="eq-filling",
    description="Largest-area-first queue ordering: big jobs reserve early, "
    "small jobs backfill around them",
)
register_policy(
    "fair-share",
    ordering="fair-share",
    backfill="conservative",
    sharing="eq-filling",
    description="Fair-share queue ordering by accumulated node-seconds from "
    "the accountant: light consumers are served first",
)
register_policy(
    "maxmin-weighted",
    ordering="fcfs",
    backfill="conservative",
    sharing="maxmin-weighted",
    description="Algorithm 4 ordering/backfilling with weighted max-min "
    "fair sharing of the preemptible capacity",
)
