#!/usr/bin/env python
"""Efficient resource filling with two PSAs (paper Section 5.4).

The holes an evolving application leaves behind are often too short for a
PSA with long tasks to exploit.  CooRMv2's equi-partitioning *with filling*
offers those resources to another PSA with shorter tasks; the strict
equi-partitioning baseline does not, and the holes stay idle.

This example runs both policies on the same workload -- one AMR application,
one PSA with long tasks and one PSA with short tasks -- and prints the
resulting resource usage (the comparison of the paper's Figure 11).

Run with::

    python examples/resource_filling_two_psas.py
"""
from __future__ import annotations

from repro.experiments import EvaluationScale, run_scenario
from repro.experiments.runner import build_evolution
from repro.metrics import format_table


def main() -> None:
    scale = EvaluationScale.tiny()
    evolution = build_evolution(scale, seed=11)
    task_durations = (scale.psa1_task_duration, scale.psa2_task_duration)
    announce = scale.psa1_task_duration / 2

    rows = []
    for label, strict in (("equi-partitioning + filling (CooRMv2)", False),
                          ("strict equi-partitioning (baseline)", True)):
        result = run_scenario(
            scale,
            seed=11,
            overcommit=1.0,
            announce_interval=announce,
            psa_task_durations=task_durations,
            strict_equipartition=strict,
            evolution=evolution,
        )
        long_psa, short_psa = result.psas
        rows.append(
            (
                label,
                f"{result.metrics.used_resources_percent:.1f}%",
                long_psa.stats.completed_tasks,
                short_psa.stats.completed_tasks,
                f"{result.metrics.psa_waste_node_seconds:.0f}",
            )
        )

    print("Two PSAs sharing the resources an AMR application leaves unused")
    print(
        f"(PSA1 tasks: {task_durations[0]:.0f} s, PSA2 tasks: {task_durations[1]:.0f} s, "
        f"announce interval: {announce:.0f} s)"
    )
    print()
    print(
        format_table(
            [
                "sharing policy",
                "used resources",
                "PSA1 tasks done",
                "PSA2 tasks done",
                "waste (node*s)",
            ],
            rows,
        )
    )
    print()
    print(
        "Reading: under the filling policy the short-task PSA2 completes many\n"
        "more tasks because it can use the holes PSA1 cannot, so the overall\n"
        "resource usage is higher than under strict equi-partitioning."
    )


if __name__ == "__main__":
    main()
