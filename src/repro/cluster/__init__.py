"""Cluster substrate: nodes, clusters and the multi-cluster platform."""
from .node import Node, NodeState
from .cluster import Cluster
from .platform import Platform
from .energy import EnergyModel, EnergyReport, energy_report

__all__ = [
    "Node",
    "NodeState",
    "Cluster",
    "Platform",
    "EnergyModel",
    "EnergyReport",
    "energy_report",
]
