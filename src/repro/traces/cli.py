"""The ``python -m repro trace`` command group.

Commands::

    python -m repro trace info TRACE.swf[.gz] [--lenient]
    python -m repro trace convert TRACE.swf OUT.swf[.gz] [transform flags]
    python -m repro trace synth OUT.swf[.gz] --jobs 200 --seed 7 [model flags]

``info`` prints the header directives and summary statistics of a trace;
``convert`` applies a transformation chain (and optionally an adaptive-kind
mix preview) and writes the result; ``synth`` draws a synthetic trace from a
statistical model.  All commands read and write gzip-compressed traces
transparently based on the file suffix.
"""
from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List

from ..core.errors import WorkloadError
from ..metrics.report import format_table
from ..obs.logsetup import get_logger
from .convert import AdaptiveMix, convert_trace, mix_counts
from .models import (
    DailyCycleArrivals,
    LogNormalDuration,
    LogUniformNodes,
    PoissonArrivals,
    TraceModel,
)
from .swf import Trace, dump_swf, load_swf
from .transform import (
    ClampNodes,
    FilterJobs,
    LoadRescale,
    Pipeline,
    ShiftToZero,
    TimeWindow,
)

__all__ = ["add_trace_commands", "run_trace_command"]

_LOG = get_logger("trace")


def add_trace_commands(commands: argparse._SubParsersAction) -> None:
    """Attach the ``trace`` command group to the top-level CLI parser."""
    trace = commands.add_parser("trace", help="inspect, transform and synthesize workload traces")
    actions = trace.add_subparsers(dest="action", required=True)

    info = actions.add_parser("info", help="print header directives and job statistics")
    info.add_argument("path", help="SWF trace file (.swf or .swf.gz)")
    info.add_argument(
        "--lenient", action="store_true",
        help="skip malformed job lines instead of failing",
    )
    info.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON",
    )

    convert = actions.add_parser(
        "convert", help="transform a trace and write the result"
    )
    convert.add_argument("path", help="input SWF trace file")
    convert.add_argument("output", help="output SWF trace file (.gz compresses)")
    convert.add_argument(
        "--lenient", action="store_true",
        help="skip malformed job lines instead of failing",
    )
    convert.add_argument(
        "--window", nargs=2, type=float, metavar=("START", "END"),
        help="keep jobs submitted in [START, END) seconds",
    )
    convert.add_argument(
        "--load-factor", type=float, default=None,
        help="rescale the offered load (2 doubles it, 0.5 halves it)",
    )
    convert.add_argument(
        "--clamp-nodes", type=int, default=None,
        help="clamp job node counts to this cluster size",
    )
    convert.add_argument(
        "--min-duration", type=float, default=None,
        help="drop jobs shorter than this many seconds",
    )
    convert.add_argument(
        "--drop-invalid", action="store_true",
        help="drop records that cannot run (unknown size or duration)",
    )
    convert.add_argument(
        "--shift-to-zero", action="store_true",
        help="re-base submit times so the first job arrives at t=0",
    )
    convert.add_argument(
        "--mix", default=None,
        help='preview an adaptive conversion, e.g. "rigid=0.5,malleable=0.5"',
    )

    synth = actions.add_parser(
        "synth", help="synthesize a trace from a statistical model"
    )
    synth.add_argument("output", help="output SWF trace file (.gz compresses)")
    synth.add_argument("--jobs", type=int, default=200, help="number of jobs")
    synth.add_argument("--seed", type=int, default=0, help="synthesis seed")
    synth.add_argument(
        "--arrivals", choices=("poisson", "daily"), default="poisson",
        help="arrival process (constant-rate Poisson or daily cycle)",
    )
    synth.add_argument(
        "--mean-interarrival", type=float, default=300.0,
        help="mean seconds between submissions",
    )
    synth.add_argument(
        "--max-nodes", type=int, default=128, help="largest node count drawn"
    )
    synth.add_argument(
        "--median-runtime", type=float, default=1800.0,
        help="median job runtime, seconds",
    )
    synth.add_argument(
        "--fit-from", default=None,
        help="fit the model from this SWF trace instead of the flags above",
    )


def _trace_summary_rows(trace: Trace) -> List[tuple]:
    rigid = trace.to_rigid_jobs()
    rows = [
        ("jobs", trace.job_count),
        ("runnable jobs", len(rigid)),
        ("max nodes", trace.max_nodes),
        ("span (s)", round(trace.span, 3)),
        ("total node-seconds", round(trace.total_area(), 3)),
    ]
    if trace.skipped_lines:
        rows.append(("skipped lines", trace.skipped_lines))
    if rigid:
        rows.append(
            ("mean interarrival (s)",
             round(trace.span / max(1, len(rigid) - 1), 3))
        )
    return rows


def _cmd_info(args: argparse.Namespace) -> int:
    trace = load_swf(args.path, strict=not args.lenient)
    if args.json:
        payload = {
            "directives": dict(trace.header.directives),
            "comments": list(trace.header.comments),
            "summary": {str(k): v for k, v in _trace_summary_rows(trace)},
            "provenance": trace.provenance_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if trace.header.comments:
        for comment in trace.header.comments:
            print(f"; {comment}")
    if trace.header.directives:
        print(format_table(
            ["directive", "value"], sorted(trace.header.directives.items())
        ))
        print()
    print(format_table(["statistic", "value"], _trace_summary_rows(trace)))
    return 0


def _pipeline_from_args(args: argparse.Namespace) -> Pipeline:
    steps = []
    # No filter flags -> a lossless copy; real archive traces are full of
    # unknown-runtime records that only an explicit flag may drop.
    if args.min_duration is not None or args.drop_invalid:
        steps.append(
            FilterJobs(
                min_duration=args.min_duration, require_valid=args.drop_invalid
            )
        )
    if args.window is not None:
        steps.append(TimeWindow(start=args.window[0], end=args.window[1]))
    if args.load_factor is not None:
        steps.append(LoadRescale(factor=args.load_factor))
    if args.clamp_nodes is not None:
        steps.append(ClampNodes(max_nodes=args.clamp_nodes))
    if args.shift_to_zero:
        steps.append(ShiftToZero())
    return Pipeline(steps=tuple(steps))


def _cmd_convert(args: argparse.Namespace) -> int:
    trace = load_swf(args.path, strict=not args.lenient)
    before = trace.job_count
    trace = _pipeline_from_args(args).apply(trace)
    dump_swf(trace, args.output)
    _LOG.info(
        "wrote %d jobs (%d dropped) to %s",
        trace.job_count,
        before - trace.job_count,
        args.output,
    )
    if args.mix is not None:
        mix = AdaptiveMix.parse(args.mix)
        converted = convert_trace(trace, mix=mix, seed=0)
        counts = mix_counts(converted)
        print(format_table(["kind", "jobs"], sorted(counts.items())))
    return 0


def _model_from_args(args: argparse.Namespace) -> TraceModel:
    if args.fit_from:
        return TraceModel.fit(
            load_swf(args.fit_from, strict=False),
            daily_cycle=args.arrivals == "daily",
        )
    if args.mean_interarrival <= 0:
        raise WorkloadError("--mean-interarrival must be positive")
    rate = 1.0 / args.mean_interarrival
    arrivals = (
        DailyCycleArrivals(mean_rate=rate)
        if args.arrivals == "daily"
        else PoissonArrivals(rate=rate)
    )
    return TraceModel(
        arrivals=arrivals,
        durations=LogNormalDuration(log_mean=math.log(args.median_runtime)),
        nodes=LogUniformNodes(max_nodes=args.max_nodes),
    )


def _cmd_synth(args: argparse.Namespace) -> int:
    model = _model_from_args(args)
    trace = model.synthesize(args.jobs, seed=args.seed)
    dump_swf(trace, args.output)
    _LOG.info(
        "synthesized %d jobs (span %.0fs, max %d nodes) to %s",
        trace.job_count,
        trace.span,
        trace.max_nodes,
        args.output,
    )
    return 0


def run_trace_command(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``trace`` command (entry point used by the CLI)."""
    handlers = {"info": _cmd_info, "convert": _cmd_convert, "synth": _cmd_synth}
    try:
        return handlers[args.action](args)
    except (WorkloadError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
