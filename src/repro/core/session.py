"""Application sessions held by the RMS.

A session ties together an application object (the callback side of the
protocol), the application's three request sets and its connection metadata.
Sessions are ordered by connection time; the scheduler processes them in that
order, which is what gives earlier applications priority (Section 3.2:
"Applications are sorted in a list based on the time the applications
connected to the RMS").
"""
from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Protocol, runtime_checkable

from .request import Request
from .request_set import ApplicationRequests
from .types import NodeId, Time
from .view import View

__all__ = ["ApplicationProtocol", "Session"]


@runtime_checkable
class ApplicationProtocol(Protocol):
    """What the RMS expects from an application object.

    Application classes in :mod:`repro.apps` implement this; any object with
    these three methods can participate in a simulation.
    """

    def on_views(self, non_preemptive: View, preemptive: View) -> None:
        """New views were pushed by the RMS."""

    def on_start(self, request: Request, node_ids: FrozenSet[NodeId]) -> None:
        """A request started; *node_ids* is empty for pre-allocations."""

    def on_killed(self, reason: str) -> None:
        """The RMS terminated the session (protocol violation)."""


class Session:
    """State the RMS keeps for one connected application."""

    def __init__(self, app_id: str, application: ApplicationProtocol, connected_at: Time):
        self.app_id = app_id
        self.application = application
        self.connected_at = connected_at
        self.requests = ApplicationRequests(app_id)
        self.alive = True
        self.kill_reason: Optional[str] = None
        #: Last views pushed to the application (used to push only on change).
        self.last_non_preemptive_view: Optional[View] = None
        self.last_preemptive_view: Optional[View] = None
        #: Nodes currently held by the application, per cluster.
        self.held_nodes: Dict[str, FrozenSet[NodeId]] = {}

    # ------------------------------------------------------------------ #
    def holds(self, cluster_id: str) -> FrozenSet[NodeId]:
        """Node IDs currently held on *cluster_id*."""
        return self.held_nodes.get(cluster_id, frozenset())

    def add_nodes(self, cluster_id: str, node_ids: FrozenSet[NodeId]) -> None:
        self.held_nodes[cluster_id] = self.holds(cluster_id) | node_ids

    def remove_nodes(self, cluster_id: str, node_ids: FrozenSet[NodeId]) -> None:
        self.held_nodes[cluster_id] = self.holds(cluster_id) - frozenset(node_ids)

    def held_count(self, cluster_id: str) -> int:
        return len(self.holds(cluster_id))

    # ------------------------------------------------------------------ #
    def preemptible_held_count(self, cluster_id: str) -> int:
        """Nodes held through *started* preemptible requests on one cluster."""
        total = 0
        for r in self.requests.preemptible:
            if r.started() and not r.finished() and r.cluster_id == cluster_id:
                total += len(r.node_ids)
        return total

    def views_changed(self, non_preemptive: View, preemptive: View) -> bool:
        """True if the views differ from the last pushed ones."""
        return (
            self.last_non_preemptive_view != non_preemptive
            or self.last_preemptive_view != preemptive
        )

    def remember_views(self, non_preemptive: View, preemptive: View) -> None:
        self.last_non_preemptive_view = non_preemptive
        self.last_preemptive_view = preemptive

    def kill(self, reason: str) -> None:
        self.alive = False
        self.kill_reason = reason

    def __repr__(self) -> str:
        state = "alive" if self.alive else f"killed ({self.kill_reason})"
        return f"Session({self.app_id!r}, connected_at={self.connected_at:g}, {state})"
