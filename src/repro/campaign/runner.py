"""Parallel, deterministic execution of campaigns.

The runner fans the (scenario x replicate) grid of a
:class:`~repro.campaign.spec.CampaignSpec` out over a
:mod:`multiprocessing` pool.  Reproducibility is guaranteed by
construction:

* the seed of every run is ``derive_seed(root_seed, scenario.name,
  replicate)`` -- a pure function of the spec, independent of worker count
  and scheduling order;
* every run is an isolated simulation (no shared mutable state);
* results are re-ordered into the spec's canonical (scenario, replicate)
  order before they are persisted.

Consequently ``workers=1`` and ``workers=N`` produce byte-identical run
records, which the integration tests assert.
"""
from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional

from ..obs import EventTracer, MetricsRegistry, PhaseProfiler, observe
from ..sim.randomness import derive_seed
from . import builtin  # noqa: F401  (registers the built-in runners)
from .registry import consume_provenance, get_runner
from .spec import CampaignSpec, ScenarioSpec
from .store import ResultStore

__all__ = ["RunTask", "CampaignResult", "CampaignRunner", "trace_filename"]

#: Progress callback: called with (completed, total, record) per finished run.
ProgressFn = Callable[[int, int, Mapping], None]


@dataclass(frozen=True)
class RunTask:
    """One cell of the (policy x) scenario x replicate grid."""

    scenario: ScenarioSpec
    replicate: int
    seed: int
    #: Name of the scenario before policy-matrix expansion (equals
    #: ``scenario.name`` when no policy matrix is active).  The seed is
    #: always derived from this name so every policy variant replays the
    #: same workload.
    base_scenario: str = ""
    #: Collect per-run observability (metrics snapshot into the record's
    #: ``obs`` field, wall-clock phases aggregated into ``meta.json``).
    collect_obs: bool = False
    #: When non-empty, write the run's deterministic JSONL event trace to
    #: ``<trace_dir>/<scenario>_r<replicate>.trace.jsonl``.
    trace_dir: str = ""
    #: When non-empty, evaluate the run against an SLO spec (``"default"``
    #: or a path to a spec JSON file) and persist the flat verdict in the
    #: record's ``slo`` field.  Implies tracing the run in memory.
    slo_spec: str = ""


@dataclass
class CampaignResult:
    """Everything one campaign execution produced."""

    spec: CampaignSpec
    records: List[Dict]
    elapsed_seconds: float
    workers: int
    store_path: Optional[str] = None

    def metrics_of(self, scenario: str, replicate: int = 0) -> Dict:
        for record in self.records:
            if record["scenario"] == scenario and record["replicate"] == replicate:
                return record["metrics"]
        raise KeyError(f"no record for scenario {scenario!r} replicate {replicate}")


def trace_filename(scenario: str, replicate: int) -> str:
    """Canonical trace file name of one run (pure function of the task)."""
    return f"{scenario}_r{replicate}.trace.jsonl"


def _resolve_slo(name: str):
    """``"default"`` or a spec-file path -> :class:`~repro.obs.slo.SLOSpec`."""
    from ..obs.slo import DEFAULT_SLO, SLOSpec

    if name == "default":
        return DEFAULT_SLO
    return SLOSpec.load(name)


def _execute_task(task: RunTask) -> Dict:
    """Run one task in the current process (also the pool worker body)."""
    runner = get_runner(task.scenario.runner)
    consume_provenance()  # drop leftovers from any previous run
    observing = task.collect_obs or bool(task.trace_dir) or bool(task.slo_spec)
    tracer = EventTracer() if (task.trace_dir or task.slo_spec) else None
    registry = MetricsRegistry() if task.collect_obs else None
    profiler = PhaseProfiler() if task.collect_obs else None
    if observing:
        with observe(tracer=tracer, metrics=registry, profiler=profiler):
            metrics = dict(runner(task.scenario, task.seed))
    else:
        metrics = dict(runner(task.scenario, task.seed))
    record = {
        "scenario": task.scenario.name,
        "base_scenario": task.base_scenario or task.scenario.name,
        "policy": task.scenario.policy_name,
        # Federation columns: empty strings on the single-cluster path, so
        # federated and classic records stay byte-stable side by side.
        "routing": task.scenario.routing_name,
        "topology": task.scenario.topology_label,
        "replicate": task.replicate,
        "seed": task.seed,
        "runner": task.scenario.runner,
        "scale": task.scenario.scale,
        "metrics": metrics,
    }
    # Workload provenance (trace fingerprint, model parameters, transform
    # chain) published by the runner rides along in the persisted record.
    provenance = consume_provenance()
    if provenance is not None:
        record["provenance"] = provenance
    if registry is not None:
        # Deterministic: snapshots are pure functions of the simulation,
        # so they may live in the byte-stable run records.
        record["obs"] = registry.snapshot()
    if profiler is not None and len(profiler):
        # Wall-clock: the parent pops this out and aggregates it into
        # meta.json; it must never be persisted in runs.jsonl.
        record["_phase_seconds"] = profiler.snapshot()
    if tracer is not None and task.slo_spec:
        # Deterministic analytics over the in-memory trace: audits and a
        # timeline are pure functions of the event stream, so the flat SLO
        # verdict may live in the byte-stable run records.
        from ..obs.lifecycle import build_audits
        from ..obs.slo import evaluate_slo
        from ..obs.timeline import TimelineBuilder

        audits = build_audits(tracer.events)
        timeline = TimelineBuilder().build(tracer.events)
        record["slo"] = evaluate_slo(
            _resolve_slo(task.slo_spec), audits, timeline
        ).to_flat()
    if tracer is not None and task.trace_dir:
        directory = Path(task.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / trace_filename(task.scenario.name, task.replicate)
        path.write_text(tracer.to_jsonl(), encoding="utf-8")
    return record


class CampaignRunner:
    """Executes a campaign, optionally persisting into a result store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressFn] = None,
        collect_obs: bool = False,
        trace_dir: Optional[str] = None,
        slo_spec: Optional[str] = None,
    ):
        self.spec = spec
        self.store = store
        self.progress = progress
        self.collect_obs = collect_obs
        self.trace_dir = str(trace_dir) if trace_dir else ""
        self.slo_spec = str(slo_spec) if slo_spec else ""
        if self.slo_spec:
            _resolve_slo(self.slo_spec)  # fail fast on a bad spec

    def tasks(self) -> List[RunTask]:
        """The full grid, in canonical (scenario, policy, replicate) order.

        Seeds derive from the *base* scenario name, so with a policy matrix
        every policy variant of a scenario replays the same workload.
        """
        return [
            RunTask(
                scenario=variant,
                replicate=replicate,
                seed=derive_seed(self.spec.root_seed, base_name, replicate),
                base_scenario=base_name,
                collect_obs=self.collect_obs,
                trace_dir=self.trace_dir,
                slo_spec=self.slo_spec,
            )
            for variant, base_name in self.spec.expanded_scenarios()
            for replicate in range(self.spec.seeds)
        ]

    def run(
        self, workers: Optional[int] = None, append: bool = False
    ) -> CampaignResult:
        """Execute every task and return (and optionally persist) the records.

        *workers* overrides the spec's worker count.  Results stream through
        the progress callback as they complete (arbitrary order), but the
        returned and persisted records are always canonically ordered.
        """
        workers = self.spec.workers if workers is None else workers
        if workers <= 0:
            raise ValueError("workers must be positive")
        tasks = self.tasks()
        workers = min(workers, len(tasks)) or 1

        started = time.perf_counter()
        completed = 0
        records: List[Dict] = []
        if workers == 1:
            for task in tasks:
                record = _execute_task(task)
                records.append(record)
                completed += 1
                if self.progress is not None:
                    self.progress(completed, len(tasks), record)
        else:
            # Worker processes import this module afresh (under spawn) or
            # inherit it (under fork); either way the built-in runners are
            # registered by the module import above before tasks execute.
            with multiprocessing.Pool(processes=workers) as pool:
                for record in pool.imap_unordered(_execute_task, tasks, chunksize=1):
                    records.append(record)
                    completed += 1
                    if self.progress is not None:
                        self.progress(completed, len(tasks), record)
        elapsed = time.perf_counter() - started

        order = {
            variant.name: i
            for i, (variant, _base) in enumerate(self.spec.expanded_scenarios())
        }
        records.sort(key=lambda r: (order[r["scenario"]], r["replicate"]))

        # Per-run wall-clock phase breakdowns are non-deterministic: pop
        # them off the records (they must never reach runs.jsonl) and
        # aggregate them into the campaign-level profiler for meta.json.
        profiler = PhaseProfiler()
        profiler.add("campaign.execute", elapsed, count=len(records) or 1)
        for record in records:
            phases = record.pop("_phase_seconds", None)
            if phases:
                profiler.merge(phases)

        store_path: Optional[str] = None
        if self.store is not None:
            # Time the run-file write through the store's own hook so the
            # breakdown in meta.json includes it (meta.json itself is then
            # rewritten with the final snapshot -- a cheap second write).
            with observe(profiler=profiler):
                self.store.save_campaign(self.spec, records, append=append)
            meta = {
                "workers": workers,
                "elapsed_seconds": elapsed,
                "run_count": len(records),
                "finished_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                "phase_seconds": profiler.snapshot(),
            }
            store_path = str(
                self.store.save_campaign(self.spec, [], meta=meta, append=True)
            )

        return CampaignResult(
            spec=self.spec,
            records=records,
            elapsed_seconds=elapsed,
            workers=workers,
            store_path=store_path,
        )
