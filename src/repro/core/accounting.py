"""Resource accounting (the first "future work" direction of the paper).

Section 7 suggests studying "how accounting should be done in CooRMv2, so as
to determine users to efficiently use resources".  This module implements a
straightforward policy: every allocation interval is recorded, and consumed
node-seconds are charged per application, split by request type.  Because
pre-allocations reserve resources without using them, the accountant can also
charge a configurable fraction of *reserved-but-unused* node-seconds, which is
the economic incentive the paper hints at.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .types import RequestType, Time

__all__ = ["AllocationRecord", "UsageSummary", "Accountant"]


@dataclass(frozen=True)
class AllocationRecord:
    """One contiguous interval during which a request held nodes."""

    app_id: str
    request_id: int
    rtype: RequestType
    cluster_id: str
    node_count: int
    start: Time
    end: Time

    @property
    def node_seconds(self) -> float:
        return self.node_count * max(0.0, self.end - self.start)


@dataclass
class UsageSummary:
    """Aggregated consumption of one application."""

    app_id: str
    non_preemptible_node_seconds: float = 0.0
    preemptible_node_seconds: float = 0.0
    preallocated_node_seconds: float = 0.0

    @property
    def used_node_seconds(self) -> float:
        """Node-seconds actually allocated (excludes pre-allocations)."""
        return self.non_preemptible_node_seconds + self.preemptible_node_seconds

    @property
    def reserved_unused_node_seconds(self) -> float:
        """Pre-allocated node-seconds that were never filled by this application."""
        return max(0.0, self.preallocated_node_seconds - self.non_preemptible_node_seconds)


class Accountant:
    """Collects allocation records and produces per-application charges."""

    def __init__(self, reservation_charge_factor: float = 0.0):
        if not 0.0 <= reservation_charge_factor <= 1.0:
            raise ValueError("reservation_charge_factor must be in [0, 1]")
        #: Fraction of reserved-but-unused node-seconds charged to the user.
        self.reservation_charge_factor = reservation_charge_factor
        self.records: List[AllocationRecord] = []

    # ------------------------------------------------------------------ #
    def record(self, record: AllocationRecord) -> None:
        """Append one allocation interval."""
        if record.end < record.start:
            raise ValueError("allocation record ends before it starts")
        self.records.append(record)

    def record_interval(
        self,
        app_id: str,
        request_id: int,
        rtype: RequestType,
        cluster_id: str,
        node_count: int,
        start: Time,
        end: Time,
    ) -> None:
        """Convenience wrapper building and appending a record."""
        self.record(
            AllocationRecord(
                app_id=app_id,
                request_id=request_id,
                rtype=rtype,
                cluster_id=cluster_id,
                node_count=node_count,
                start=start,
                end=end,
            )
        )

    # ------------------------------------------------------------------ #
    def summary(self, app_id: str) -> UsageSummary:
        """Aggregate the records of one application."""
        out = UsageSummary(app_id=app_id)
        for rec in self.records:
            if rec.app_id != app_id:
                continue
            if rec.rtype is RequestType.NON_PREEMPTIBLE:
                out.non_preemptible_node_seconds += rec.node_seconds
            elif rec.rtype is RequestType.PREEMPTIBLE:
                out.preemptible_node_seconds += rec.node_seconds
            else:
                out.preallocated_node_seconds += rec.node_seconds
        return out

    def summaries(self) -> Dict[str, UsageSummary]:
        """Aggregate records for every application seen."""
        apps = sorted({rec.app_id for rec in self.records})
        return {app_id: self.summary(app_id) for app_id in apps}

    def charge(self, app_id: str) -> float:
        """Node-seconds billed to *app_id*.

        Used node-seconds are billed fully; reserved-but-unused node-seconds
        are billed at ``reservation_charge_factor``.
        """
        s = self.summary(app_id)
        return s.used_node_seconds + self.reservation_charge_factor * s.reserved_unused_node_seconds

    def total_used_node_seconds(self) -> float:
        """Node-seconds allocated across all applications (no pre-allocations)."""
        return sum(
            rec.node_seconds
            for rec in self.records
            if rec.rtype is not RequestType.PREALLOCATION
        )

    def used_node_seconds_by_app(self) -> Dict[str, float]:
        """Node-seconds actually allocated per application (no pre-allocations).

        One pass over the records; used by fair-share queue ordering to rank
        applications by accumulated consumption before each scheduling pass.
        """
        out: Dict[str, float] = {}
        for rec in self.records:
            if rec.rtype is RequestType.PREALLOCATION:
                continue
            out[rec.app_id] = out.get(rec.app_id, 0.0) + rec.node_seconds
        return out

    def used_node_seconds_by_type(self) -> Dict[RequestType, float]:
        """Total node-seconds per request type."""
        out: Dict[RequestType, float] = {t: 0.0 for t in RequestType}
        for rec in self.records:
            out[rec.rtype] += rec.node_seconds
        return out
