"""Figure 2 -- step duration versus node count for several mesh sizes.

The paper fits the speed-up model against Uintah AMR measurements for five
mesh sizes (12, 48, 196, 784 and 3136 GiB) over node counts from 1 to 16k.
We do not have the raw measurements, so the reproduction regenerates the
model curves with the published constants and verifies their qualitative
properties: durations decrease with node count up to an optimum, larger
meshes take longer, and strong scaling flattens out exactly where the
overhead term takes over.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..metrics.report import format_series
from ..models.speedup import GIB_IN_MIB, PAPER_SPEEDUP_MODEL, SpeedupModel

__all__ = ["PAPER_MESH_SIZES_GIB", "PAPER_NODE_COUNTS", "run", "main"]

#: The five curves of Figure 2, in GiB.
PAPER_MESH_SIZES_GIB: Tuple[float, ...] = (12.0, 48.0, 196.0, 784.0, 3136.0)

#: The x-axis of Figure 2 (powers of two from 1 to 16k nodes).
PAPER_NODE_COUNTS: Tuple[int, ...] = tuple(2 ** k for k in range(15))


@dataclass(frozen=True)
class SpeedupCurve:
    """One Figure 2 curve: step duration per node count for one mesh size."""

    mesh_size_gib: float
    node_counts: Tuple[int, ...]
    durations: Tuple[float, ...]

    def duration_at(self, nodes: int) -> float:
        return self.durations[self.node_counts.index(nodes)]


def run(
    mesh_sizes_gib: Sequence[float] = PAPER_MESH_SIZES_GIB,
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> Dict[float, SpeedupCurve]:
    """Compute every Figure 2 curve."""
    curves: Dict[float, SpeedupCurve] = {}
    for size_gib in mesh_sizes_gib:
        size_mib = size_gib * GIB_IN_MIB
        durations = tuple(model.step_duration(n, size_mib) for n in node_counts)
        curves[size_gib] = SpeedupCurve(
            mesh_size_gib=size_gib,
            node_counts=tuple(int(n) for n in node_counts),
            durations=durations,
        )
    return curves


def main(
    mesh_sizes_gib: Sequence[float] = PAPER_MESH_SIZES_GIB,
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
) -> str:
    """Render the Figure 2 reproduction as a text table (seconds per step)."""
    curves = run(mesh_sizes_gib, node_counts)
    series = {
        f"{size:g} GiB": [round(d, 2) for d in curves[size].durations]
        for size in mesh_sizes_gib
    }
    table = format_series("nodes", list(node_counts), series)
    return "Figure 2 -- AMR step duration (s) vs node count\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
