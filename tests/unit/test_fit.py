"""Unit tests of fit() (paper Algorithm 2)."""
from __future__ import annotations

import math

import pytest

from repro.core import (
    RelatedHow,
    Request,
    RequestSet,
    RequestType,
    StepFunction,
    View,
    fit,
    to_view,
)


def np_request(n, duration, related_how=RelatedHow.FREE, related_to=None, cluster="c"):
    return Request(cluster, n, duration, RequestType.NON_PREEMPTIBLE, related_how, related_to)


def p_request(n, duration, related_how=RelatedHow.FREE, related_to=None, cluster="c"):
    return Request(cluster, n, duration, RequestType.PREEMPTIBLE, related_how, related_to)


def make_set(*requests, rtype=None):
    rs = RequestSet(rtype)
    for r in requests:
        rs.add(r)
    return rs


class TestFreeRequests:
    def test_placed_at_first_hole(self):
        r = np_request(4, 100)
        available = View({"c": StepFunction.constant(10).subtract_rectangle(0, 50, 8)})
        occupied = fit(make_set(r), available, not_before=0.0)
        assert r.scheduled_at == pytest.approx(50.0)
        assert occupied["c"].value_at(60) == 4
        assert occupied["c"].value_at(10) == 0

    def test_not_before_is_respected(self):
        r = np_request(2, 10)
        occupied = fit(make_set(r), View.constant({"c": 10}), not_before=42.0)
        assert r.scheduled_at == pytest.approx(42.0)
        assert occupied["c"].value_at(45) == 2

    def test_impossible_request_scheduled_at_infinity(self):
        r = np_request(100, 10)
        occupied = fit(make_set(r), View.constant({"c": 10}), not_before=0.0)
        assert math.isinf(r.scheduled_at)
        assert occupied.is_zero()

    def test_fixed_requests_are_left_alone(self):
        r = np_request(4, 100)
        r.mark_started(5.0)
        rs = make_set(r)
        to_view(rs)  # sets fixed and scheduled_at
        occupied = fit(rs, View.constant({"c": 10}), not_before=50.0)
        assert r.scheduled_at == pytest.approx(5.0)
        assert occupied.is_zero()  # fit only reports non-fixed occupation

    def test_n_alloc_defaults_to_requested(self):
        r = np_request(4, 100)
        fit(make_set(r), View.constant({"c": 10}), not_before=0.0)
        assert r.n_alloc == 4


class TestConstraints:
    def test_next_chain_schedules_back_to_back(self):
        a = np_request(4, 100)
        b = np_request(6, 50, RelatedHow.NEXT, a)
        fit(make_set(a, b), View.constant({"c": 10}), not_before=0.0)
        assert a.scheduled_at == pytest.approx(0.0)
        assert b.scheduled_at == pytest.approx(100.0)

    def test_next_pushes_parent_when_successor_does_not_fit(self):
        # Only 4 nodes available during [0, 200); 10 afterwards.  The child
        # needs 8 nodes, so the parent must be delayed until the child can
        # start right after it.
        profile = StepFunction.constant(10).subtract_rectangle(0, 200, 6)
        a = np_request(4, 100)
        b = np_request(8, 50, RelatedHow.NEXT, a)
        fit(make_set(a, b), View({"c": profile}), not_before=0.0)
        assert b.scheduled_at == pytest.approx(a.scheduled_at + a.duration)
        assert b.scheduled_at >= 200.0

    def test_coalloc_same_start_time(self):
        a = np_request(4, 100)
        b = np_request(2, 100, RelatedHow.COALLOC, a)
        fit(make_set(a, b), View.constant({"c": 10}), not_before=7.0)
        assert a.scheduled_at == pytest.approx(7.0)
        assert b.scheduled_at == pytest.approx(7.0)

    def test_preemptible_child_is_shrunk_not_delayed(self):
        pa = Request("c", 6, 100, RequestType.PREALLOCATION)
        pa.mark_started(0.0)
        pa.scheduled_at = 0.0
        pa.fixed = True
        extra = p_request(10, 100, RelatedHow.COALLOC, pa)
        available = View.constant({"c": 4})
        fit([pa, extra], available, not_before=0.0)
        assert extra.scheduled_at == pytest.approx(0.0)
        assert extra.n_alloc == 4

    def test_next_preemptible_follows_parent_and_shrinks(self):
        a = p_request(4, 100)
        b = p_request(10, 50, RelatedHow.NEXT, a)
        available = View.constant({"c": 6})
        fit(make_set(a, b, rtype=RequestType.PREEMPTIBLE), available, not_before=0.0)
        assert b.scheduled_at == pytest.approx(100.0)
        assert b.n_alloc == 6

    def test_child_of_finished_parent_is_schedulable(self):
        # After a spontaneous update the predecessor is finished; the new
        # request must still be placed (it becomes a root).
        a = np_request(4, 1000)
        a.mark_started(0.0)
        a.mark_finished(30.0)
        b = np_request(6, 100, RelatedHow.NEXT, a)
        rs = make_set(a, b)
        to_view(rs)
        occupied = fit(rs, View.constant({"c": 10}), not_before=31.0)
        assert b.scheduled_at == pytest.approx(31.0)
        assert occupied["c"].value_at(50) == 6

    def test_external_parent_not_rescheduled(self):
        # The parent belongs to another request set (e.g. a pre-allocation);
        # fit() must not try to move it.
        pa = Request("c", 8, 1000, RequestType.PREALLOCATION)
        pa.scheduled_at = 500.0
        pa.fixed = False
        child = np_request(8, 100, RelatedHow.COALLOC, pa)
        fit(make_set(child), View.constant({"c": 8}), not_before=0.0)
        assert child.scheduled_at == pytest.approx(500.0)
        assert pa.scheduled_at == pytest.approx(500.0)

    def test_generated_view_stacks_requests(self):
        a = np_request(4, 100)
        b = np_request(2, 100, RelatedHow.COALLOC, a)
        occupied = fit(make_set(a, b), View.constant({"c": 10}), not_before=0.0)
        assert occupied["c"].value_at(50) == 6
        assert occupied["c"].value_at(150) == 0
