"""Transport-agnostic RPC layer of the distributed execution tier.

Every message between a campaign coordinator and its workers is one flat,
JSON-serialisable dictionary.  Three interchangeable backends carry those
messages (the C-Two Component/CRM split: the coordinator owns the stateful
resource -- the work queue -- and workers talk to it through a protocol-
agnostic channel):

* **thread** -- in-process loopback over ``queue.Queue`` pairs.  The
  zero-dependency reference backend: same wire discipline (messages must be
  JSON-serialisable), no sockets, no subprocesses.
* **ipc** -- one subprocess per worker, connected over a
  ``multiprocessing.Pipe``.  Messages travel as encoded JSON bytes
  (``send_bytes``), never pickles, so the wire format is identical to TCP.
* **tcp** -- workers connect over loopback (or the network) with
  **length-prefixed JSON frames**: a 4-byte big-endian length followed by
  the UTF-8 JSON payload.  The only backend that accepts *external*
  workers (``python -m repro dist worker --connect host:port``).

The coordinator side of every backend exposes the same three operations --
``launch_worker`` / ``poll`` / ``close`` -- and the worker side a duplex
:class:`Channel` (``send`` / ``recv``).  ``poll`` returns ``(channel,
message)`` pairs and reports a disconnected worker as ``(channel, None)``,
which is how the coordinator reclaims the leases of a crashed worker
immediately instead of waiting for the lease TTL.
"""
from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import queue as queue_module
import select
import socket
import struct
import threading
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TRANSPORT_NAMES",
    "ChannelClosed",
    "Channel",
    "WorkerHandle",
    "ThreadTransport",
    "IpcTransport",
    "TcpTransport",
    "make_transport",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "connect_tcp",
    "parse_endpoint",
]

#: The registered transport backends, in escalation order.
TRANSPORT_NAMES: Tuple[str, ...] = ("thread", "ipc", "tcp")

#: Frame header: payload length as a 4-byte big-endian unsigned integer.
_LENGTH = struct.Struct(">I")

#: Upper bound on one frame; a result record with obs snapshots is a few
#: kilobytes, so anything near this size indicates a protocol error.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ChannelClosed(Exception):
    """The peer went away: the channel cannot carry further messages."""


def _encode(message: Dict) -> bytes:
    # allow_nan=False keeps the wire format strict JSON on every backend;
    # result metrics are NaN-free by construction (PR 6 invariant).
    return json.dumps(message, sort_keys=True, allow_nan=False).encode("utf-8")


def encode_frame(message: Dict) -> bytes:
    """One TCP frame: length prefix + JSON payload."""
    payload = _encode(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds the maximum")
    return _LENGTH.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: Dict) -> None:
    try:
        sock.sendall(encode_frame(message))
    except OSError as exc:
        raise ChannelClosed(str(exc)) from exc


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ChannelClosed("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, timeout: Optional[float]) -> Optional[Dict]:
    """Read one frame; ``None`` on timeout before the frame *starts*.

    A timeout mid-frame (after the length prefix arrived) keeps reading:
    frames are small, and returning ``None`` there would desynchronise the
    stream.
    """
    sock.settimeout(timeout)
    try:
        header = _recv_exact(sock, _LENGTH.size)
    except (socket.timeout, TimeoutError):
        return None
    except OSError as exc:
        raise ChannelClosed(str(exc)) from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ChannelClosed(f"oversized frame announced ({length} bytes)")
    sock.settimeout(None)
    try:
        payload = _recv_exact(sock, length)
    except OSError as exc:
        raise ChannelClosed(str(exc)) from exc
    return json.loads(payload.decode("utf-8"))


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` with a helpful error."""
    host, _, port = endpoint.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"endpoint must look like host:port, got {endpoint!r}")
    return host, int(port)


# --------------------------------------------------------------------- #
# Worker-side channels
# --------------------------------------------------------------------- #
class Channel:
    """Duplex message channel (worker side); backends subclass this."""

    def send(self, message: Dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def recv(self, timeout: Optional[float]) -> Optional[Dict]:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


#: In-process close marker (thread transport); never JSON-serialised.
_CLOSE = object()


class ThreadWorkerChannel(Channel):
    """Worker end of an in-process loopback connection."""

    def __init__(self, inbox: "queue_module.Queue", server_end: "ThreadServerEnd",
                 from_server: "queue_module.Queue"):
        self._inbox = inbox
        self._server_end = server_end
        self._from_server = from_server
        self._closed = False

    def send(self, message: Dict) -> None:
        if self._closed:
            raise ChannelClosed("channel closed")
        # Round-trip through the encoder so the thread backend enforces the
        # same JSON-only wire discipline as ipc/tcp.
        self._inbox.put((self._server_end, json.loads(_encode(message))))

    def recv(self, timeout: Optional[float]) -> Optional[Dict]:
        try:
            item = self._from_server.get(timeout=timeout)
        except queue_module.Empty:
            return None
        if item is _CLOSE:
            self._closed = True
            raise ChannelClosed("coordinator closed the channel")
        return item

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._inbox.put((self._server_end, None))  # EOF marker


class ThreadServerEnd:
    """Coordinator end of an in-process loopback connection."""

    def __init__(self, to_worker: "queue_module.Queue"):
        self._to_worker = to_worker

    def send(self, message: Dict) -> None:
        self._to_worker.put(json.loads(_encode(message)))

    def close(self) -> None:
        self._to_worker.put(_CLOSE)


class PipeChannel(Channel):
    """Worker end of a ``multiprocessing.Pipe`` connection (JSON bytes)."""

    def __init__(self, conn: multiprocessing.connection.Connection):
        self._conn = conn

    def send(self, message: Dict) -> None:
        try:
            self._conn.send_bytes(_encode(message))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise ChannelClosed(str(exc)) from exc

    def recv(self, timeout: Optional[float]) -> Optional[Dict]:
        try:
            if not self._conn.poll(timeout):
                return None
            return json.loads(self._conn.recv_bytes().decode("utf-8"))
        except (EOFError, OSError) as exc:
            raise ChannelClosed(str(exc)) from exc

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class SocketChannel(Channel):
    """Worker end of a TCP connection (length-prefixed JSON frames)."""

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def send(self, message: Dict) -> None:
        send_frame(self._sock, message)

    def recv(self, timeout: Optional[float]) -> Optional[Dict]:
        return recv_frame(self._sock, timeout)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def connect_tcp(host: str, port: int, timeout: float = 10.0) -> SocketChannel:
    """Connect a worker to a coordinator's TCP endpoint."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return SocketChannel(sock)


# --------------------------------------------------------------------- #
# Worker handles
# --------------------------------------------------------------------- #
class WorkerHandle:
    """A worker the coordinator launched itself (thread or subprocess)."""

    def __init__(self, worker_id: str, thread: Optional[threading.Thread] = None,
                 process: Optional[multiprocessing.Process] = None):
        self.worker_id = worker_id
        self.thread = thread
        self.process = process

    def alive(self) -> bool:
        if self.process is not None:
            return self.process.is_alive()
        if self.thread is not None:
            return self.thread.is_alive()
        return False

    def kill(self) -> None:
        """Hard-kill the worker (chaos testing; subprocess backends only)."""
        if self.process is None:
            raise RuntimeError("in-thread workers cannot be killed")
        self.process.kill()

    def join(self, timeout: Optional[float] = None) -> None:
        if self.process is not None:
            self.process.join(timeout)
        elif self.thread is not None:
            self.thread.join(timeout)

    def exitcode(self) -> Optional[int]:
        return None if self.process is None else self.process.exitcode


# --------------------------------------------------------------------- #
# Coordinator-side transports
# --------------------------------------------------------------------- #
class ThreadTransport:
    """In-process loopback: workers are daemon threads of this process.

    Workers launched here run the worker loop with ``in_process=True``,
    which serialises simulation execution behind a module lock -- the obs
    hooks and the provenance slot are process-global one-element cells, so
    two runs must never execute concurrently in one process.
    """

    name = "thread"
    in_process = True

    def __init__(self) -> None:
        self._inbox: "queue_module.Queue" = queue_module.Queue()
        self._server_ends: List[ThreadServerEnd] = []

    def endpoint(self) -> str:
        return ""

    def launch_worker(self, worker_id: str, options: Dict) -> WorkerHandle:
        from .worker import worker_loop  # lazy: worker imports campaign

        to_worker: "queue_module.Queue" = queue_module.Queue()
        server_end = ThreadServerEnd(to_worker)
        channel = ThreadWorkerChannel(self._inbox, server_end, to_worker)
        self._server_ends.append(server_end)
        thread = threading.Thread(
            target=worker_loop,
            args=(channel, worker_id, dict(options, in_process=True)),
            name=f"dist-{worker_id}",
            daemon=True,
        )
        thread.start()
        return WorkerHandle(worker_id, thread=thread)

    def poll(self, timeout: float) -> List[Tuple[object, Optional[Dict]]]:
        messages: List[Tuple[object, Optional[Dict]]] = []
        try:
            messages.append(self._inbox.get(timeout=timeout))
        except queue_module.Empty:
            return messages
        while True:  # drain whatever else already arrived, without blocking
            try:
                messages.append(self._inbox.get_nowait())
            except queue_module.Empty:
                return messages

    def close(self) -> None:
        for end in self._server_ends:
            end.close()
        self._server_ends.clear()


class IpcTransport:
    """One subprocess per worker over ``multiprocessing.Pipe`` connections."""

    name = "ipc"
    in_process = False

    def __init__(self) -> None:
        self._conns: List[multiprocessing.connection.Connection] = []

    def endpoint(self) -> str:
        return ""

    def launch_worker(self, worker_id: str, options: Dict) -> WorkerHandle:
        from .worker import ipc_worker_entry

        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        process = multiprocessing.Process(
            target=ipc_worker_entry,
            args=(child_conn, worker_id, dict(options)),
            name=f"dist-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only its own end
        self._conns.append(parent_conn)
        return WorkerHandle(worker_id, process=process)

    def poll(self, timeout: float) -> List[Tuple[object, Optional[Dict]]]:
        if not self._conns:
            return []
        ready = multiprocessing.connection.wait(self._conns, timeout)
        messages: List[Tuple[object, Optional[Dict]]] = []
        for conn in ready:
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                # The worker died or closed its end: surface the EOF once
                # and stop polling the dead connection.
                self._conns.remove(conn)
                conn.close()
                messages.append((conn, None))
                continue
            messages.append((conn, json.loads(payload.decode("utf-8"))))
        return messages

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._conns.clear()

    @staticmethod
    def reply(conn: multiprocessing.connection.Connection, message: Dict) -> None:
        try:
            conn.send_bytes(_encode(message))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise ChannelClosed(str(exc)) from exc


class _TcpServerEnd:
    """Coordinator end of one accepted TCP connection, with a frame buffer."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.buffer = b""

    def send(self, message: Dict) -> None:
        send_frame(self.sock, message)

    def extract_frames(self) -> List[Dict]:
        """Complete frames currently sitting in the receive buffer."""
        frames: List[Dict] = []
        while len(self.buffer) >= _LENGTH.size:
            (length,) = _LENGTH.unpack(self.buffer[: _LENGTH.size])
            if length > MAX_FRAME_BYTES:
                raise ChannelClosed(f"oversized frame announced ({length} bytes)")
            end = _LENGTH.size + length
            if len(self.buffer) < end:
                break
            payload = self.buffer[_LENGTH.size:end]
            self.buffer = self.buffer[end:]
            frames.append(json.loads(payload.decode("utf-8")))
        return frames

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class TcpTransport:
    """TCP sockets with length-prefixed JSON frames; accepts external workers."""

    name = "tcp"
    in_process = False

    def __init__(self, bind: str = "127.0.0.1:0"):
        host, port = parse_endpoint(bind)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._clients: List[_TcpServerEnd] = []

    def endpoint(self) -> str:
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    def launch_worker(self, worker_id: str, options: Dict) -> WorkerHandle:
        from .worker import tcp_worker_entry

        host, port = self._listener.getsockname()[:2]
        process = multiprocessing.Process(
            target=tcp_worker_entry,
            args=(host, port, worker_id, dict(options)),
            name=f"dist-{worker_id}",
            daemon=True,
        )
        process.start()
        return WorkerHandle(worker_id, process=process)

    def poll(self, timeout: float) -> List[Tuple[object, Optional[Dict]]]:
        sockets = [self._listener] + [c.sock for c in self._clients]
        try:
            readable, _, _ = select.select(sockets, [], [], timeout)
        except OSError:
            return []
        messages: List[Tuple[object, Optional[Dict]]] = []
        by_sock = {c.sock: c for c in self._clients}
        for sock in readable:
            if sock is self._listener:
                try:
                    client, _addr = self._listener.accept()
                except OSError:
                    continue
                client.setblocking(True)
                client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._clients.append(_TcpServerEnd(client))
                continue
            end = by_sock[sock]
            try:
                data = sock.recv(65536)
            except OSError:
                data = b""
            if not data:
                self._clients.remove(end)
                end.close()
                messages.append((end, None))
                continue
            end.buffer += data
            try:
                for frame in end.extract_frames():
                    messages.append((end, frame))
            except ChannelClosed:
                self._clients.remove(end)
                end.close()
                messages.append((end, None))
        return messages

    def close(self) -> None:
        for end in self._clients:
            end.close()
        self._clients.clear()
        try:
            self._listener.close()
        except OSError:
            pass


def make_transport(name: str, bind: str = "127.0.0.1:0"):
    """Build the coordinator side of a named transport backend."""
    if name == "thread":
        return ThreadTransport()
    if name == "ipc":
        return IpcTransport()
    if name == "tcp":
        return TcpTransport(bind=bind)
    raise KeyError(
        f"unknown transport {name!r}; known transports: {list(TRANSPORT_NAMES)}"
    )


def reply_on(channel_end, message: Dict) -> None:
    """Send a reply on a coordinator-side channel end, whatever its backend."""
    if isinstance(channel_end, multiprocessing.connection.Connection):
        IpcTransport.reply(channel_end, message)
    else:
        channel_end.send(message)
